//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Content`] model to JSON text and parses it back.
//!
//! Supports the API surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], plus a [`Value`] alias for untyped
//! round-trips. Non-finite floats serialize as `null` (matching
//! serde_json's behaviour).

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Untyped JSON value (the vendored serde content tree).
pub type Value = Content;

/// Error raised by serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts a value into an untyped [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Parses a typed value out of JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse(s)?;
    Ok(T::deserialize(&content)?)
}

/// Rebuilds a typed value from an untyped [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::deserialize(&value)?)
}

// ---- writer ----------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// Writes a float using Rust's shortest round-trip representation, with a
/// trailing `.0` for integral values so they parse back as floats.
fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into an untyped [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        let v = Content::Map(vec![
            (
                "a".into(),
                Content::Seq(vec![Content::U64(1), Content::F64(2.5)]),
            ),
            ("b".into(), Content::Str("x\"y".into())),
            ("c".into(), Content::Bool(true)),
            ("d".into(), Content::Null),
            ("e".into(), Content::I64(-3)),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, -1e-300, std::f64::consts::PI, 1.0, -0.0, 1e20] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }
}
