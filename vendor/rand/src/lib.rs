//! Offline stand-in for `rand` 0.8.
//!
//! Implements the API surface the workspace uses — `SeedableRng`,
//! `Rng::{gen, gen_range, gen_bool}`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}` — on top of a xoshiro256**
//! generator seeded through SplitMix64. The statistical quality matches
//! what the workspace needs (synthetic data generation, shuffling,
//! train/test splits); it is NOT the same stream as upstream rand, so
//! seeded outputs differ from builds using the real crate, but remain
//! deterministic for a fixed seed.

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (stretched via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from OS-independent "entropy" (a fixed seed —
    /// the offline stand-in has no OS entropy source; use explicit seeds
    /// for anything that matters).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` without modulo bias (rejection sampling).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_u64_below(rng, span);
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_u64_below(rng, span + 1);
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let u = unit_f64(rng) as $t;
                start + (end - start) * u
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }

    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;

    /// The "small" generator: same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::{uniform_u64_below, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Convenience prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
