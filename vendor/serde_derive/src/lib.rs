//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The offline build has no `syn`/`quote`, so the item is parsed directly
//! from the `proc_macro::TokenStream`. Supported shapes cover everything
//! the workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(skip)]`: omitted on
//!   serialize, `Default::default()` on deserialize);
//! * unit structs and tuple structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   serde's default JSON representation).
//!
//! Generics are not supported — none of the workspace's serialized types
//! use them — and the macro panics with a clear message if it meets any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => gen_struct_serialize(name, shape),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => gen_struct_deserialize(name, shape),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl must parse")
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

/// Field-level serde flags recognised by the stand-in derive.
#[derive(Default)]
struct SerdeFlags {
    skip: bool,
    default: bool,
}

/// Parses `serde ( ... )` attribute group tokens into flags; a non-serde
/// attribute contributes nothing.
fn attr_serde_flags(group: &proc_macro::Group) -> SerdeFlags {
    let mut flags = SerdeFlags::default();
    let mut iter = group.stream().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return flags,
    }
    if let Some(TokenTree::Group(inner)) = iter.next() {
        for t in inner.stream() {
            if let TokenTree::Ident(id) = &t {
                match id.to_string().as_str() {
                    "skip" => flags.skip = true,
                    "default" => flags.default = true,
                    _ => {}
                }
            }
        }
    }
    flags
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut default = false;
        // attributes
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let flags = attr_serde_flags(g);
                skip = skip || flags.skip;
                default = default || flags.default;
            }
            i += 2;
        }
        // visibility
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            skip,
            default,
        });
        // consume trailing comma if present
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances `i` past one type, stopping at a top-level `,` (angle-bracket
/// depth tracked manually because generics are not token groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // attributes / visibility before the type
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // variant attributes (doc comments)
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---- codegen ---------------------------------------------------------------

fn named_fields_to_map(fields: &[Field], access_prefix: &str) -> String {
    let mut code = String::from("::serde::Content::Map(::std::vec![");
    for f in fields.iter().filter(|f| !f.skip) {
        code.push_str(&format!(
            "(::std::string::String::from(\"{n}\"), ::serde::Serialize::serialize(&{p}{n})),",
            n = f.name,
            p = access_prefix,
        ));
    }
    code.push_str("])");
    code
}

fn gen_struct_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Content::Null".to_string(),
        Shape::Tuple(n) => {
            let mut code = String::from("::serde::Content::Seq(::std::vec![");
            for idx in 0..*n {
                code.push_str(&format!("::serde::Serialize::serialize(&self.{idx}),"));
            }
            code.push_str("])");
            code
        }
        Shape::Named(fields) => named_fields_to_map(fields, "self."),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn named_fields_from_map(type_path: &str, fields: &[Field], source: &str) -> String {
    let mut code = format!("::std::result::Result::Ok({type_path} {{");
    for f in fields {
        if f.skip {
            code.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
        } else if f.default {
            // `#[serde(default)]`: a missing field deserializes to its
            // Default instead of erroring, so newer readers accept older
            // JSON files that predate the field.
            code.push_str(&format!(
                "{n}: match {src}.get(\"{n}\") {{\
                 ::std::option::Option::Some(__v) => \
                 ::serde::Deserialize::deserialize(__v)?,\
                 ::std::option::Option::None => ::std::default::Default::default(),\
                 }},",
                n = f.name,
                src = source,
            ));
        } else {
            code.push_str(&format!(
                "{n}: ::serde::Deserialize::deserialize({src}.get(\"{n}\")\
                 .ok_or_else(|| ::serde::DeError::new(\"missing field `{n}`\"))?)?,",
                n = f.name,
                src = source,
            ));
        }
    }
    code.push_str("})");
    code
}

fn gen_struct_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Tuple(n) => {
            let mut code = format!(
                "let __seq = __content.as_seq().ok_or_else(|| \
                 ::serde::DeError::new(\"expected sequence for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name}("
            );
            for idx in 0..*n {
                code.push_str(&format!(
                    "::serde::Deserialize::deserialize(__seq.get({idx})\
                     .ok_or_else(|| ::serde::DeError::new(\"sequence too short\"))?)?,"
                ));
            }
            code.push_str("))");
            code
        }
        Shape::Named(fields) => named_fields_from_map(name, fields, "__content"),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__content: &::serde::Content) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),"
            )),
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let value = if *n == 1 {
                    "::serde::Serialize::serialize(__f0)".to_string()
                } else {
                    let mut s = String::from("::serde::Content::Seq(::std::vec![");
                    for b in &binds {
                        s.push_str(&format!("::serde::Serialize::serialize({b}),"));
                    }
                    s.push_str("])");
                    s
                };
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => ::serde::Content::Map(::std::vec![\
                     (::std::string::String::from(\"{vn}\"), {value})]),",
                    binds = binds.join(","),
                ));
            }
            Shape::Named(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let value = named_fields_to_map(fields, "*");
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(::std::vec![\
                     (::std::string::String::from(\"{vn}\"), {value})]),",
                    binds = binds.join(","),
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ match self {{ {arms} }} }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
            )),
            Shape::Tuple(n) => {
                let body = if *n == 1 {
                    format!(
                        "::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize(__value)?))"
                    )
                } else {
                    let mut s = format!(
                        "let __seq = __value.as_seq().ok_or_else(|| \
                         ::serde::DeError::new(\"expected sequence for `{name}::{vn}`\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn}("
                    );
                    for idx in 0..*n {
                        s.push_str(&format!(
                            "::serde::Deserialize::deserialize(__seq.get({idx})\
                             .ok_or_else(|| ::serde::DeError::new(\"sequence too short\"))?)?,"
                        ));
                    }
                    s.push_str("))");
                    s
                };
                keyed_arms.push_str(&format!("\"{vn}\" => {{ {body} }},"));
            }
            Shape::Named(fields) => {
                let body = named_fields_from_map(&format!("{name}::{vn}"), fields, "__value");
                keyed_arms.push_str(&format!("\"{vn}\" => {{ {body} }},"));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__content: &::serde::Content) \
             -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __content {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"unknown unit variant `{{__other}}` for `{name}`\"))),\n\
                     }},\n\
                     ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__key, __value) = &__entries[0];\n\
                         match __key.as_str() {{\n\
                             {keyed_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"invalid content for enum `{name}`: {{__other:?}}\"))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
