//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal replacement exposing the surface the repo uses:
//! the `Serialize`/`Deserialize` traits, their derive macros (including
//! `#[serde(skip)]`), and impls for the primitive/container types that
//! appear in serialized structs. Instead of serde's visitor-based data
//! model, everything round-trips through a self-describing [`Content`]
//! tree that `serde_json` (also vendored) renders to and parses from
//! JSON text. Only self-consistency is required: data serialized by
//! this crate is read back by this crate.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the intermediate representation between
/// typed Rust values and serialized text.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (struct fields, enum variants, maps).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a map content; `None` for non-maps/missing keys.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves to a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the content model.
    fn serialize(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses a value out of the content model.
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

/// Owned variant used by `serde_json::from_str` bounds; mirrors serde's
/// `DeserializeOwned` alias so downstream bounds read the same.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                match *content {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new("integer out of range")),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new("integer out of range")),
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as $t),
                    ref other => Err(DeError::new(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = *self as i64;
                if v < 0 { Content::I64(v) } else { Content::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                match *content {
                    Content::U64(v) => i64::try_from(v)
                        .ok()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| DeError::new("integer out of range")),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new("integer out of range")),
                    Content::F64(v) if v.fract() == 0.0 => Ok(v as $t),
                    ref other => Err(DeError::new(format!(
                        "expected signed integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                content
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| DeError::new(format!("expected number, got {content:?}")))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::Bool(b) => Ok(b),
            ref other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        T::deserialize(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::new(format!("expected sequence, got {content:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        // Sort keys so output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Content::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::new("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::new("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident)+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| DeError::new("expected tuple sequence"))?;
                Ok(($(
                    $t::deserialize(
                        seq.get($n).ok_or_else(|| DeError::new("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A 1 B)
    (0 A 1 B 2 C)
    (0 A 1 B 2 C 3 D)
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

/// Namespace mirror of serde's `ser` module.
pub mod ser {
    pub use crate::Serialize;
}

/// Namespace mirror of serde's `de` module.
pub mod de {
    pub use crate::{DeError, Deserialize, DeserializeOwned};
}
