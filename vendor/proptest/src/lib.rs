//! Offline stand-in for `proptest`.
//!
//! Covers the workspace's usage: the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, `prop_assert*`/`prop_assume`
//! macros, range / tuple / `Just` / `prop_map` / `prop::collection::vec`
//! / `prop::bool::ANY` strategies, and regression-seed files.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its seed and the generated
//!   inputs; the seed is appended to the `*.proptest-regressions` file so
//!   the exact case replays on every later run.
//! * **Deterministic.** Case seeds derive from the test's file/name, so a
//!   red test is red for everyone. Set `PROPTEST_SEED` to explore a
//!   different stream, `PROPTEST_CASES` to override the case count.
//! * Regression entries written by the real proptest (32-byte hex seeds)
//!   cannot replay bit-identically — the RNG differs — so they are
//!   re-hashed into a deterministic seed and run as ordinary extra cases.

use std::fmt;

pub mod strategy;

pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        /// Inclusive minimum length.
        pub min: usize,
        /// Exclusive maximum length.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary: Sized + fmt::Debug {
    /// The canonical strategy.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Returns the canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for primitives, used by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T> {
    _marker: core::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: core::marker::PhantomData }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl strategy::Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: core::marker::PhantomData,
        }
    }
}

impl strategy::Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut test_runner::TestRng) -> f64 {
        // Finite floats over a wide range; the real crate also emits
        // NaN/infinities, which the workspace's datasets reject anyway.
        let mag = (rng.unit_f64() * 600.0) - 300.0;
        mag.exp2() * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: core::marker::PhantomData,
        }
    }
}

/// The `proptest::prelude` namespace.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
    };
}

/// Defines property tests. Mirrors proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(
                &__config,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__rng: &mut $crate::test_runner::TestRng| {
                    let mut __desc = ::std::string::String::new();
                    $(
                        let __value = $crate::strategy::Strategy::generate(&($strat), __rng);
                        {
                            use ::std::fmt::Write as _;
                            let _ = ::std::write!(
                                __desc, "{} = {:?}; ", stringify!($arg), __value
                            );
                        }
                        let $arg = __value;
                    )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || -> ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                            $body
                            ::std::result::Result::Ok(())
                        }),
                    );
                    $crate::test_runner::settle(__outcome, &__desc)
                },
            );
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discards the current case (does not count toward the case budget)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
