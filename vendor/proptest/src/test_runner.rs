//! Deterministic case runner with regression-seed persistence.

use rand::{RngCore, SeedableRng};
use std::any::Any;
use std::path::{Path, PathBuf};

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed (assertion or panic).
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG handed to strategies: xoshiro256** via the vendored `rand`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Builds a generator for one case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)` over the i128 domain (covers every
    /// primitive integer width).
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty integer range strategy");
        let span = (hi - lo) as u128;
        if span == 0 {
            // Span of exactly 2^128 cannot happen for primitive widths.
            return lo;
        }
        let bound = if span > u64::MAX as u128 {
            u64::MAX
        } else {
            span as u64
        };
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return lo + (v % bound) as i128;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.i128_in(lo as i128, hi as i128) as usize
    }
}

/// FNV-1a hash used to derive deterministic seeds from identifiers.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Converts a panic payload into a printable message.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Folds the outcome of one case body (possibly panicked) into a
/// `Result`, attaching the generated-input description to failures.
/// Called from the `proptest!` expansion; not public API.
pub fn settle(
    outcome: Result<Result<(), TestCaseError>, Box<dyn Any + Send>>,
    desc: &str,
) -> Result<(), TestCaseError> {
    match outcome {
        Ok(Ok(())) => Ok(()),
        Ok(Err(TestCaseError::Fail(msg))) => {
            Err(TestCaseError::Fail(format!("{msg}\n  inputs: {desc}")))
        }
        Ok(Err(reject)) => Err(reject),
        Err(payload) => Err(TestCaseError::Fail(format!(
            "panic: {}\n  inputs: {desc}",
            panic_message(payload)
        ))),
    }
}

/// Locates the `*.proptest-regressions` file for a test source file.
///
/// `file!()` paths are relative to the workspace root while tests run
/// with the package as cwd, so the path is resolved against the manifest
/// directory's ancestors.
fn regression_path(manifest_dir: &str, source_file: &str) -> Option<PathBuf> {
    let rel = Path::new(source_file).with_extension("proptest-regressions");
    if rel.exists() {
        return Some(rel);
    }
    let mut dir = Some(Path::new(manifest_dir));
    while let Some(d) = dir {
        let cand = d.join(&rel);
        if cand.exists() {
            return Some(cand);
        }
        dir = d.parent();
    }
    None
}

/// Where to create a fresh regressions file when a test first fails.
fn regression_create_path(manifest_dir: &str, source_file: &str) -> Option<PathBuf> {
    let rel = Path::new(source_file).with_extension("proptest-regressions");
    let mut dir = Some(Path::new(manifest_dir));
    while let Some(d) = dir {
        let cand = d.join(&rel);
        if cand.parent().is_some_and(Path::exists) {
            return Some(cand);
        }
        dir = d.parent();
    }
    None
}

/// Parses saved seeds: `cc <hex> ...` lines. Seeds written by this
/// stand-in are 16 hex digits and replay exactly; longer (real-proptest)
/// seeds are re-hashed into a deterministic substitute.
fn load_saved_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            if token.len() <= 16 {
                u64::from_str_radix(token, 16).ok()
            } else {
                Some(fnv1a(token.as_bytes()))
            }
        })
        .collect()
}

fn save_seed(manifest_dir: &str, source_file: &str, seed: u64, desc: &str) {
    let path = match regression_path(manifest_dir, source_file)
        .or_else(|| regression_create_path(manifest_dir, source_file))
    {
        Some(p) => p,
        None => return,
    };
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let line = format!("cc {seed:016x}");
    if existing.lines().any(|l| l.trim_start().starts_with(&line)) {
        return;
    }
    let mut out = existing;
    if out.is_empty() {
        out.push_str(
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n",
        );
    }
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&format!("{line} # shrinks to {desc}\n"));
    let _ = std::fs::write(&path, out);
}

/// Runs one property test: saved regression seeds first, then
/// `config.cases` fresh deterministic cases.
pub fn run<F>(config: &ProptestConfig, manifest_dir: &str, file: &str, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base_seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
        Err(_) => fnv1a(format!("{file}::{test_name}").as_bytes()),
    };
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases);

    let mut run_case = |seed: u64, saved: bool| {
        let mut rng = TestRng::from_seed(seed);
        match f(&mut rng) {
            Ok(()) => true,
            Err(TestCaseError::Reject(_)) if saved => true, // stale assumption
            Err(TestCaseError::Reject(_)) => false,
            Err(TestCaseError::Fail(msg)) => {
                if !saved {
                    // Persist before reporting so the case is pinned even
                    // if the panic message is lost.
                    let first_line = msg.lines().last().unwrap_or("").to_string();
                    save_seed(manifest_dir, file, seed, &first_line);
                }
                panic!(
                    "proptest stand-in: property `{test_name}` failed \
                     (seed {seed:#018x}, {})\n{msg}",
                    if saved {
                        "saved regression"
                    } else {
                        "fresh case"
                    },
                );
            }
        }
    };

    if let Some(path) = regression_path(manifest_dir, file) {
        for seed in load_saved_seeds(&path) {
            run_case(seed, true);
        }
    }

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut i = 0u64;
    while passed < cases {
        let seed = base_seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left(17);
        if run_case(seed, false) {
            passed += 1;
        } else {
            rejected += 1;
            assert!(
                rejected <= config.max_global_rejects,
                "proptest stand-in: too many rejected cases ({rejected}) in `{test_name}`"
            );
        }
        i += 1;
    }
}
