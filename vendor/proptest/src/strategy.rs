//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::fmt;

/// A recipe for generating values of one type.
///
/// The stand-in generates eagerly from a seeded RNG; there is no value
/// tree and no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $via:ident),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$via(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$via(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(
    u8 => i128_in, u16 => i128_in, u32 => i128_in, u64 => i128_in, usize => i128_in,
    i8 => i128_in, i16 => i128_in, i32 => i128_in, i64 => i128_in, isize => i128_in
);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty float range strategy");
                let u = rng.unit_f64() as $t;
                start + (end - start) * u
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
