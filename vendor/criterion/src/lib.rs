//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark for a fixed number of timed iterations after a
//! short warm-up and prints mean / min wall-clock time per iteration.
//! No statistics, plots, or saved baselines — just enough to execute
//! `cargo bench` benchmarks and compare runs by eye. The iteration count
//! can be tuned with `CRITERION_STANDIN_ITERS` (default 20).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measured_iters() -> u64 {
    std::env::var("CRITERION_STANDIN_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20)
}

/// Benchmark identifier: a function name plus a parameter, rendered as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            samples: Vec::with_capacity(iters as usize),
        }
    }

    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: populate caches / lazy statics outside the timing.
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is not
    /// counted.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<50} mean {mean:>12?}   min {min:>12?}   ({} iters)",
            self.samples.len()
        );
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters: u64, mut f: F) {
    let mut bencher = Bencher::new(iters);
    f(&mut bencher);
    bencher.report(id);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Runs a benchmark named `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.iters, f);
        self
    }

    /// Runs a benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.iters, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (No summary output in the stand-in.)
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            iters: measured_iters(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iters = self.iters;
        BenchmarkGroup {
            name: name.into(),
            iters,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.iters, f);
        self
    }
}

/// Collects benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion { iters: 3 };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter_with_setup(|| n, |x| x * x)
        });
        group.finish();
    }
}
