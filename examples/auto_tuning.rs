//! Advanced usage: the paper's future-work features implemented here —
//! automatic recall-limit selection, N-stage pruning, multi-class
//! classification with misclassification costs, and threshold-free
//! precision-recall analysis.
//!
//! Run with: `cargo run --release --example auto_tuning`

use pnrule::prelude::*;
use pnrule::synth::numeric::NumericModelConfig;
use pnrule::synth::SynthScale;

fn main() {
    // --- auto-tuned binary PNrule on nsyn3 ---
    let cfg = NumericModelConfig::nsyn(3);
    let train = pnrule::synth::numeric::generate(
        &cfg,
        &SynthScale {
            n_records: 60_000,
            target_frac: 0.003,
        },
        1,
    );
    let test = pnrule::synth::numeric::generate(
        &cfg,
        &SynthScale {
            n_records: 30_000,
            target_frac: 0.003,
        },
        2,
    );
    let target = train.class_code("C").unwrap();
    println!("dataset summary:\n{}", pnrule::data::describe(&train));

    let (model, chosen) = fit_auto(&train, target, &AutoTuneOptions::default());
    println!(
        "auto-tuned parameters: rp={} rn={} P1={:?}",
        chosen.rp, chosen.rn, chosen.max_p_rule_len
    );
    let cm = evaluate_classifier(&model, &test, target);
    println!(
        "auto-tuned test: R {:.2}% P {:.2}% F {:.4}",
        cm.recall() * 100.0,
        cm.precision() * 100.0,
        cm.f_measure()
    );

    // --- N-stage pruning on a validation split ---
    // Wider peaks (tr=2) make the P-phase capture many false positives, so
    // the N-stage learns plenty of rules — some of them overfit noise.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let wide = NumericModelConfig::nsyn(3).with_widths(2.0, 2.0);
    let wide_train = pnrule::synth::numeric::generate(
        &wide,
        &SynthScale {
            n_records: 60_000,
            target_frac: 0.003,
        },
        4,
    );
    let wide_test = pnrule::synth::numeric::generate(
        &wide,
        &SynthScale {
            n_records: 30_000,
            target_frac: 0.003,
        },
        5,
    );
    let mut rng = StdRng::seed_from_u64(3);
    let (sub_train, valid) = stratified_split(&wide_train, 0.7, &mut rng);
    let overfit = PnruleLearner::new(PnruleParams {
        rn: 0.999,
        ..Default::default()
    })
    .fit(&sub_train, target);
    let pruned = prune_n_rules(&overfit, &sub_train, &valid, 1.0);
    println!(
        "\nN-stage pruning (nsyn3 tr=nr=2): {} -> {} N-rules, test F {:.4} -> {:.4}",
        overfit.n_rules.len(),
        pruned.n_rules.len(),
        evaluate_classifier(&overfit, &wide_test, target).f_measure(),
        evaluate_classifier(&pruned, &wide_test, target).f_measure()
    );

    // --- threshold-free view: the precision-recall curve ---
    let curve = score_curve(&model, &test, target);
    let best = curve.best_f_point().expect("positives present");
    println!(
        "\nPR analysis: AUC-PR {:.4}; best F {:.4} at threshold {:.3} (default 0.5: F {:.4})",
        curve.auc_pr(),
        best.f,
        best.threshold,
        cm.f_measure()
    );

    // --- multi-class reduction on the KDD simulation ---
    let kdd = pnrule::kddsim::generate_train(30_000, 9);
    let mc = MultiClassPnrule::fit(&kdd, &PnruleParams::default());
    let mut confusion = pnrule::metrics::MulticlassConfusion::new(kdd.n_classes());
    for row in 0..kdd.n_rows() {
        confusion.record(
            kdd.label(row) as usize,
            mc.classify(&kdd, row) as usize,
            1.0,
        );
    }
    println!(
        "\nmulti-class KDD (5 classes): accuracy {:.4}, per-class F:",
        confusion.accuracy()
    );
    for c in 0..kdd.n_classes() {
        println!(
            "  {:<8} F {:.4}",
            kdd.class_name(c as u32),
            confusion.binary_for(c).f_measure()
        );
    }
}
