//! Why PNrule is *specifically* a rare-class method: sweep the target-class
//! proportion of the `syngen` model (the paper's Table 5 protocol) and
//! watch the gap between PNrule and RIPPER close as the class becomes
//! prevalent.
//!
//! Run with: `cargo run --release --example rare_class_sweep`

use pnrule::prelude::*;
use pnrule::synth::general::GeneralModelConfig;
use pnrule::synth::SynthScale;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = GeneralModelConfig::default();
    let scale = SynthScale {
        n_records: 60_000,
        target_frac: 0.003,
    };
    let full_train = pnrule::synth::general::generate(&cfg, &scale, 11);
    let full_test = pnrule::synth::general::generate(
        &cfg,
        &SynthScale {
            n_records: 30_000,
            target_frac: 0.003,
        },
        12,
    );
    let target = full_train.class_code("C").unwrap();
    let non_target = full_train.class_code("NC").unwrap();

    println!(
        "{:>9} {:>7} {:>10} {:>10}",
        "ntc-frac", "tc %", "RIPPER F", "PNrule F"
    );
    for frac in [1.0, 0.1, 0.02, 0.003] {
        let mut rng = StdRng::seed_from_u64(99);
        let train = pnrule::data::subsample_class(&full_train, non_target, frac, &mut rng);
        let test = pnrule::data::subsample_class(&full_test, non_target, frac, &mut rng);
        let tc_pct = 100.0 * train.class_counts()[target as usize] as f64 / train.n_rows() as f64;

        let rip = RipperLearner::new(RipperParams::default()).fit(&train, target);
        let rip_f = evaluate_classifier(&rip, &test, target).f_measure();

        let pn = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
        let pn_f = evaluate_classifier(&pn, &test, target).f_measure();

        println!("{frac:>9} {tc_pct:>6.1}% {rip_f:>10.4} {pn_f:>10.4}");
    }
    println!(
        "\nThe paper's observation: \"As the target class proportion increases, the\n\
         difference between the performances of all the three techniques becomes\n\
         lesser and lesser ... PNrule is clearly the best choice when the target\n\
         class is rare.\""
    );
}
