//! Quickstart: learn a two-phase PNrule model on a toy rare-class task and
//! inspect what it learned.
//!
//! Run with: `cargo run --example quickstart`

use pnrule::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Build a dataset with the structure the paper's introduction uses as
    // motivation: the rare class ("r2l" attacks) has an *impure* presence
    // signature — ftp connections — which also covers denial-of-service
    // floods. Precision requires learning the absence of the flood.
    let mut rng = StdRng::seed_from_u64(2001);
    let mut b = DatasetBuilder::new();
    b.add_attribute("service", AttrType::Categorical);
    b.add_attribute("conn_count", AttrType::Numeric);
    b.add_class("r2l");
    b.add_class("other");
    for _ in 0..20_000 {
        let service = match rng.gen_range(0..10) {
            0 => "ftp",
            1..=5 => "http",
            _ => "smtp",
        };
        // ftp traffic splits into quiet sessions (attacks) and floods
        let flood = rng.gen_bool(0.4);
        let conn_count = if flood {
            rng.gen_range(150.0..250.0)
        } else {
            rng.gen_range(0.0..20.0)
        };
        let label = if service == "ftp" && !flood {
            "r2l"
        } else {
            "other"
        };
        b.push_row(&[Value::cat(service), Value::num(conn_count)], label, 1.0)
            .unwrap();
    }
    let data = b.finish();
    let target = data.class_code("r2l").unwrap();
    println!(
        "dataset: {} records, {} targets ({:.2}%)",
        data.n_rows(),
        data.class_counts()[target as usize],
        100.0 * data.class_counts()[target as usize] as f64 / data.n_rows() as f64
    );

    // Train PNrule with single-condition P-rules (the paper's "P1"
    // configuration: "restricting P-rule length to 1 allows P-rules to be
    // very general, thus giving PNrule more ability to collectively remove
    // the false positives in second phase"). The P-phase grabs the
    // high-support ftp signature; the N-phase removes the flood false
    // positives it inevitably captures.
    let params = PnruleParams {
        max_p_rule_len: Some(1),
        ..Default::default()
    };
    let model = PnruleLearner::new(params).fit(&data, target);
    println!("\n{}", model.describe(data.schema()));

    // Evaluate with the paper's metrics.
    let cm = evaluate_classifier(&model, &data, target);
    println!(
        "recall {:.2}%  precision {:.2}%  F {:.4}",
        cm.recall() * 100.0,
        cm.precision() * 100.0,
        cm.f_measure()
    );

    // Explain an individual decision.
    let row = (0..data.n_rows())
        .find(|&r| data.label(r) == target)
        .unwrap();
    let trace = model.trace(&data, row);
    println!(
        "\nrecord {row}: P-rule {:?}, N-rule {:?}, score {:.3} -> {}",
        trace.p_rule,
        trace.n_rule,
        pnr_rules::BinaryClassifier::score(&model, &data, row),
        if model.predict(&data, row) {
            "r2l"
        } else {
            "other"
        }
    );

    assert!(
        cm.f_measure() > 0.95,
        "the toy task should be learned nearly perfectly"
    );
}
