//! Persisting datasets and trained models: CSV round-trips for data, JSON
//! round-trips for every model type — the operational glue a production
//! deployment needs.
//!
//! Run with: `cargo run --example model_persistence`

use pnrule::data::{read_csv_str, write_csv_string, CsvOptions};
use pnrule::prelude::*;

fn main() {
    // Build a small dataset, ship it through CSV, and confirm fidelity.
    let mut b = DatasetBuilder::new();
    b.add_attribute("bytes", AttrType::Numeric);
    b.add_attribute("proto", AttrType::Categorical);
    for i in 0..600 {
        let bytes = (i % 50) as f64 * 10.0;
        let proto = if i % 3 == 0 { "udp" } else { "tcp" };
        let label = if bytes < 60.0 && proto == "udp" {
            "anomaly"
        } else {
            "normal"
        };
        b.push_row(&[Value::num(bytes), Value::cat(proto)], label, 1.0)
            .unwrap();
    }
    let data = b.finish();
    let csv = write_csv_string(&data, ',');
    let reloaded = read_csv_str(&csv, &CsvOptions::default()).unwrap();
    assert_eq!(reloaded.n_rows(), data.n_rows());
    println!("CSV round-trip: {} records ok", reloaded.n_rows());

    // Train all three learners and persist each as JSON.
    let target = data.class_code("anomaly").unwrap();

    let pn = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
    let pn_json = serde_json::to_string(&pn).unwrap();
    let pn2: pnrule::core::PnruleModel = serde_json::from_str(&pn_json).unwrap();
    println!("PNrule model: {} bytes of JSON", pn_json.len());

    let rip = RipperLearner::new(RipperParams::default()).fit(&data, target);
    let rip_json = serde_json::to_string(&rip).unwrap();
    let rip2: pnrule::ripper::RipperModel = serde_json::from_str(&rip_json).unwrap();
    println!("RIPPER model: {} bytes of JSON", rip_json.len());

    let c45 = C45Learner::new(C45Params::default()).fit_rules(&data);
    let c45_json = serde_json::to_string(&c45).unwrap();
    let c45_2: pnrule::c45::C45RulesModel = serde_json::from_str(&c45_json).unwrap();
    println!("C4.5rules model: {} bytes of JSON", c45_json.len());

    // Reloaded models must agree with the originals on every record.
    for row in 0..data.n_rows() {
        assert_eq!(pn.predict(&data, row), pn2.predict(&data, row));
        assert_eq!(rip.predict(&data, row), rip2.predict(&data, row));
        assert_eq!(c45.classify(&data, row), c45_2.classify(&data, row));
    }
    println!(
        "all reloaded models agree with the originals on {} records",
        data.n_rows()
    );
}
