//! Network intrusion detection on the simulated KDD-CUP'99 data: compare
//! PNrule against RIPPER and C4.5rules on the rare `r2l` class, then show
//! the paper's section-4 tuning story — generalising P-rules to length 1
//! and adjusting the `rp`/`rn` recall limits.
//!
//! Run with: `cargo run --release --example intrusion_detection`

use pnrule::prelude::*;
use pnrule::rules::EvalMetric;

fn evaluate(name: &str, cm: &BinaryConfusion) {
    println!(
        "{name:<24} recall {:6.2}%  precision {:6.2}%  F {:.4}",
        cm.recall() * 100.0,
        cm.precision() * 100.0,
        cm.f_measure()
    );
}

fn main() {
    let train = pnrule::kddsim::generate_train(50_000, 1);
    let test = pnrule::kddsim::generate_test(30_000, 2);
    let target = train.class_code("r2l").unwrap();
    println!(
        "train: {} records, {} r2l ({:.2}%) | test: {} records, {} r2l ({:.2}%)",
        train.n_rows(),
        train.class_counts()[target as usize],
        100.0 * train.class_counts()[target as usize] as f64 / train.n_rows() as f64,
        test.n_rows(),
        test.class_counts()[target as usize],
        100.0 * test.class_counts()[target as usize] as f64 / test.n_rows() as f64,
    );
    println!("(the test distribution is shifted and contains novel attack subclasses)\n");

    // --- the three core methods, default settings ---
    let pn = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
    evaluate("PNrule (default)", &evaluate_classifier(&pn, &test, target));

    let rip = RipperLearner::new(RipperParams::default()).fit(&train, target);
    evaluate("RIPPER", &evaluate_classifier(&rip, &test, target));

    let c45 = C45Learner::new(C45Params::default()).fit_rules(&train);
    evaluate(
        "C4.5rules",
        &evaluate_classifier(&c45.binary_view(target), &test, target),
    );

    // --- section 4: make P-rules very general (length 1) and sweep rn ---
    println!("\nP-rule length 1 (very general presence rules), rp=0.995:");
    for rn in [0.8, 0.9, 0.95, 0.995] {
        let params = PnruleParams {
            max_p_rule_len: Some(1),
            metric: EvalMetric::FoilGain,
            ..PnruleParams::with_recall_limits(0.995, rn)
        };
        let model = PnruleLearner::new(params).fit(&train, target);
        let cm = evaluate_classifier(&model, &test, target);
        evaluate(&format!("PNrule.P1 rn={rn}"), &cm);
    }

    // --- inspect the default model's rules ---
    println!("\nlearned model:\n{}", pn.describe(train.schema()));
}
