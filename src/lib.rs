//! # PNrule — two-phase rule induction for rare classes
//!
//! A complete Rust implementation of *"Mining Needles in a Haystack:
//! Classifying Rare Classes via Two-Phase Rule Induction"* (Joshi, Agarwal,
//! Kumar — SIGMOD 2001), including the PNrule learner itself, the RIPPER
//! and C4.5/C4.5rules baselines it is compared against, the paper's
//! synthetic dataset models, a KDD-CUP'99-style intrusion simulator, and an
//! experiment harness regenerating every table and figure.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`data`] | `pnr-data` | columnar datasets, weights, splits, CSV |
//! | [`metrics`] | `pnr-metrics` | recall / precision / F-measure |
//! | [`rules`] | `pnr-rules` | conditions, rules, metrics, condition search |
//! | [`core`] | `pnr-core` | the PNrule two-phase learner |
//! | [`ripper`] | `pnr-ripper` | the RIPPER baseline |
//! | [`c45`] | `pnr-c45` | the C4.5 / C4.5rules baseline |
//! | [`synth`] | `pnr-synth` | the paper's synthetic dataset models |
//! | [`kddsim`] | `pnr-kddsim` | the KDD-CUP'99 simulator |
//! | [`telemetry`] | `pnr-telemetry` | fit spans, counters, NDJSON export |
//!
//! # Quickstart
//!
//! ```
//! use pnrule::prelude::*;
//!
//! // A rare class hiding in a numeric band of one attribute.
//! let mut b = DatasetBuilder::new();
//! b.add_attribute("x", AttrType::Numeric);
//! for i in 0..2_000 {
//!     let x = (i % 100) as f64;
//!     let label = if (40.0..42.0).contains(&x) { "rare" } else { "rest" };
//!     b.push_row(&[Value::num(x)], label, 1.0).unwrap();
//! }
//! let data = b.finish();
//! let target = data.class_code("rare").unwrap();
//!
//! let model = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
//! let cm = evaluate_classifier(&model, &data, target);
//! assert!(cm.f_measure() > 0.95);
//! ```

pub use pnr_c45 as c45;
pub use pnr_core as core;
pub use pnr_data as data;
pub use pnr_kddsim as kddsim;
pub use pnr_metrics as metrics;
pub use pnr_ripper as ripper;
pub use pnr_rules as rules;
pub use pnr_synth as synth;
pub use pnr_telemetry as telemetry;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use pnr_c45::{C45Learner, C45Params};
    pub use pnr_core::{
        fit_auto, prune_n_rules, AutoTuneOptions, MultiClassPnrule, PnruleLearner, PnruleModel,
        PnruleParams,
    };
    pub use pnr_data::{
        stratified_split, stratify_weights, train_test_split, AttrType, Dataset, DatasetBuilder,
        RowSet, Value,
    };
    pub use pnr_metrics::{BinaryConfusion, PrCurve, PrfReport};
    pub use pnr_ripper::{RipperLearner, RipperParams};
    pub use pnr_rules::{
        evaluate_classifier, score_curve, BinaryClassifier, Condition, EvalMetric, Rule, RuleSet,
    };
    pub use pnr_telemetry::{Counter, NoopSink, RecordingSink, SpanKind, TelemetrySink};
}
