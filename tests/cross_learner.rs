//! Cross-learner integration tests: the three learners behind one trait,
//! determinism, serialisation, and the paper's comparative claims on a
//! controlled fixture.

use pnrule::prelude::*;
use pnrule::synth::numeric::NumericModelConfig;
use pnrule::synth::SynthScale;

/// Train/test pair from nsyn3 (the paper's workhorse dataset).
fn fixture() -> (Dataset, Dataset, u32) {
    let cfg = NumericModelConfig::nsyn(3);
    let train = pnrule::synth::numeric::generate(
        &cfg,
        &SynthScale {
            n_records: 50_000,
            target_frac: 0.003,
        },
        1,
    );
    let test = pnrule::synth::numeric::generate(
        &cfg,
        &SynthScale {
            n_records: 25_000,
            target_frac: 0.003,
        },
        2,
    );
    let target = train.class_code("C").unwrap();
    (train, test, target)
}

/// Every model boxed behind the common trait.
fn all_models(train: &Dataset, target: u32) -> Vec<(&'static str, Box<dyn BinaryClassifier>)> {
    let pn = PnruleLearner::new(PnruleParams::default()).fit(train, target);
    let rip = RipperLearner::new(RipperParams::default()).fit(train, target);
    let tree = C45Learner::new(C45Params::default()).fit_tree(train);
    struct OwnedTreeView {
        model: pnrule::c45::C45TreeModel,
        target: u32,
    }
    impl BinaryClassifier for OwnedTreeView {
        fn score(&self, data: &Dataset, row: usize) -> f64 {
            self.model.binary_view(self.target).score(data, row)
        }
        fn predict(&self, data: &Dataset, row: usize) -> bool {
            self.model.binary_view(self.target).predict(data, row)
        }
    }
    vec![
        ("pnrule", Box::new(pn)),
        ("ripper", Box::new(rip)),
        (
            "c45tree",
            Box::new(OwnedTreeView {
                model: tree,
                target,
            }),
        ),
    ]
}

#[test]
fn all_learners_work_through_the_trait() {
    let (train, test, target) = fixture();
    for (name, model) in all_models(&train, target) {
        let cm = evaluate_classifier(model.as_ref(), &test, target);
        assert!(
            cm.f_measure() > 0.2,
            "{name} collapsed on nsyn3: F {}",
            cm.f_measure()
        );
        // scores must be valid probabilities
        for row in (0..test.n_rows()).step_by(997) {
            let s = model.score(&test, row);
            assert!((0.0..=1.0).contains(&s), "{name} score {s}");
        }
    }
}

#[test]
fn pnrule_wins_on_the_rare_class_fixture() {
    // The paper's central claim on nsyn3 (0.3% target): PNrule's F beats
    // both baselines.
    let (train, test, target) = fixture();
    let mut scores = std::collections::HashMap::new();
    for (name, model) in all_models(&train, target) {
        scores.insert(
            name,
            evaluate_classifier(model.as_ref(), &test, target).f_measure(),
        );
    }
    let pn = scores["pnrule"];
    assert!(
        pn >= scores["ripper"] && pn >= scores["c45tree"],
        "PNrule F {pn} vs RIPPER {} vs C4.5 {}",
        scores["ripper"],
        scores["c45tree"]
    );
}

#[test]
fn learners_are_deterministic() {
    let (train, _, target) = fixture();
    let p1 = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
    let p2 = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
    assert_eq!(p1.p_rules, p2.p_rules);
    assert_eq!(p1.n_rules, p2.n_rules);
    let r1 = RipperLearner::new(RipperParams::default()).fit(&train, target);
    let r2 = RipperLearner::new(RipperParams::default()).fit(&train, target);
    assert_eq!(r1.rules(), r2.rules());
}

#[test]
fn rp_controls_recall_ceiling() {
    let (train, test, target) = fixture();
    let low = PnruleLearner::new(PnruleParams {
        rp: 0.5,
        ..Default::default()
    })
    .fit(&train, target);
    let high = PnruleLearner::new(PnruleParams {
        rp: 0.99,
        ..Default::default()
    })
    .fit(&train, target);
    let cm_low = evaluate_classifier(&low, &test, target);
    let cm_high = evaluate_classifier(&high, &test, target);
    assert!(
        cm_high.recall() + 1e-9 >= cm_low.recall(),
        "rp=0.99 recall {} < rp=0.5 recall {}",
        cm_high.recall(),
        cm_low.recall()
    );
}

#[test]
fn pnrule_model_serde_preserves_decisions() {
    let (train, test, target) = fixture();
    let model = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
    let back: pnrule::core::PnruleModel =
        serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
    for row in (0..test.n_rows()).step_by(313) {
        assert_eq!(model.predict(&test, row), back.predict(&test, row));
    }
}

#[test]
fn range_ablation_hurts_or_ties_on_peak_data() {
    // nsyn signatures are interior peaks: explicit ranges should never be
    // worse than one-sided-only search.
    let (train, test, target) = fixture();
    let with = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
    let without = PnruleLearner::new(PnruleParams {
        use_ranges: false,
        ..Default::default()
    })
    .fit(&train, target);
    let f_with = evaluate_classifier(&with, &test, target).f_measure();
    let f_without = evaluate_classifier(&without, &test, target).f_measure();
    assert!(
        f_with >= f_without - 0.1,
        "ranges should help on peaks: with {} vs without {}",
        f_with,
        f_without
    );
}
