//! Smoke tests of the experiment harness at miniature scale: every table
//! function runs end-to-end and produces sane rows.

use pnr_experiments::experiments;
use pnr_experiments::CliOptions;

fn tiny() -> CliOptions {
    CliOptions {
        scale: 0.003,
        threads: 4,
        out_dir: "/tmp/pnr_harness_test".into(),
        ..Default::default()
    }
}

#[test]
fn table1_smoke() {
    let results = experiments::table1(&tiny());
    assert_eq!(results.len(), 6);
    for exp in &results {
        assert_eq!(exp.rows.len(), 5, "{}", exp.id);
        for row in &exp.rows {
            assert!((0.0..=1.0).contains(&row.f), "{} {}", exp.id, row.label);
        }
    }
}

#[test]
fn table2_smoke() {
    let results = experiments::table2(&tiny());
    assert_eq!(results.len(), 4);
    for exp in &results {
        let labels: Vec<&str> = exp.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["C4.5-we", "RIPPER-we", "PNrule"]);
    }
}

#[test]
fn table3_smoke() {
    let results = experiments::table3(&tiny());
    assert_eq!(results.len(), 10);
    assert!(results[0].id.ends_with("coa1"));
    assert!(results[9].id.ends_with("coad4"));
}

#[test]
fn table4_and_5_smoke() {
    let t4 = experiments::table4(&tiny());
    assert_eq!(t4.len(), 4);
    let t5 = experiments::table5(&tiny());
    assert_eq!(t5.len(), 12);
    // the sweep must actually raise the target proportion
    let first = &t5[0].description;
    let last = &t5[6].description;
    assert!(
        first.contains("0.3%") || first.contains("0.2%") || first.contains("0.4%"),
        "{first}"
    );
    assert!(last.contains("5") || last.contains("4"), "{last}");
}

#[test]
fn section4_grid_smoke() {
    let grids = experiments::rp_rn_grid(&tiny(), "r2l", &[0.95], &[0.9], false);
    assert_eq!(grids.len(), 1);
    assert_eq!(grids[0].rows.len(), 1);
    assert_eq!(grids[0].rows[0].label, "rn=0.9");
}

#[test]
fn paper_reference_covers_every_table1_row() {
    use pnr_experiments::paper::paper_f;
    for ds in 1..=6 {
        for label in ["C4.5rules", "C4.5-we", "RIPPER", "RIPPER-we", "PNrule"] {
            assert!(
                paper_f(&format!("table1/nsyn{ds}"), label).is_some(),
                "missing paper value for nsyn{ds}/{label}"
            );
        }
    }
}
