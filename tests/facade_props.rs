//! Workspace-level property tests: classifier behaviour invariants that
//! cross crate boundaries.

use pnrule::prelude::*;
use proptest::prelude::*;

fn tiny_dataset(rows: &[(f64, bool)]) -> (Dataset, u32) {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_class("pos");
    b.add_class("neg");
    for &(x, p) in rows {
        b.push_row(&[Value::num(x)], if p { "pos" } else { "neg" }, 1.0)
            .unwrap();
    }
    (b.finish(), 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pnrule_never_crashes_on_arbitrary_labellings(
        rows in prop::collection::vec((-100.0f64..100.0, prop::bool::ANY), 4..120),
    ) {
        let (data, target) = tiny_dataset(&rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
        for row in 0..data.n_rows() {
            let s = pnrule::rules::BinaryClassifier::score(&model, &data, row);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn ripper_never_crashes_on_arbitrary_labellings(
        rows in prop::collection::vec((-100.0f64..100.0, prop::bool::ANY), 4..120),
    ) {
        let (data, target) = tiny_dataset(&rows);
        let model = RipperLearner::new(RipperParams::default()).fit(&data, target);
        let cm = evaluate_classifier(&model, &data, target);
        prop_assert!(cm.total() > 0.0);
    }

    #[test]
    fn c45_tree_classifies_every_record_into_a_valid_class(
        rows in prop::collection::vec((-100.0f64..100.0, prop::bool::ANY), 4..120),
    ) {
        let (data, _) = tiny_dataset(&rows);
        let model = C45Learner::new(C45Params::default()).fit_tree(&data);
        for row in 0..data.n_rows() {
            prop_assert!((model.classify(&data, row) as usize) < data.n_classes());
        }
    }

    #[test]
    fn perfectly_separable_data_is_learned_perfectly(
        threshold in -50.0f64..50.0,
        n in 40usize..150,
    ) {
        // positives strictly below the threshold with a clear margin
        let rows: Vec<(f64, bool)> = (0..n)
            .map(|i| {
                let offset = 1.0 + (i % 20) as f64;
                if i % 2 == 0 {
                    (threshold - offset, true)
                } else {
                    (threshold + offset, false)
                }
            })
            .collect();
        let (data, target) = tiny_dataset(&rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
        let cm = evaluate_classifier(&model, &data, target);
        prop_assert!(cm.f_measure() > 0.99, "separable data F {}", cm.f_measure());
    }

    #[test]
    fn evaluation_is_invariant_to_row_order(
        rows in prop::collection::vec((-100.0f64..100.0, prop::bool::ANY), 10..60),
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let (data, target) = tiny_dataset(&rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
        let cm1 = evaluate_classifier(&model, &data, target);
        let mut order: Vec<u32> = (0..data.n_rows() as u32).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let shuffled = data.select_rows(&order);
        let cm2 = evaluate_classifier(&model, &shuffled, target);
        prop_assert!((cm1.f_measure() - cm2.f_measure()).abs() < 1e-9);
        prop_assert!((cm1.tp - cm2.tp).abs() < 1e-9);
    }
}
