//! End-to-end integration tests: every learner through the public facade
//! API on the paper's synthetic models, with train/test generalisation.

use pnrule::prelude::*;
use pnrule::synth::categorical::CategoricalModelConfig;
use pnrule::synth::numeric::NumericModelConfig;
use pnrule::synth::SynthScale;

fn nsyn_pair(index: usize, n: usize, frac: f64) -> (Dataset, Dataset, u32) {
    let cfg = NumericModelConfig::nsyn(index);
    let scale = SynthScale {
        n_records: n,
        target_frac: frac,
    };
    let train = pnrule::synth::numeric::generate(&cfg, &scale, 100 + index as u64);
    let test = pnrule::synth::numeric::generate(
        &cfg,
        &SynthScale {
            n_records: n / 2,
            target_frac: frac,
        },
        200 + index as u64,
    );
    let target = train.class_code("C").unwrap();
    (train, test, target)
}

#[test]
fn pnrule_learns_nsyn1_structure() {
    let (train, test, target) = nsyn_pair(1, 30_000, 0.01);
    let model = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
    assert!(!model.p_rules.is_empty());
    let cm = evaluate_classifier(&model, &test, target);
    assert!(cm.f_measure() > 0.7, "nsyn1 test F {}", cm.f_measure());
}

#[test]
fn ripper_learns_nsyn1_structure() {
    let (train, test, target) = nsyn_pair(1, 30_000, 0.01);
    let model = RipperLearner::new(RipperParams::default()).fit(&train, target);
    let cm = evaluate_classifier(&model, &test, target);
    assert!(
        cm.f_measure() > 0.5,
        "nsyn1 RIPPER test F {}",
        cm.f_measure()
    );
}

#[test]
fn c45_learns_nsyn1_structure() {
    let (train, test, target) = nsyn_pair(1, 30_000, 0.01);
    let model = C45Learner::new(C45Params::default()).fit_rules(&train);
    let cm = evaluate_classifier(&model.binary_view(target), &test, target);
    assert!(
        cm.f_measure() > 0.5,
        "nsyn1 C4.5rules test F {}",
        cm.f_measure()
    );
}

#[test]
fn pnrule_beats_na_baseline_on_categorical_model() {
    let cfg = CategoricalModelConfig::coa(1);
    let scale = SynthScale {
        n_records: 20_000,
        target_frac: 0.01,
    };
    let train = pnrule::synth::categorical::generate(&cfg, &scale, 31);
    let test = pnrule::synth::categorical::generate(&cfg, &scale, 32);
    let target = train.class_code("C").unwrap();
    let model = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
    let cm = evaluate_classifier(&model, &test, target);
    // the all-negative baseline has F = 0; the model must do far better
    assert!(cm.f_measure() > 0.6, "coa1 test F {}", cm.f_measure());
    assert!(cm.precision() > 0.6, "coa1 precision {}", cm.precision());
}

#[test]
fn pnrule_handles_kdd_simulation_probe() {
    let train = pnrule::kddsim::generate_train(40_000, 41);
    let test = pnrule::kddsim::generate_test(20_000, 42);
    let target = train.class_code("probe").unwrap();
    let model = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
    let cm = evaluate_classifier(&model, &test, target);
    assert!(cm.f_measure() > 0.6, "probe test F {}", cm.f_measure());
}

#[test]
fn two_phase_structure_appears_on_overlapping_signatures() {
    // r2l's ftp presence signature overlaps dos flooding: PNrule should
    // learn at least one P-rule, and its N-phase or scoring must suppress
    // flood false positives well enough for decent precision.
    let train = pnrule::kddsim::generate_train(60_000, 51);
    let target = train.class_code("r2l").unwrap();
    let model = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
    assert!(!model.p_rules.is_empty(), "needs P-rules");
    let cm = evaluate_classifier(&model, &train, target);
    assert!(cm.precision() > 0.8, "train precision {}", cm.precision());
    assert!(cm.recall() > 0.8, "train recall {}", cm.recall());
}

#[test]
fn stratified_weighting_trades_precision_for_recall() {
    let (train, test, target) = nsyn_pair(3, 40_000, 0.003);
    let unit = RipperLearner::default().fit(&train, target);
    let strat = RipperLearner::default().fit(
        &train.with_weights(stratify_weights(&train, target)),
        target,
    );
    let cm_unit = evaluate_classifier(&unit, &test, target);
    let cm_strat = evaluate_classifier(&strat, &test, target);
    assert!(
        cm_strat.recall() >= cm_unit.recall() - 0.05,
        "stratified recall {} vs unit {}",
        cm_strat.recall(),
        cm_unit.recall()
    );
}

#[test]
fn splits_and_training_compose() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cfg = NumericModelConfig::nsyn(1);
    let all = pnrule::synth::numeric::generate(
        &cfg,
        &SynthScale {
            n_records: 20_000,
            target_frac: 0.02,
        },
        7,
    );
    let mut rng = StdRng::seed_from_u64(9);
    let (train, test) = stratified_split(&all, 0.7, &mut rng);
    let target = train.class_code("C").unwrap();
    let model = PnruleLearner::default().fit(&train, target);
    let cm = evaluate_classifier(&model, &test, target);
    assert!(cm.f_measure() > 0.7, "split-train F {}", cm.f_measure());
}

#[test]
fn facade_prelude_exposes_needed_types() {
    // compile-time check that the prelude covers the common workflow
    let _params: PnruleParams = PnruleParams::default();
    let _r: RipperParams = RipperParams::default();
    let _c: C45Params = C45Params::default();
    let _m: EvalMetric = EvalMetric::ZNumber;
}
