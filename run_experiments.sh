#!/bin/bash
# Regenerates every table/figure of the paper into results/.
# Usage: ./run_experiments.sh [scale]
#
# Completed (method, dataset) cells are checkpointed under
# results/checkpoints/; re-running after an interruption resumes from
# there (set RESUME_FLAGS=--no-resume to force a clean run). Each binary
# exits 0 only when every cell completed; the script runs everything
# regardless of individual failures and prints a pass/fail summary at
# the end, exiting non-zero when anything failed.
set -uo pipefail
SCALE="${1:-0.5}"
OUT=results
RESUME_FLAGS="${RESUME_FLAGS:-}"
mkdir -p "$OUT"
BIN=./target/release

declare -a NAMES=()
declare -a CODES=()

run_one() {
  local name="$1"
  shift
  local start code
  echo "=== $name ==="
  start=$(date +%s)
  "$@" > "$OUT/$name.txt" 2>&1
  code=$?
  echo "$name took $(( $(date +%s) - start ))s (exit $code)" | tee "$OUT/$name.time"
  NAMES+=("$name")
  CODES+=("$code")
}

for exp in table1 figure1 table2 table3 table4 table5 table6 \
           table_r2l table_r2l_p1 table_probe table_probe_p1; do
  # shellcheck disable=SC2086
  run_one "$exp" "$BIN/$exp" --scale "$SCALE" --out "$OUT" \
    --save-model "$OUT/models" $RESUME_FLAGS
done
run_one figure2 "$BIN/figure2"
run_one figure3 "$BIN/figure3"
# shellcheck disable=SC2086
run_one ablations "$BIN/ablations" --scale 0.3 --out "$OUT" $RESUME_FLAGS

"$BIN/report_md" --out "$OUT" > EXPERIMENTS_RESULTS.md
REPORT_CODE=$?
NAMES+=(report_md)
CODES+=("$REPORT_CODE")

# Every saved model artifact must load and pass its integrity check.
# (Cells resumed from checkpoints are not re-run and save no artifact,
# so a resumed run may verify fewer files than a clean one.)
VERIFY_CODE=0
N_MODELS=0
for artifact in "$OUT"/models/*.artifact; do
  [ -e "$artifact" ] || continue
  N_MODELS=$((N_MODELS + 1))
  if ! "$BIN/predict" --model "$artifact" --verify-only \
      >> "$OUT/verify-models.txt" 2>&1; then
    echo "FAILED to verify $artifact" >> "$OUT/verify-models.txt"
    VERIFY_CODE=1
  fi
done
echo "verified $N_MODELS model artifact(s)" | tee -a "$OUT/verify-models.txt"
NAMES+=(verify-models)
CODES+=("$VERIFY_CODE")

echo
echo "=== summary (scale $SCALE) ==="
printf '%-16s %s\n' "experiment" "status"
FAILED=0
for i in "${!NAMES[@]}"; do
  if [ "${CODES[$i]}" -eq 0 ]; then
    printf '%-16s PASS\n' "${NAMES[$i]}"
  else
    printf '%-16s FAIL (exit %s)\n' "${NAMES[$i]}" "${CODES[$i]}"
    FAILED=$((FAILED + 1))
  fi
done
if [ "$FAILED" -gt 0 ]; then
  echo "$FAILED experiment(s) failed"
  exit 1
fi
echo ALL_DONE
