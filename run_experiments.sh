#!/bin/bash
# Regenerates every table/figure of the paper into results/.
# Usage: ./run_experiments.sh [scale]
set -u
SCALE="${1:-0.5}"
OUT=results
mkdir -p "$OUT"
BIN=./target/release
for exp in table1 figure1 table2 table3 table4 table5 table6 \
           table_r2l table_r2l_p1 table_probe table_probe_p1; do
  echo "=== $exp (scale $SCALE) ==="
  start=$(date +%s)
  "$BIN/$exp" --scale "$SCALE" --out "$OUT" > "$OUT/$exp.txt" 2>&1 || echo "$exp FAILED"
  echo "$exp took $(( $(date +%s) - start ))s" | tee "$OUT/$exp.time"
done
"$BIN/figure2" > "$OUT/figure2.txt" 2>&1
"$BIN/figure3" > "$OUT/figure3.txt" 2>&1
echo "=== ablations ==="
"$BIN/ablations" --scale 0.3 --out "$OUT" > "$OUT/ablations.txt" 2>&1 || echo "ablations FAILED"
"$BIN/report_md" --out "$OUT" > EXPERIMENTS_RESULTS.md 2>/dev/null || true
echo ALL_DONE
