//! Cell-level checkpoint/resume for the experiment pipeline.
//!
//! Every completed (experiment, method, scale, seed) cell is persisted as
//! one small JSON file under `<out_dir>/checkpoints/`, written atomically
//! (temp file + rename) the moment the cell finishes. On restart with
//! `--resume` (the default) completed cells are loaded instead of re-run,
//! so a `kill -9` mid-table loses at most the cells that were in flight.
//!
//! Files are keyed by an FNV-1a fingerprint of the cell inputs; the full
//! canonical key is stored inside the file and verified on load, so a
//! fingerprint collision or a stale file from a different configuration
//! falls back to re-running the cell rather than serving wrong results.
//! Failed cells are never checkpointed — a resumed run retries them.

use crate::report::ResultRow;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Identity of one experiment cell. `scale` participates via its exact
/// bit pattern, so `0.1 + 0.2`-style near-misses never alias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellKey {
    /// Experiment id, e.g. `"table1/nsyn3"` — identifies the dataset.
    pub experiment: String,
    /// Method label within the experiment, e.g. `"PNrule"`.
    pub method: String,
    /// Dataset scale factor.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl CellKey {
    /// Canonical string the fingerprint is computed over. The unit
    /// separator keeps `("a", "bc")` distinct from `("ab", "c")`.
    fn canonical(&self) -> String {
        format!(
            "{}\u{1f}{}\u{1f}{:016x}\u{1f}{}",
            self.experiment,
            self.method,
            self.scale.to_bits(),
            self.seed
        )
    }

    /// FNV-1a 64-bit fingerprint of the canonical key. Both the
    /// checkpoint store and the per-cell telemetry export
    /// ([`crate::telemetry_out`]) name their files by this value, so a
    /// cell's result and its trace sit side by side under the same key.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.canonical().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

/// One persisted cell: the key it was computed for plus its result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CellRecord {
    key: CellKey,
    row: ResultRow,
}

/// A directory-backed checkpoint store. A disabled store loads nothing
/// and writes nothing, so `--no-resume` runs leave no trace and tests
/// cannot be polluted by earlier results.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    dir: PathBuf,
    enabled: bool,
}

impl Checkpoint {
    /// A store under `<out_dir>/checkpoints`. With `enabled` false, both
    /// [`load`](Self::load) and [`store`](Self::store) are no-ops.
    pub fn new(out_dir: impl AsRef<Path>, enabled: bool) -> Self {
        Checkpoint {
            dir: out_dir.as_ref().join("checkpoints"),
            enabled,
        }
    }

    /// The cell's file path.
    fn path_for(&self, key: &CellKey) -> PathBuf {
        self.dir.join(format!("{:016x}.json", key.fingerprint()))
    }

    /// Loads a completed cell, or `None` when absent, unreadable, stale
    /// (stored key differs — fingerprint collision or format drift), or a
    /// failed row slipped in. Any problem means "re-run the cell", never
    /// an error.
    pub fn load(&self, key: &CellKey) -> Option<ResultRow> {
        if !self.enabled {
            return None;
        }
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        let record: CellRecord = serde_json::from_str(&text).ok()?;
        if record.key != *key || record.row.is_failed() {
            return None;
        }
        Some(record.row)
    }

    /// Persists a completed cell atomically (temp file + rename). Failed
    /// rows are not stored — a resumed run should retry them. IO problems
    /// are reported to stderr but never fail the run: a checkpoint is an
    /// optimisation, not a correctness requirement.
    pub fn store(&self, key: &CellKey, row: &ResultRow) {
        if !self.enabled || row.is_failed() {
            return;
        }
        let record = CellRecord {
            key: key.clone(),
            row: row.clone(),
        };
        let json = match serde_json::to_string_pretty(&record) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("checkpoint serialization failed: {e}");
                return;
            }
        };
        let path = self.path_for(key);
        let tmp = path.with_extension("tmp");
        let write = std::fs::create_dir_all(&self.dir)
            .and_then(|()| std::fs::write(&tmp, json))
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            eprintln!("checkpoint write failed for {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_metrics::PrfReport;

    fn key(exp: &str, method: &str) -> CellKey {
        CellKey {
            experiment: exp.to_string(),
            method: method.to_string(),
            scale: 0.25,
            seed: 42,
        }
    }

    fn row(label: &str, f: f64) -> ResultRow {
        ResultRow::new(
            label,
            PrfReport {
                recall: f,
                precision: f,
                f,
            },
        )
    }

    fn temp_store(name: &str) -> (Checkpoint, PathBuf) {
        let dir = std::env::temp_dir().join(format!("pnr_ckpt_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        (Checkpoint::new(&dir, true), dir)
    }

    #[test]
    fn store_then_load_round_trips() {
        let (ckpt, dir) = temp_store("round");
        let k = key("table1/nsyn1", "PNrule");
        assert!(ckpt.load(&k).is_none(), "empty store has nothing");
        ckpt.store(&k, &row("PNrule", 0.9));
        let back = ckpt.load(&k).expect("stored cell loads");
        assert_eq!(back.label, "PNrule");
        assert_eq!(back.f, 0.9);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let (ckpt, dir) = temp_store("alias");
        ckpt.store(&key("table1/nsyn1", "PNrule"), &row("PNrule", 0.9));
        assert!(ckpt.load(&key("table1/nsyn1", "RIPPER")).is_none());
        assert!(ckpt.load(&key("table1/nsyn2", "PNrule")).is_none());
        let mut other_scale = key("table1/nsyn1", "PNrule");
        other_scale.scale = 0.5;
        assert!(ckpt.load(&other_scale).is_none());
        let mut other_seed = key("table1/nsyn1", "PNrule");
        other_seed.seed = 7;
        assert!(ckpt.load(&other_seed).is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn stale_or_corrupt_files_fall_back_to_rerun() {
        let (ckpt, dir) = temp_store("stale");
        let k = key("table2/x", "PNrule");
        ckpt.store(&k, &row("PNrule", 0.8));
        // Corrupt the file in place: load must return None, not error.
        let path = ckpt.path_for(&k);
        std::fs::write(&path, "{not json").unwrap();
        assert!(ckpt.load(&k).is_none());
        // A record whose stored key differs (simulated collision) is
        // also rejected.
        let other = key("tableX/other", "RIPPER");
        let record = CellRecord {
            key: other,
            row: row("RIPPER", 0.7),
        };
        std::fs::write(&path, serde_json::to_string(&record).unwrap()).unwrap();
        assert!(ckpt.load(&k).is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn disabled_store_neither_loads_nor_writes() {
        let dir = std::env::temp_dir().join(format!("pnr_ckpt_off_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let on = Checkpoint::new(&dir, true);
        let off = Checkpoint::new(&dir, false);
        let k = key("table3/y", "RIPPER");
        on.store(&k, &row("RIPPER", 0.6));
        assert!(off.load(&k).is_none(), "disabled store must not load");
        let k2 = key("table3/z", "PNrule");
        off.store(&k2, &row("PNrule", 0.5));
        assert!(on.load(&k2).is_none(), "disabled store must not write");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failed_rows_are_never_checkpointed() {
        let (ckpt, dir) = temp_store("failed");
        let k = key("table4/q", "PNrule");
        ckpt.store(&k, &ResultRow::failed("PNrule", "panicked"));
        assert!(ckpt.load(&k).is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fingerprint_is_stable_and_key_sensitive() {
        let a = key("e", "m").fingerprint();
        assert_eq!(a, key("e", "m").fingerprint(), "deterministic");
        assert_ne!(a, key("e", "n").fingerprint());
        // separator discipline: ("ab","c") vs ("a","bc")
        let k1 = CellKey {
            experiment: "ab".into(),
            method: "c".into(),
            scale: 1.0,
            seed: 1,
        };
        let k2 = CellKey {
            experiment: "a".into(),
            method: "bc".into(),
            scale: 1.0,
            seed: 1,
        };
        assert_ne!(k1.fingerprint(), k2.fingerprint());
    }
}
