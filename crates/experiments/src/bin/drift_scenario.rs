//! Drift-recovery scenario: how much rare-class recall does the sentinel
//! loop (detect → windowed refit → adopt) buy back after an attack-mix
//! shift, versus serving the original model unchanged?
//!
//! Usage: `drift_scenario [--seed N] [--shift ROW] [--windows N]
//! [--window-rows N] [--target CLASS] [--out FILE]`
//!
//! One deterministic [`DriftStream`](pnr_kddsim::DriftStream) (train mix
//! stepping to the shifted test mix at `--shift`) feeds two pipelines in
//! lockstep: a *static* one that keeps the boot model, and an *adaptive*
//! one whose per-window serving stats run through the sentinel's
//! [`DriftDetector`]; on a `refit` verdict the adaptive pipeline refits
//! on the current window through [`pnr_core::refit_window`] (validation
//! gate included) and adopts the candidate. Reports per-window recall for
//! both pipelines, the detection lag in windows, and the post-shift
//! recall recovery, as one JSON document.

use pnr_core::{
    refit_window, FitCheckpointStore, ModelArtifact, PnruleLearner, PnruleParams, RefitOptions,
    ServingModel,
};
use pnr_data::Dataset;
use pnr_sentinel::{DetectorConfig, DriftDetector, DriftVerdict, WindowDelta};
use pnr_telemetry::{RecordingSink, TelemetrySink};
use std::sync::Arc;

struct Options {
    seed: u64,
    shift: usize,
    windows: usize,
    window_rows: usize,
    target: String,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: drift_scenario [--seed N] [--shift ROW] [--windows N] \
         [--window-rows N] [--target CLASS] [--out FILE]"
    );
    std::process::exit(pnr_core::exit::USAGE);
}

fn parse_args() -> Options {
    let mut o = Options {
        seed: 7,
        shift: 4000,
        windows: 12,
        window_rows: 1000,
        target: "dos".to_string(),
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                o.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--shift" => {
                o.shift = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--windows" => {
                o.windows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--window-rows" => {
                o.window_rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--target" => o.target = args.next().unwrap_or_else(|| usage()),
            "--out" => o.out = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    o
}

/// One pipeline's view of one window: serving stats for the detector plus
/// ground-truth recall for the report.
struct WindowStats {
    rows: u64,
    positives: u64,
    quarantined: u64,
    targets: usize,
    hits: usize,
}

impl WindowStats {
    fn recall(&self) -> f64 {
        if self.targets == 0 {
            return 1.0;
        }
        self.hits as f64 / self.targets as f64
    }
}

fn score_window(model: &ServingModel, data: &Dataset, target: u32) -> WindowStats {
    let mut s = WindowStats {
        rows: 0,
        positives: 0,
        quarantined: 0,
        targets: 0,
        hits: 0,
    };
    let map = match model.reconcile_dataset(data) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: window does not reconcile: {e}");
            std::process::exit(pnr_core::exit::DATA_FAILURE);
        }
    };
    for row in 0..data.n_rows() {
        let is_target = data.label(row) == target;
        if is_target {
            s.targets += 1;
        }
        match model.score_dataset_row(data, &map, row) {
            Ok(rec) => {
                s.rows += 1;
                if rec.decision {
                    s.positives += 1;
                    if is_target {
                        s.hits += 1;
                    }
                }
            }
            Err(_) => s.quarantined += 1,
        }
    }
    s
}

fn main() {
    let o = parse_args();
    let sink: Arc<dyn TelemetrySink> = Arc::new(RecordingSink::new());

    // boot model, trained on the pre-shift mix
    let train = pnr_kddsim::generate_train(2000, o.seed);
    let target = match train.class_code(&o.target) {
        Some(t) => t,
        None => {
            eprintln!("error: class {:?} not in the simulated schema", o.target);
            std::process::exit(pnr_core::exit::USAGE);
        }
    };
    let params = PnruleParams::default();
    let (model, report) = PnruleLearner::new(params.clone()).fit_with_report(&train, target);
    let artifact = match ModelArtifact::new(model, params, report, train.schema().clone()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: cannot build boot artifact: {e}");
            std::process::exit(pnr_core::exit::DATA_FAILURE);
        }
    };
    let static_model = ServingModel::new(artifact.clone());
    let mut adaptive = ServingModel::new(artifact);

    let schedule = pnr_kddsim::DriftSchedule::Step {
        at: o.shift,
        before: pnr_kddsim::train_mix(),
        after: pnr_kddsim::test_mix(),
    };
    let shift_window = o.shift / o.window_rows.max(1);
    let mut stream = pnr_kddsim::DriftStream::new(o.seed ^ 0xd21f, schedule);
    let mut detector = DriftDetector::new(DetectorConfig::default());
    let ckpt_dir = std::env::temp_dir().join(format!("pnr_drift_scenario_{}", std::process::id()));
    let store = FitCheckpointStore::new(ckpt_dir.clone(), false);
    let refit_opts = RefitOptions::default();

    let mut window_lines = Vec::new();
    let mut refit_lines = Vec::new();
    let mut detection_lag: Option<usize> = None;
    let mut static_recalls = Vec::new();
    let mut adaptive_recalls = Vec::new();
    for w in 0..o.windows {
        let chunk = stream.next_chunk(o.window_rows);
        let st = score_window(&static_model, &chunk, target);
        let ad = score_window(&adaptive, &chunk, target);
        let delta = WindowDelta {
            rows: ad.rows,
            positives: ad.positives,
            quarantined: ad.quarantined,
            score_mean: None,
        };
        let verdict = detector.observe(&delta, &sink);
        if verdict == DriftVerdict::Refit {
            if detection_lag.is_none() && w >= shift_window {
                detection_lag = Some(w - shift_window);
            }
            match refit_window(&chunk, &o.target, &adaptive, &refit_opts, &store, &sink) {
                Ok((candidate, eval)) => {
                    refit_lines.push(format!(
                        "{{\"window\":{w},\"adopted\":true,\
                         \"candidate_recall\":{:.4},\"baseline_recall\":{:.4}}}",
                        eval.candidate_recall, eval.baseline_recall
                    ));
                    adaptive = ServingModel::new(candidate);
                }
                Err(e) => refit_lines.push(format!(
                    "{{\"window\":{w},\"adopted\":false,\"reason\":\"{e}\"}}"
                )),
            }
        }
        static_recalls.push(st.recall());
        adaptive_recalls.push(ad.recall());
        window_lines.push(format!(
            "{{\"window\":{w},\"phase\":\"{}\",\"verdict\":\"{}\",\
             \"static_recall\":{:.4},\"adaptive_recall\":{:.4},\
             \"adaptive_positive_rate\":{:.4}}}",
            if w < shift_window { "pre" } else { "post" },
            verdict.name(),
            st.recall(),
            ad.recall(),
            delta.positive_rate(),
        ));
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // recovery: mean recall over the post-detection tail of the run
    let tail = o.windows.saturating_sub(3).max(shift_window.min(o.windows));
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let static_tail = mean(&static_recalls[tail..]);
    let adaptive_tail = mean(&adaptive_recalls[tail..]);
    let report = format!(
        "{{\"record\":\"drift_scenario\",\"seed\":{},\"target\":\"{}\",\
         \"shift_row\":{},\"shift_window\":{shift_window},\"window_rows\":{},\
         \"detection_lag_windows\":{},\
         \"static_tail_recall\":{static_tail:.4},\
         \"adaptive_tail_recall\":{adaptive_tail:.4},\
         \"refits\":[{}],\"windows\":[{}]}}",
        o.seed,
        o.target,
        o.shift,
        o.window_rows,
        detection_lag.map_or("null".to_string(), |l| l.to_string()),
        refit_lines.join(","),
        window_lines.join(","),
    );
    println!("{report}");
    if let Some(path) = &o.out {
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(pnr_core::exit::DATA_FAILURE);
        }
    }
}
