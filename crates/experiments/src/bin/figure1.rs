//! Regenerates Figure 1 (nsyn3 tr×nr grid) of the paper. Usage: `--scale <f> --seed <n> --out <dir> --threads <n> --no-resume`.
use pnr_experiments::{experiments, print_experiment, run_status, write_json, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    let results = experiments::figure1(&opts);
    for exp in &results {
        print_experiment(exp);
    }
    let path = write_json(&opts.out_dir, "figure1", &results).expect("write results");
    eprintln!("results written to {}", path.display());
    std::process::exit(run_status(&results));
}
