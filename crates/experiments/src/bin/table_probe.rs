//! Regenerates the section-4 probe rp×rn grid of the paper. Usage: `--scale <f> --seed <n> --out <dir> --threads <n> --no-resume`.
use pnr_experiments::{experiments, print_experiment, run_status, write_json, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    let results =
        experiments::rp_rn_grid(&opts, "probe", &[0.95, 0.995], &[0.8, 0.95, 0.995], false);
    for exp in &results {
        print_experiment(exp);
    }
    let path = write_json(&opts.out_dir, "table_probe", &results).expect("write results");
    eprintln!("results written to {}", path.display());
    std::process::exit(run_status(&results));
}
