//! Ablation studies for PNrule's design choices (beyond the paper):
//!
//! * `range` — explicit range conditions ON vs OFF in the condition search;
//! * `nphase` — the N-phase ON vs OFF (OFF degenerates PNrule to a
//!   relaxed-accuracy sequential coverer);
//! * `scoring` — the ScoreMatrix vs the crisp "P and not N" decision
//!   (emulated by a very large significance threshold, which makes every
//!   cell fall back to its P-rule row estimate, vs threshold 0 which takes
//!   every raw cell estimate).
//!
//! Each ablation runs on nsyn3 and the KDD simulation's `probe` class.

use pnr_core::{PnruleLearner, PnruleParams};
use pnr_data::Dataset;
use pnr_experiments::{print_experiment, run_status, write_json, CliOptions, ExperimentResult};
use pnr_rules::evaluate_classifier;
use pnr_synth::numeric::NumericModelConfig;
use pnr_synth::SynthScale;

fn run(
    params: PnruleParams,
    train: &Dataset,
    test: &Dataset,
    target: u32,
) -> pnr_metrics::PrfReport {
    let model = PnruleLearner::new(params).fit(train, target);
    evaluate_classifier(&model, test, target).report()
}

fn main() {
    let opts = CliOptions::from_env();
    let mut results = Vec::new();

    let tasks: Vec<(&str, Dataset, Dataset, u32)> = {
        let cfg = NumericModelConfig::nsyn(3);
        let train = pnr_synth::numeric::generate(
            &cfg,
            &SynthScale::paper_train().scaled_by(opts.scale),
            opts.seed,
        );
        let test = pnr_synth::numeric::generate(
            &cfg,
            &SynthScale::paper_test().scaled_by(opts.scale),
            opts.seed + 1,
        );
        let target = train.class_code(pnr_synth::TARGET_CLASS).unwrap();

        let kdd_train = pnr_kddsim::generate_train((494_021.0 * opts.scale) as usize, opts.seed);
        let kdd_test = pnr_kddsim::generate_test((311_029.0 * opts.scale) as usize, opts.seed + 1);
        let probe = kdd_train.class_code("probe").unwrap();
        vec![
            ("nsyn3", train, test, target),
            ("kdd-probe", kdd_train, kdd_test, probe),
        ]
    };

    for (name, train, test, target) in &tasks {
        let base = PnruleParams::default();

        let mut exp = ExperimentResult::new(
            format!("ablation_range/{name}"),
            "explicit range conditions in the search".to_string(),
        );
        exp.push("ranges on", run(base.clone(), train, test, *target));
        exp.push(
            "ranges off",
            run(
                PnruleParams {
                    use_ranges: false,
                    ..base.clone()
                },
                train,
                test,
                *target,
            ),
        );
        print_experiment(&exp);
        results.push(exp);

        let mut exp = ExperimentResult::new(
            format!("ablation_nphase/{name}"),
            "second phase on/off (off = relaxed-accuracy sequential covering)".to_string(),
        );
        exp.push("N-phase on", run(base.clone(), train, test, *target));
        exp.push(
            "N-phase off",
            run(
                PnruleParams {
                    enable_n_phase: false,
                    ..base.clone()
                },
                train,
                test,
                *target,
            ),
        );
        print_experiment(&exp);
        results.push(exp);

        let mut exp = ExperimentResult::new(
            format!("ablation_scoring/{name}"),
            "ScoreMatrix significance threshold (0 = raw cells, huge = crisp P-and-not-N per row)"
                .to_string(),
        );
        for (label, z) in [
            ("z=0 (raw cells)", 0.0),
            ("z=1 (default)", 1.0),
            ("z=3", 3.0),
        ] {
            exp.push(
                label,
                run(
                    PnruleParams {
                        scoring_z_threshold: z,
                        ..base.clone()
                    },
                    train,
                    test,
                    *target,
                ),
            );
        }
        print_experiment(&exp);
        results.push(exp);
    }

    let path = write_json(&opts.out_dir, "ablations", &results).expect("write results");
    eprintln!("results written to {}", path.display());
    std::process::exit(run_status(&results));
}
