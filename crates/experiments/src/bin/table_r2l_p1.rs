//! Regenerates the section-4 r2l.P1 rp×rn grid of the paper. Usage: `--scale <f> --seed <n> --out <dir> --threads <n> --no-resume`.
use pnr_experiments::{experiments, print_experiment, run_status, write_json, CliOptions};

fn main() {
    let opts = CliOptions::from_env();
    let results =
        experiments::rp_rn_grid(&opts, "r2l", &[0.95, 0.995], &[0.8, 0.9, 0.95, 0.995], true);
    for exp in &results {
        print_experiment(exp);
    }
    let path = write_json(&opts.out_dir, "table_r2l_p1", &results).expect("write results");
    eprintln!("results written to {}", path.display());
    std::process::exit(run_status(&results));
}
