//! Emits simulated KDD'99 connection records as CSV — the companion
//! generator for the `predict` serving walkthrough and the CI drift
//! suite.
//!
//! ```text
//! kdd_csv [--rows <n>] [--seed <n>] [--test] [--out <file.csv>]
//!         [--columns <name,name,...>]
//!         [--malformed-rate <p>] [--drift-rate <p>]
//! ```
//!
//! `--columns` selects and *orders* the emitted columns by attribute
//! name (plus the literal `class`), which is how the drift tests build
//! reordered/dropped-column inputs; an unknown name is a usage error
//! (exit 2) listing the valid names. Default: every attribute in schema
//! order, then `class`.
//!
//! `--malformed-rate` / `--drift-rate` route rows through the shared
//! [`pnr_kddsim::FaultInjector`]: malformed rows are truncated or get an
//! unparsable numeric (structural quarantine downstream), drifted rows
//! get an unseen category or a non-finite numeric (unknown-value
//! policies downstream). The class column is never an injection target.
//! When either rate is non-zero an exact injection census is printed to
//! stderr so fault suites can assert serving counters against it.

use std::io::Write;

const USAGE: &str = "usage: kdd_csv [--rows <n>] [--seed <n>] [--test] \
[--out <file.csv>] [--columns <name,name,...>] \
[--malformed-rate <p>] [--drift-rate <p>]";

fn bail(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("{USAGE}");
    std::process::exit(pnr_core::exit::USAGE);
}

/// A column to emit: a schema attribute or the class label.
enum Col {
    Attr(usize),
    Class,
}

fn main() {
    let mut rows = 1_000usize;
    let mut seed = 7u64;
    let mut test_mix = false;
    let mut out = None;
    let mut columns: Option<String> = None;
    let mut malformed_rate = 0.0f64;
    let mut drift_rate = 0.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| bail(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--rows" => {
                let raw = value("--rows");
                rows = raw
                    .parse()
                    .unwrap_or_else(|_| bail(&format!("--rows takes an integer, got {raw:?}")));
            }
            "--seed" => {
                let raw = value("--seed");
                seed = raw
                    .parse()
                    .unwrap_or_else(|_| bail(&format!("--seed takes an integer, got {raw:?}")));
            }
            "--test" => test_mix = true,
            "--out" => out = Some(value("--out")),
            "--columns" => columns = Some(value("--columns")),
            "--malformed-rate" => {
                let raw = value("--malformed-rate");
                malformed_rate = raw.parse().unwrap_or_else(|_| {
                    bail(&format!("--malformed-rate takes a number, got {raw:?}"))
                });
            }
            "--drift-rate" => {
                let raw = value("--drift-rate");
                drift_rate = raw
                    .parse()
                    .unwrap_or_else(|_| bail(&format!("--drift-rate takes a number, got {raw:?}")));
            }
            other => bail(&format!("unknown argument {other}")),
        }
    }

    let cols: Vec<Col> = match &columns {
        None => (0..pnr_kddsim::N_ATTRS)
            .map(Col::Attr)
            .chain(std::iter::once(Col::Class))
            .collect(),
        Some(spec) => spec
            .split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .map(|name| {
                if name == "class" {
                    Col::Class
                } else {
                    match pnr_kddsim::try_attr_index(name) {
                        Some(i) => Col::Attr(i),
                        None => bail(&format!(
                            "unknown column {name:?}; valid columns: {}, class",
                            pnr_kddsim::ATTR_NAMES.join(", ")
                        )),
                    }
                }
            })
            .collect(),
    };
    if cols.is_empty() {
        bail("--columns selected no columns");
    }

    let mut injector = match pnr_kddsim::FaultInjector::new(seed, malformed_rate, drift_rate) {
        Ok(inj) => inj,
        Err(problem) => bail(&problem),
    };
    let inject = malformed_rate > 0.0 || drift_rate > 0.0;
    // Field indices eligible for value faults, in emitted-column order;
    // the class column is never a target.
    let mut numeric_cols = Vec::new();
    let mut categorical_cols = Vec::new();

    let data = if test_mix {
        pnr_kddsim::generate_test(rows, seed)
    } else {
        pnr_kddsim::generate_train(rows, seed)
    };
    for (k, c) in cols.iter().enumerate() {
        if let Col::Attr(i) = c {
            if data.schema().attr(*i).is_numeric() {
                numeric_cols.push(k);
            } else {
                categorical_cols.push(k);
            }
        }
    }

    let mut text = String::new();
    let header: Vec<&str> = cols
        .iter()
        .map(|c| match c {
            Col::Attr(i) => data.schema().attr(*i).name.as_str(),
            Col::Class => "class",
        })
        .collect();
    text.push_str(&header.join(","));
    text.push('\n');
    for row in 0..data.n_rows() {
        let mut fields: Vec<String> = cols
            .iter()
            .map(|c| match c {
                Col::Attr(i) => {
                    let a = data.schema().attr(*i);
                    if a.is_numeric() {
                        data.num(*i, row).to_string()
                    } else {
                        a.dict.name(data.cat(*i, row)).to_string()
                    }
                }
                Col::Class => data.class_name(data.label(row)).to_string(),
            })
            .collect();
        if inject {
            injector.inject(&mut fields, &numeric_cols, &categorical_cols);
        }
        text.push_str(&fields.join(","));
        text.push('\n');
    }
    if inject {
        eprintln!("{}", injector.census().summary());
    }

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(pnr_core::exit::DATA_FAILURE);
            }
        }
        None => {
            let stdout = std::io::stdout();
            if let Err(e) = stdout.lock().write_all(text.as_bytes()) {
                eprintln!("error: cannot write output: {e}");
                std::process::exit(pnr_core::exit::DATA_FAILURE);
            }
        }
    }
}
