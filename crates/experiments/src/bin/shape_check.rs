//! Verifies the reproduction's *shape* against the paper: for every
//! experiment with published numbers, does the same method win, and do the
//! paper's headline orderings hold?
//!
//! Usage: `shape_check [--out results]`. Exits non-zero when a majority of
//! shape checks fail.

use pnr_experiments::paper::paper_f;
use pnr_experiments::ExperimentResult;

struct Check {
    label: String,
    pass: bool,
}

fn winner(rows: &[(String, f64)]) -> Option<&str> {
    rows.iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite F"))
        .map(|(l, _)| l.as_str())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir = "results".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(v) => dir = v,
                None => {
                    eprintln!("error: --out requires a value");
                    std::process::exit(pnr_core::exit::USAGE);
                }
            },
            other => {
                eprintln!("error: unknown argument {other}; expected --out <dir>");
                std::process::exit(pnr_core::exit::USAGE);
            }
        }
    }

    let mut checks: Vec<Check> = Vec::new();
    for file in [
        "table1", "figure1", "table2", "table3", "table4", "table5", "table6",
    ] {
        let path = format!("{dir}/{file}.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("skipping {path}");
            continue;
        };
        let experiments: Vec<ExperimentResult> =
            serde_json::from_str(&text).expect("valid results json");
        for exp in &experiments {
            // measured rows and the paper's reference rows
            let ours: Vec<(String, f64)> =
                exp.rows.iter().map(|r| (r.label.clone(), r.f)).collect();
            let paper: Vec<(String, f64)> = exp
                .rows
                .iter()
                .filter_map(|r| paper_f(&exp.id, &r.label).map(|f| (r.label.clone(), f)))
                .collect();
            if paper.len() < 2 {
                continue;
            }
            let (Some(ours_w), Some(paper_w)) = (winner(&ours), winner(&paper)) else {
                continue;
            };
            checks.push(Check {
                label: format!("{}: winner {} (paper: {})", exp.id, ours_w, paper_w),
                pass: ours_w == paper_w,
            });
            // headline ordering: wherever the paper puts PNrule on top by a
            // margin > 0.05, we must too
            let pnr_paper = paper.iter().find(|(l, _)| l == "PNrule").map(|(_, f)| *f);
            let best_other_paper = paper
                .iter()
                .filter(|(l, _)| l != "PNrule")
                .map(|(_, f)| *f)
                .fold(f64::NEG_INFINITY, f64::max);
            if let Some(pp) = pnr_paper {
                if pp > best_other_paper + 0.05 {
                    let pn_ours = ours
                        .iter()
                        .find(|(l, _)| l == "PNrule")
                        .map(|(_, f)| *f)
                        .unwrap_or(0.0);
                    let best_other_ours = ours
                        .iter()
                        .filter(|(l, _)| l != "PNrule")
                        .map(|(_, f)| *f)
                        .fold(f64::NEG_INFINITY, f64::max);
                    checks.push(Check {
                        label: format!(
                            "{}: PNrule dominance (ours {:.3} vs {:.3})",
                            exp.id, pn_ours, best_other_ours
                        ),
                        pass: pn_ours >= best_other_ours,
                    });
                }
            }
        }
    }

    let passed = checks.iter().filter(|c| c.pass).count();
    for c in &checks {
        println!("{} {}", if c.pass { "PASS" } else { "FAIL" }, c.label);
    }
    println!("\n{passed}/{} shape checks passed", checks.len());
    if passed * 2 < checks.len() {
        std::process::exit(pnr_core::exit::DATA_FAILURE);
    }
}
