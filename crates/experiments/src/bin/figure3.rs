//! Regenerates Figure 3 — the `syngen` model description — by printing the
//! generator specification and per-subclass signature geometry.
use pnr_experiments::CliOptions;
use pnr_synth::general::GeneralModelConfig;
use pnr_synth::SynthScale;

fn main() {
    let opts = CliOptions::from_env();
    let cfg = GeneralModelConfig::default();
    println!("Figure 3: the syngen model (8 attributes: n0..n3 numeric, c0..c3 categorical)");
    println!("------------------------------------------------------------------------------");
    let (c1a, c1b) = cfg.c1_peaks();
    println!("C1 (conjunctive): (n0, n1) peak pairs:");
    for (p, q) in c1a.iter().zip(&c1b) {
        println!(
            "  n0 in [{:.2}, {:.2}) AND n1 in [{:.2}, {:.2})",
            p.lo,
            p.hi(),
            q.lo,
            q.hi()
        );
    }
    let (nc1a, nc1b) = cfg.nc1_peaks();
    println!("NC1 (conjunctive, same attributes):");
    for (p, q) in nc1a.iter().zip(&nc1b) {
        println!(
            "  n0 in [{:.2}, {:.2}) AND n1 in [{:.2}, {:.2})",
            p.lo,
            p.hi(),
            q.lo,
            q.hi()
        );
    }
    let (c2a, c2b) = cfg.c2_peaks();
    println!(
        "C2 (disjunctive): n2 peaks {:?} OR n3 peaks {:?}",
        c2a.iter().map(|p| (p.lo, p.hi())).collect::<Vec<_>>(),
        c2b.iter().map(|p| (p.lo, p.hi())).collect::<Vec<_>>()
    );
    let (nc2a, nc2b) = cfg.nc2_peaks();
    println!(
        "NC2 (disjunctive): n2 peaks {:?} OR n3 peaks {:?}",
        nc2a.iter().map(|p| (p.lo, p.hi())).collect::<Vec<_>>(),
        nc2b.iter().map(|p| (p.lo, p.hi())).collect::<Vec<_>>()
    );
    println!("C3 (categorical): na=1, nspa=2, nwps=2 word pairs on (c0, c1)");
    println!("NC3 (categorical): na=1, nspa=4, nwps=2 word pairs on (c2, c3)");

    let scale = SynthScale {
        n_records: (6_000.0 * opts.scale.max(0.2)) as usize,
        target_frac: 0.01,
    };
    let d = pnr_synth::general::generate(&cfg, &scale, opts.seed);
    let c = d.class_code(pnr_synth::TARGET_CLASS).expect("target class");
    println!();
    println!(
        "sample: {} records, {} targets, {} attributes",
        d.n_rows(),
        d.class_counts()[c as usize],
        d.n_attrs()
    );
}
