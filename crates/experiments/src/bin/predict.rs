//! Scores a CSV of new records against a saved model artifact.
//!
//! ```text
//! predict --model <file.artifact> --input <file.csv>
//!         [--unknown condition-false|abstain|reject]
//!         [--missing reject|default]
//!         [--engine auto|compiled|interpreter]
//!         [--out <file.ndjson>] [--describe] [--verify-only]
//! ```
//!
//! The input CSV is reconciled against the artifact's stored schema **by
//! column name**: column order is free, extra columns (including a
//! trailing `class` column) are ignored, and missing columns follow
//! `--missing`. Per-record output is NDJSON — one
//! `{"row":…,"score":…,"decision":…}` object per scored record, one
//! `{"row":…,"error":…}` object per quarantined/rejected record — to
//! `--out` or stdout; the serving report (telemetry counters plus
//! decision totals) always goes to stderr so it never mixes with the
//! stream.
//!
//! Exit codes follow the serving-binary convention (`pnr_core::exit`):
//! 0 success, 1 the artifact or input could not be used (corruption
//! surfaces here as a `ChecksumMismatch: …` line on stderr), 2 bad
//! invocation. Artifact loads retry transient I/O failures with bounded
//! exponential backoff before giving up.

use pnr_core::{MissingColumnPolicy, RecordError, ScoringEngine, ServingModel, UnknownPolicy};
use pnr_telemetry::{Counter, RecordingSink, TelemetrySink};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const USAGE: &str = "usage: predict --model <file.artifact> --input <file.csv> \
[--unknown condition-false|abstain|reject] [--missing reject|default] \
[--engine auto|compiled|interpreter] [--out <file.ndjson>] [--describe] [--verify-only]";

fn bail(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("{USAGE}");
    std::process::exit(pnr_core::exit::USAGE);
}

/// Failure after a well-formed invocation (unusable artifact or input):
/// print the typed error and exit 1, never panic.
fn fail(problem: impl std::fmt::Display) -> ! {
    eprintln!("error: {problem}");
    std::process::exit(pnr_core::exit::DATA_FAILURE);
}

struct Options {
    model: String,
    input: Option<String>,
    unknown: UnknownPolicy,
    missing: MissingColumnPolicy,
    engine: ScoringEngine,
    out: Option<String>,
    describe: bool,
    verify_only: bool,
}

fn parse_args() -> Options {
    let mut model = None;
    let mut input = None;
    let mut unknown = UnknownPolicy::default();
    let mut missing = MissingColumnPolicy::default();
    let mut engine = ScoringEngine::default();
    let mut out = None;
    let mut describe = false;
    let mut verify_only = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| bail(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--model" => model = Some(value("--model")),
            "--input" => input = Some(value("--input")),
            "--unknown" => {
                let raw = value("--unknown");
                unknown = UnknownPolicy::parse(&raw).unwrap_or_else(|| {
                    bail(&format!(
                        "--unknown takes condition-false, abstain or reject; got {raw:?}"
                    ))
                });
            }
            "--missing" => {
                let raw = value("--missing");
                missing = MissingColumnPolicy::parse(&raw).unwrap_or_else(|| {
                    bail(&format!("--missing takes reject or default; got {raw:?}"))
                });
            }
            "--engine" => {
                let raw = value("--engine");
                engine = ScoringEngine::parse(&raw).unwrap_or_else(|| {
                    bail(&format!(
                        "--engine takes auto, compiled or interpreter; got {raw:?}"
                    ))
                });
            }
            "--out" => out = Some(value("--out")),
            "--describe" => describe = true,
            "--verify-only" => verify_only = true,
            other => bail(&format!("unknown argument {other}")),
        }
    }
    let model = model.unwrap_or_else(|| bail("--model is required"));
    if input.is_none() && !verify_only && !describe {
        bail("--input is required unless --verify-only or --describe is given");
    }
    Options {
        model,
        input,
        unknown,
        missing,
        engine,
        out,
        describe,
        verify_only,
    }
}

fn main() {
    let opts = parse_args();
    let artifact = match pnr_core::load_with_retry(
        Path::new(&opts.model),
        &pnr_core::RetryPolicy::default(),
    ) {
        Ok(a) => a,
        Err(e) => fail(e),
    };
    eprintln!(
        "loaded artifact: format v{}, target class `{}`, {} P-rules, {} N-rules, \
         schema fingerprint {:016x}",
        pnr_core::FORMAT_VERSION,
        artifact.target_class(),
        artifact.model.p_rules.len(),
        artifact.model.n_rules.len(),
        artifact.schema_fingerprint()
    );
    if opts.describe {
        print!("{}", artifact.model.describe(&artifact.schema));
    }
    if opts.verify_only || opts.input.is_none() {
        return;
    }

    let input_path = opts.input.as_deref().unwrap_or_else(|| bail("--input"));
    let text = match std::fs::read_to_string(input_path) {
        Ok(t) => t,
        Err(e) => fail(format!("cannot read {input_path}: {e}")),
    };
    let recorder = Arc::new(RecordingSink::new());
    let serving = ServingModel::new(artifact)
        .with_unknown_policy(opts.unknown)
        .with_missing_policy(opts.missing)
        .with_engine(opts.engine)
        .with_sink(recorder.clone() as Arc<dyn TelemetrySink>);

    let mut lines = text.lines();
    let header: Vec<&str> = match lines.next() {
        Some(h) if !h.trim().is_empty() => h.split(',').map(str::trim).collect(),
        _ => fail(format!("{input_path} has no header row")),
    };
    let map = match serving.reconcile_header(&header) {
        Ok(m) => m,
        Err(e) => fail(e),
    };
    eprintln!(
        "reconciled header: {} columns ({} missing, {} extra), \
         unknown-policy {}, missing-policy {}, engine {}",
        header.len(),
        map.n_missing(),
        map.n_extra(),
        opts.unknown.name(),
        opts.missing.name(),
        serving.active_engine()
    );

    let mut sink: Box<dyn Write> = match &opts.out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => fail(format!("cannot create {path}: {e}")),
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    let (mut n_records, mut n_positive, mut n_abstained, mut n_errors) = (0u64, 0u64, 0u64, 0u64);
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        n_records += 1;
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let written = match serving.score_fields(&fields, &map) {
            Ok(rec) => {
                if rec.decision {
                    n_positive += 1;
                }
                if rec.abstained {
                    n_abstained += 1;
                }
                writeln!(
                    sink,
                    "{{\"row\":{i},\"score\":{},\"decision\":{},\"abstained\":{},\
                     \"unknown_values\":{},\"p_rule\":{},\"n_rule\":{}}}",
                    rec.score,
                    rec.decision,
                    rec.abstained,
                    rec.unknown_values,
                    rec.trace
                        .p_rule
                        .map_or("null".to_string(), |p| p.to_string()),
                    rec.trace
                        .n_rule
                        .map_or("null".to_string(), |n| n.to_string()),
                )
            }
            Err(e) => {
                n_errors += 1;
                let kind = match &e {
                    RecordError::Structural { .. } => "structural",
                    RecordError::UnknownRejected { .. } => "unknown-rejected",
                };
                writeln!(
                    sink,
                    "{{\"row\":{i},\"error\":{:?},\"kind\":\"{kind}\"}}",
                    e.to_string()
                )
            }
        };
        if let Err(e) = written {
            fail(format!("cannot write output: {e}"));
        }
    }
    if let Err(e) = sink.flush() {
        fail(format!("cannot write output: {e}"));
    }
    eprintln!(
        "serving report: {n_records} record(s): rows_scored={} rows_quarantined={} \
         unseen_category_hits={} nan_numeric_hits={} compiled_dispatch_hits={} \
         | {n_positive} positive, {n_abstained} abstained, {n_errors} not scored",
        recorder.value(Counter::RowsScored),
        recorder.value(Counter::RowsQuarantined),
        recorder.value(Counter::UnseenCategoryHits),
        recorder.value(Counter::NanNumericHits),
        recorder.value(Counter::CompiledDispatchHits),
    );
}
