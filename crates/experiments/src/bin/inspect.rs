//! Trains PNrule on one of the paper's datasets and prints the learned
//! model with per-rule coverage — the debugging/teaching view.
//!
//! Usage: `inspect <dataset>[:tr=<f>][:nr=<f>] [--trace] [--scale f]
//! [--seed n]` where `<dataset>` is `nsyn1..6`, `coa1..6`, `coad1..4`,
//! `syngen`, or `kdd:<class>`; optional `:tr=`/`:nr=` suffixes override
//! peak widths on the numeric and general models. `--trace` (PNrule only)
//! fits against a recording telemetry sink and appends a per-phase
//! timing/counter table plus a single-pass error analysis.

use pnr_core::{FitBudget, FitReport, PnruleLearner, PnruleParams};
use pnr_data::Dataset;
use pnr_experiments::CliOptions;
use pnr_rules::{evaluate_classifier, TaskView};
use pnr_synth::SynthScale;
use pnr_telemetry::{Counter, RecordingSink, SpanKind, TelemetrySink};
use std::sync::Arc;

/// The dataset spellings `load` accepts, listed whenever a name fails to
/// resolve so the user never faces a bare error.
const VALID_DATASETS: &str = "nsyn1..nsyn6, coa1..coa6, coad1..coad4, syngen, \
kdd:<normal|dos|probe|r2l|u2r> (numeric/general names take optional \
:tr=<f>/:nr=<f> suffixes)";

fn load(name: &str, scale: f64, seed: u64) -> (Dataset, Dataset, u32) {
    let train_scale = SynthScale::paper_train().scaled_by(scale);
    let test_scale = SynthScale::paper_test().scaled_by(scale);
    if let Some(class) = name.strip_prefix("kdd:") {
        let train = pnr_kddsim::generate_train((494_021.0 * scale) as usize, seed);
        let test = pnr_kddsim::generate_test((311_029.0 * scale) as usize, seed + 1);
        let target = train.class_code(class).unwrap_or_else(|| {
            bail(&format!(
                "unknown kdd class {class:?}; valid datasets: {VALID_DATASETS}"
            ))
        });
        return (train, test, target);
    }
    // optional :tr=<f>/:nr=<f> suffixes
    let mut parts = name.split(':');
    let base = parts.next().unwrap_or(name);
    let (mut tr_over, mut nr_over) = (None, None);
    for p in parts {
        if let Some(v) = p.strip_prefix("tr=") {
            tr_over = Some(
                v.parse::<f64>()
                    .unwrap_or_else(|_| bail(&format!("suffix tr= takes a float, got {v:?}"))),
            );
        } else if let Some(v) = p.strip_prefix("nr=") {
            nr_over = Some(
                v.parse::<f64>()
                    .unwrap_or_else(|_| bail(&format!("suffix nr= takes a float, got {v:?}"))),
            );
        } else {
            bail(&format!(
                "unknown dataset suffix {p:?}; valid datasets: {VALID_DATASETS}"
            ));
        }
    }
    let name = base;
    let (train, test) = if name == "syngen" {
        let mut cfg = pnr_synth::general::GeneralModelConfig::default();
        cfg.tr = tr_over.unwrap_or(cfg.tr);
        cfg.nr = nr_over.unwrap_or(cfg.nr);
        (
            pnr_synth::general::generate(&cfg, &train_scale, seed),
            pnr_synth::general::generate(&cfg, &test_scale, seed + 1),
        )
    } else if let Some(i) = name.strip_prefix("nsyn") {
        let i = i
            .parse()
            .ok()
            .filter(|i| (1..=6).contains(i))
            .unwrap_or_else(|| {
                bail(&format!(
                    "unknown dataset {name:?}; valid datasets: {VALID_DATASETS}"
                ))
            });
        let mut cfg = pnr_synth::numeric::NumericModelConfig::nsyn(i);
        cfg.tr = tr_over.unwrap_or(cfg.tr);
        cfg.nr = nr_over.unwrap_or(cfg.nr);
        (
            pnr_synth::numeric::generate(&cfg, &train_scale, seed),
            pnr_synth::numeric::generate(&cfg, &test_scale, seed + 1),
        )
    } else if let Some(cfg) = pnr_experiments::categorical_config(name) {
        (
            pnr_synth::categorical::generate(&cfg, &train_scale, seed),
            pnr_synth::categorical::generate(&cfg, &test_scale, seed + 1),
        )
    } else {
        bail(&format!(
            "unknown dataset {name:?}; valid datasets: {VALID_DATASETS}"
        ));
    };
    let target = train.class_code(pnr_synth::TARGET_CLASS).expect("target");
    (train, test, target)
}

fn bail(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: inspect <dataset> [--method m] [--rp f] [--rn f] [--trace] [--scale f] [--seed n]"
    );
    std::process::exit(pnr_core::exit::USAGE);
}

/// Renders the recorded fit telemetry: per-phase span timings, every
/// counter, and the budget-tracker cross-check (the `candidate_charges`
/// counter must mirror the tracker's own tally to the unit).
fn render_trace(sink: &RecordingSink, report: &FitReport) {
    let spans = sink.completed_spans();
    println!("\nfit telemetry (--trace):");
    println!("  {:<14} {:>6} {:>12}", "span", "count", "total ms");
    for kind in [
        SpanKind::Fit,
        SpanKind::PPhase,
        SpanKind::PRuleGrow,
        SpanKind::NPhase,
        SpanKind::NRuleGrow,
        SpanKind::ScoreMatrix,
    ] {
        let (count, total_ns) = spans
            .iter()
            .filter(|s| s.kind == kind)
            .fold((0usize, 0u64), |(c, t), s| (c + 1, t + s.wall_ns));
        if count == 0 {
            continue;
        }
        println!(
            "  {:<14} {:>6} {:>12.3}",
            kind.name(),
            count,
            total_ns as f64 / 1e6
        );
    }
    println!("  counters:");
    for (counter, value) in sink.counter_values() {
        println!("    {:<22} {value}", counter.name());
    }
    match report.candidates_charged {
        Some(charged) => {
            let counted = sink.value(Counter::CandidateCharges);
            assert_eq!(
                charged, counted,
                "telemetry counter must mirror BudgetTracker charges exactly"
            );
            println!("  budget tracker charges: {charged} (telemetry counter matches exactly)");
        }
        None => println!("  budget tracker charges: n/a (fit ran without a budget)"),
    }
    if let Some(problem) = sink.nesting_error() {
        println!("  WARNING: span nesting violation: {problem}");
    }
}

fn flag_value<T: std::str::FromStr>(name: &str, raw: Option<String>) -> T {
    match raw {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| bail(&format!("{name} got a malformed value"))),
        None => bail(&format!("{name} requires a value")),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        bail("missing dataset name");
    }
    let name = args.remove(0);
    let mut rp = 0.95;
    let mut rn = 0.9;
    let mut method = "pnrule".to_string();
    let mut trace = false;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rp" => rp = flag_value("--rp", it.next()),
            "--rn" => rn = flag_value("--rn", it.next()),
            "--method" => method = flag_value("--method", it.next()),
            "--trace" => trace = true,
            other => rest.push(other.to_string()),
        }
    }
    let opts = CliOptions::parse(rest.into_iter()).unwrap_or_else(|problem| bail(&problem));

    let (train, test, target) = load(&name, opts.scale, opts.seed);
    println!(
        "{name}: train {} rows ({} targets), test {} rows",
        train.n_rows(),
        train.class_counts()[target as usize],
        test.n_rows()
    );

    if method == "ripper" {
        let model = pnr_ripper::RipperLearner::default().fit(&train, target);
        println!("\n{}", model.describe(train.schema()));
        let cm_train = evaluate_classifier(&model, &train, target);
        let cm_test = evaluate_classifier(&model, &test, target);
        println!(
            "train: R {:.4} P {:.4} F {:.4}\ntest:  R {:.4} P {:.4} F {:.4}",
            cm_train.recall(),
            cm_train.precision(),
            cm_train.f_measure(),
            cm_test.recall(),
            cm_test.precision(),
            cm_test.f_measure()
        );
        return;
    }
    if method == "c45rules" {
        let model = pnr_c45::C45Learner::default().fit_rules(&train);
        println!("\n{}", model.describe(train.schema()));
        let bv = model.binary_view(target);
        let cm_train = evaluate_classifier(&bv, &train, target);
        let cm_test = evaluate_classifier(&bv, &test, target);
        println!(
            "train: R {:.4} P {:.4} F {:.4}\ntest:  R {:.4} P {:.4} F {:.4}",
            cm_train.recall(),
            cm_train.precision(),
            cm_train.f_measure(),
            cm_test.recall(),
            cm_test.precision(),
            cm_test.f_measure()
        );
        return;
    }
    let mut params = PnruleParams::with_recall_limits(rp, rn);
    if trace {
        // A candidate budget far beyond what any fit needs: it never
        // constrains learning (the model is identical to an unbudgeted
        // fit) but attaches the BudgetTracker whose tally the telemetry
        // counter is cross-checked against below.
        params.budget = FitBudget {
            max_candidates: Some(1_000_000_000),
            ..FitBudget::default()
        };
    }
    println!("params: rp={rp} rn={rn}");
    let sink = Arc::new(RecordingSink::new());
    let mut learner = PnruleLearner::new(params);
    if trace {
        learner = learner.with_sink(sink.clone() as Arc<dyn TelemetrySink>);
    }
    let (model, report) = learner.fit_with_report(&train, target);
    println!("\n{}", model.describe(train.schema()));

    // per-rule coverage on the training set
    let is_pos: Vec<bool> = (0..train.n_rows())
        .map(|r| train.label(r) == target)
        .collect();
    let view = TaskView::full(&train, &is_pos, train.weights());
    println!("P-rule coverage on train (full-set, not sequential):");
    for (i, rule) in model.p_rules.rules().iter().enumerate() {
        let c = view.coverage(rule);
        println!(
            "  [{i}] pos={:.0} total={:.0} acc={:.3}",
            c.pos,
            c.total,
            c.accuracy()
        );
    }
    println!("N-rule coverage on train:");
    for (i, rule) in model.n_rules.rules().iter().enumerate() {
        let c = view.coverage(rule);
        println!("  [{i}] pos={:.0} total={:.0}", c.pos, c.total);
    }

    println!(
        "\nP-phase: recall {:.3}; pool {} rows with FP weight {:.0}",
        report.p_covered_recall, report.pool_size, report.pool_fp_weight
    );
    println!(
        "N-phase: {} rules, retained recall {:.3}, stop reason {:?}",
        report.n_rule_stats.len(),
        report.retained_recall,
        report.n_stop_reason
    );
    println!(
        "DL trace: {:?}",
        report
            .n_dl_trace
            .iter()
            .map(|d| d.round())
            .collect::<Vec<_>>()
    );
    for (i, (rule, st)) in model
        .n_rules
        .rules()
        .iter()
        .zip(&report.n_rule_stats)
        .enumerate()
    {
        println!(
            "  n[{i}] len={} fp_removed={:.0} targets_lost={:.0} | {}",
            rule.len(),
            st.pos,
            st.neg(),
            rule.display(train.schema())
        );
    }

    let cm_train = evaluate_classifier(&model, &train, target);
    let cm_test = evaluate_classifier(&model, &test, target);
    println!(
        "\ntrain: R {:.4} P {:.4} F {:.4}\ntest:  R {:.4} P {:.4} F {:.4}",
        cm_train.recall(),
        cm_train.precision(),
        cm_train.f_measure(),
        cm_test.recall(),
        cm_test.precision(),
        cm_test.f_measure()
    );

    if trace {
        render_trace(&sink, &report);
        // Error analysis on the test set: `score_with_trace` yields the
        // decision and the firing rules from one first-match sweep.
        let (mut false_pos, mut false_neg) = (0usize, 0usize);
        let mut examples: Vec<String> = Vec::new();
        for row in 0..test.n_rows() {
            let (score, rules) = model.score_with_trace(&test, row);
            let predicted = score > model.threshold;
            let actual = test.label(row) == target;
            if predicted == actual {
                continue;
            }
            if predicted {
                false_pos += 1;
            } else {
                false_neg += 1;
            }
            if examples.len() < 6 {
                examples.push(format!(
                    "    row {row}: {} score {score:.3} p={:?} n={:?}",
                    if predicted { "FP" } else { "FN" },
                    rules.p_rule,
                    rules.n_rule
                ));
            }
        }
        println!("\ntest errors: {false_pos} false positives, {false_neg} false negatives");
        for line in &examples {
            println!("{line}");
        }
    }
}
