//! Trains PNrule on one of the paper's datasets and prints the learned
//! model with per-rule coverage — the debugging/teaching view.
//!
//! Usage: `inspect <dataset>[:tr=<f>][:nr=<f>] [--scale f] [--seed n]`
//! where `<dataset>` is `nsyn1..6`, `coa1..6`, `coad1..4`, `syngen`, or
//! `kdd:<class>`; optional `:tr=`/`:nr=` suffixes override peak widths on
//! the numeric and general models.

use pnr_core::{PnruleLearner, PnruleParams};
use pnr_data::Dataset;
use pnr_experiments::CliOptions;
use pnr_rules::{evaluate_classifier, TaskView};
use pnr_synth::SynthScale;

fn load(name: &str, scale: f64, seed: u64) -> (Dataset, Dataset, u32) {
    let train_scale = SynthScale::paper_train().scaled_by(scale);
    let test_scale = SynthScale::paper_test().scaled_by(scale);
    if let Some(class) = name.strip_prefix("kdd:") {
        let train = pnr_kddsim::generate_train((494_021.0 * scale) as usize, seed);
        let test = pnr_kddsim::generate_test((311_029.0 * scale) as usize, seed + 1);
        let target = train.class_code(class).expect("kdd class");
        return (train, test, target);
    }
    // optional :tr=<f>/:nr=<f> suffixes
    let mut parts = name.split(':');
    let base = parts.next().expect("dataset name");
    let (mut tr_over, mut nr_over) = (None, None);
    for p in parts {
        if let Some(v) = p.strip_prefix("tr=") {
            tr_over = Some(v.parse::<f64>().expect("tr value"));
        } else if let Some(v) = p.strip_prefix("nr=") {
            nr_over = Some(v.parse::<f64>().expect("nr value"));
        } else {
            panic!("unknown dataset suffix {p}");
        }
    }
    let name = base;
    let (train, test) = if name == "syngen" {
        let mut cfg = pnr_synth::general::GeneralModelConfig::default();
        cfg.tr = tr_over.unwrap_or(cfg.tr);
        cfg.nr = nr_over.unwrap_or(cfg.nr);
        (
            pnr_synth::general::generate(&cfg, &train_scale, seed),
            pnr_synth::general::generate(&cfg, &test_scale, seed + 1),
        )
    } else if let Some(i) = name.strip_prefix("nsyn") {
        let mut cfg = pnr_synth::numeric::NumericModelConfig::nsyn(i.parse().expect("index"));
        cfg.tr = tr_over.unwrap_or(cfg.tr);
        cfg.nr = nr_over.unwrap_or(cfg.nr);
        (
            pnr_synth::numeric::generate(&cfg, &train_scale, seed),
            pnr_synth::numeric::generate(&cfg, &test_scale, seed + 1),
        )
    } else if let Some(i) = name.strip_prefix("coad") {
        let cfg = pnr_synth::categorical::CategoricalModelConfig::coad(i.parse().expect("index"));
        (
            pnr_synth::categorical::generate(&cfg, &train_scale, seed),
            pnr_synth::categorical::generate(&cfg, &test_scale, seed + 1),
        )
    } else if let Some(i) = name.strip_prefix("coa") {
        let cfg = pnr_synth::categorical::CategoricalModelConfig::coa(i.parse().expect("index"));
        (
            pnr_synth::categorical::generate(&cfg, &train_scale, seed),
            pnr_synth::categorical::generate(&cfg, &test_scale, seed + 1),
        )
    } else {
        panic!("unknown dataset {name}");
    };
    let target = train.class_code(pnr_synth::TARGET_CLASS).expect("target");
    (train, test, target)
}

fn bail(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("usage: inspect <dataset> [--method m] [--rp f] [--rn f] [--scale f] [--seed n]");
    std::process::exit(2);
}

fn flag_value<T: std::str::FromStr>(name: &str, raw: Option<String>) -> T {
    match raw {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| bail(&format!("{name} got a malformed value"))),
        None => bail(&format!("{name} requires a value")),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        bail("missing dataset name");
    }
    let name = args.remove(0);
    let mut rp = 0.95;
    let mut rn = 0.9;
    let mut method = "pnrule".to_string();
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rp" => rp = flag_value("--rp", it.next()),
            "--rn" => rn = flag_value("--rn", it.next()),
            "--method" => method = flag_value("--method", it.next()),
            other => rest.push(other.to_string()),
        }
    }
    let opts = CliOptions::parse(rest.into_iter()).unwrap_or_else(|problem| bail(&problem));

    let (train, test, target) = load(&name, opts.scale, opts.seed);
    println!(
        "{name}: train {} rows ({} targets), test {} rows",
        train.n_rows(),
        train.class_counts()[target as usize],
        test.n_rows()
    );

    if method == "ripper" {
        let model = pnr_ripper::RipperLearner::default().fit(&train, target);
        println!("\n{}", model.describe(train.schema()));
        let cm_train = evaluate_classifier(&model, &train, target);
        let cm_test = evaluate_classifier(&model, &test, target);
        println!(
            "train: R {:.4} P {:.4} F {:.4}\ntest:  R {:.4} P {:.4} F {:.4}",
            cm_train.recall(),
            cm_train.precision(),
            cm_train.f_measure(),
            cm_test.recall(),
            cm_test.precision(),
            cm_test.f_measure()
        );
        return;
    }
    if method == "c45rules" {
        let model = pnr_c45::C45Learner::default().fit_rules(&train);
        println!("\n{}", model.describe(train.schema()));
        let bv = model.binary_view(target);
        let cm_train = evaluate_classifier(&bv, &train, target);
        let cm_test = evaluate_classifier(&bv, &test, target);
        println!(
            "train: R {:.4} P {:.4} F {:.4}\ntest:  R {:.4} P {:.4} F {:.4}",
            cm_train.recall(),
            cm_train.precision(),
            cm_train.f_measure(),
            cm_test.recall(),
            cm_test.precision(),
            cm_test.f_measure()
        );
        return;
    }
    let params = PnruleParams::with_recall_limits(rp, rn);
    println!("params: rp={rp} rn={rn}");
    let (model, report) = PnruleLearner::new(params).fit_with_report(&train, target);
    println!("\n{}", model.describe(train.schema()));

    // per-rule coverage on the training set
    let is_pos: Vec<bool> = (0..train.n_rows())
        .map(|r| train.label(r) == target)
        .collect();
    let view = TaskView::full(&train, &is_pos, train.weights());
    println!("P-rule coverage on train (full-set, not sequential):");
    for (i, rule) in model.p_rules.rules().iter().enumerate() {
        let c = view.coverage(rule);
        println!(
            "  [{i}] pos={:.0} total={:.0} acc={:.3}",
            c.pos,
            c.total,
            c.accuracy()
        );
    }
    println!("N-rule coverage on train:");
    for (i, rule) in model.n_rules.rules().iter().enumerate() {
        let c = view.coverage(rule);
        println!("  [{i}] pos={:.0} total={:.0}", c.pos, c.total);
    }

    println!(
        "\nP-phase: recall {:.3}; pool {} rows with FP weight {:.0}",
        report.p_covered_recall, report.pool_size, report.pool_fp_weight
    );
    println!(
        "N-phase: {} rules, retained recall {:.3}, stop reason {:?}",
        report.n_rule_stats.len(),
        report.retained_recall,
        report.n_stop_reason
    );
    println!(
        "DL trace: {:?}",
        report
            .n_dl_trace
            .iter()
            .map(|d| d.round())
            .collect::<Vec<_>>()
    );
    for (i, (rule, st)) in model
        .n_rules
        .rules()
        .iter()
        .zip(&report.n_rule_stats)
        .enumerate()
    {
        println!(
            "  n[{i}] len={} fp_removed={:.0} targets_lost={:.0} | {}",
            rule.len(),
            st.pos,
            st.neg(),
            rule.display(train.schema())
        );
    }

    let cm_train = evaluate_classifier(&model, &train, target);
    let cm_test = evaluate_classifier(&model, &test, target);
    println!(
        "\ntrain: R {:.4} P {:.4} F {:.4}\ntest:  R {:.4} P {:.4} F {:.4}",
        cm_train.recall(),
        cm_train.precision(),
        cm_train.f_measure(),
        cm_test.recall(),
        cm_test.precision(),
        cm_test.f_measure()
    );
}
