//! Regenerates Figure 2 — the categorical-only dataset model description —
//! by printing the generator specification and verifying it on a sample.
use pnr_experiments::CliOptions;
use pnr_synth::categorical::CategoricalModelConfig;
use pnr_synth::SynthScale;

fn main() {
    let opts = CliOptions::from_env();
    println!("Figure 2: categorical-only dataset model");
    println!("----------------------------------------");
    println!("Each class has `na` subclasses; each subclass is distinguished by");
    println!("`nspa` disjoint signatures over a distinct pair of attributes; each");
    println!("signature is identified by `nwps = words_per_attr^2` word combinations.");
    println!();
    for (i, mk) in [("coa", 6usize), ("coad", 4)] {
        for idx in 1..=mk {
            let cfg = if i == "coa" {
                CategoricalModelConfig::coa(idx)
            } else {
                CategoricalModelConfig::coad(idx)
            };
            println!(
                "{i}{idx}: target na={} nspa={} nwps={} vocab={} | non-target na={} nspa={} nwps={} vocab={} | {} attributes",
                cfg.target.na,
                cfg.target.nspa,
                cfg.target.nwps(),
                cfg.target.vocab,
                cfg.non_target.na,
                cfg.non_target.nspa,
                cfg.non_target.nwps(),
                cfg.non_target.vocab,
                cfg.n_attrs(),
            );
        }
    }
    // verify with a sample, as the figure's example does
    let cfg = CategoricalModelConfig::coa(1);
    let scale = SynthScale {
        n_records: (5_000.0 * opts.scale.max(0.2)) as usize,
        target_frac: 0.01,
    };
    let d = pnr_synth::categorical::generate(&cfg, &scale, opts.seed);
    let c = d.class_code(pnr_synth::TARGET_CLASS).expect("target class");
    println!();
    println!(
        "sample (coa1, {} records): {} target records; first target record:",
        d.n_rows(),
        d.class_counts()[c as usize]
    );
    if let Some(row) = (0..d.n_rows()).find(|&r| d.label(r) == c) {
        for a in 0..d.n_attrs() {
            print!("{}={} ", d.schema().attr(a).name, d.cat_name(a, row));
        }
        println!();
    }
}
