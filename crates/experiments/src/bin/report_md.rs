//! Assembles `EXPERIMENTS.md` from the JSON result files in `results/`:
//! one markdown table per experiment with the paper's published F next to
//! the measured F. When `<out>/telemetry/` holds per-cell NDJSON traces
//! (runs made with `--telemetry`), a timing appendix summarising each
//! cell's fit wall-clock and search effort is appended.
//!
//! Usage: `report_md [--out results] > EXPERIMENTS.md`

use pnr_experiments::paper::paper_f;
use pnr_experiments::ExperimentResult;
use serde_json::Value;
use std::fmt::Write as _;

/// One summarised telemetry cell: (experiment, method, fit-span count,
/// total fit wall ms, conditions evaluated).
type TimingRow = (String, String, usize, f64, f64);

/// Summarises one cell's NDJSON trace, or `None` when the file has no
/// meta line (not a telemetry export).
fn summarise_cell(text: &str) -> Option<TimingRow> {
    let mut experiment = None;
    let mut method = String::new();
    let mut fit_spans = 0usize;
    let mut fit_ms = 0.0f64;
    let mut conditions = 0.0f64;
    for line in text.lines() {
        let Ok(v) = serde_json::parse(line) else {
            continue;
        };
        match v.get("record") {
            Some(Value::Str(r)) if r == "cell" => {
                if let Some(Value::Str(e)) = v.get("experiment") {
                    experiment = Some(e.clone());
                }
                if let Some(Value::Str(m)) = v.get("method") {
                    method = m.clone();
                }
            }
            Some(Value::Str(r)) if r == "counter" => {
                if matches!(v.get("name"), Some(Value::Str(n)) if n == "conditions_evaluated") {
                    conditions += v.get("value").and_then(Value::as_f64).unwrap_or(0.0);
                }
            }
            Some(Value::Str(r)) if r == "span" => {
                // whole-fit spans only: PNrule's `fit` and the coarse
                // baseline span; interior phase spans would double-count
                if matches!(v.get("kind"), Some(Value::Str(k)) if k == "fit" || k == "baseline_fit")
                {
                    fit_spans += 1;
                    fit_ms += v.get("wall_ns").and_then(Value::as_f64).unwrap_or(0.0) / 1e6;
                }
            }
            _ => {}
        }
    }
    experiment.map(|e| (e, method, fit_spans, fit_ms, conditions))
}

/// Renders the timing appendix from `<dir>/telemetry/*.ndjson`, or
/// `None` when no traces exist.
fn timing_appendix(dir: &str) -> Option<String> {
    let tel_dir = std::path::Path::new(dir).join("telemetry");
    let mut paths: Vec<_> = std::fs::read_dir(tel_dir)
        .ok()?
        .flatten()
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "ndjson"))
        .collect();
    paths.sort();
    let mut rows: Vec<TimingRow> = paths
        .iter()
        .filter_map(|p| std::fs::read_to_string(p).ok())
        .filter_map(|text| summarise_cell(&text))
        .collect();
    if rows.is_empty() {
        return None;
    }
    rows.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    let mut out = String::new();
    let _ = writeln!(out, "### Timing appendix — per-cell fit telemetry\n");
    let _ = writeln!(
        out,
        "| experiment | method | fit spans | fit wall ms | conditions evaluated |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (experiment, method, fit_spans, fit_ms, conditions) in &rows {
        let _ = writeln!(
            out,
            "| {experiment} | {method} | {fit_spans} | {fit_ms:.1} | {conditions:.0} |"
        );
    }
    let _ = writeln!(out);
    Some(out)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir = "results".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(v) => dir = v,
                None => {
                    eprintln!("error: --out requires a value");
                    std::process::exit(pnr_core::exit::USAGE);
                }
            },
            other => {
                eprintln!("error: unknown argument {other}; expected --out <dir>");
                std::process::exit(pnr_core::exit::USAGE);
            }
        }
    }

    let order = [
        ("table1", "Table 1 — numerical-only datasets (nsyn1..6)"),
        ("figure1", "Figure 1 — nsyn3 under tr × nr"),
        ("table2", "Table 2 — nsyn5 under tr × nr"),
        ("table3", "Table 3 — categorical-only datasets"),
        ("table4", "Table 4 — syngen under tr × nr"),
        ("table5", "Table 5 — target-class proportion sweep"),
        ("table6", "Table 6 — KDD'99 simulation (probe, r2l)"),
        ("table_r2l", "Section 4 — r2l rp × rn grid"),
        ("table_r2l_p1", "Section 4 — r2l.P1 rp × rn grid"),
        ("table_probe", "Section 4 — probe rp × rn grid"),
        ("table_probe_p1", "Section 4 — probe.P1 rp × rn grid"),
        ("ablations", "Ablations (beyond the paper)"),
    ];

    let mut out = String::new();
    for (file, title) in order {
        let path = format!("{dir}/{file}.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("skipping {path} (not found)");
            continue;
        };
        let experiments: Vec<ExperimentResult> =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
        let _ = writeln!(out, "### {title}\n");
        for exp in &experiments {
            let _ = writeln!(out, "**{}** — {}\n", exp.id, exp.description);
            let _ = writeln!(
                out,
                "| model | recall % | precision % | F (ours) | F (paper) |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|");
            for row in &exp.rows {
                let paper = paper_f(&exp.id, &row.label)
                    .map(|f| format!("{f:.4}"))
                    .unwrap_or_else(|| "—".to_string());
                let _ = writeln!(
                    out,
                    "| {} | {:.2} | {:.2} | {:.4} | {} |",
                    row.label,
                    row.recall * 100.0,
                    row.precision * 100.0,
                    row.f,
                    paper
                );
            }
            let _ = writeln!(out);
        }
    }
    if let Some(appendix) = timing_appendix(&dir) {
        out.push_str(&appendix);
    }
    print!("{out}");
}
