//! Assembles `EXPERIMENTS.md` from the JSON result files in `results/`:
//! one markdown table per experiment with the paper's published F next to
//! the measured F.
//!
//! Usage: `report_md [--out results] > EXPERIMENTS.md`

use pnr_experiments::paper::paper_f;
use pnr_experiments::ExperimentResult;
use std::fmt::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir = "results".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(v) => dir = v,
                None => {
                    eprintln!("error: --out requires a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument {other}; expected --out <dir>");
                std::process::exit(2);
            }
        }
    }

    let order = [
        ("table1", "Table 1 — numerical-only datasets (nsyn1..6)"),
        ("figure1", "Figure 1 — nsyn3 under tr × nr"),
        ("table2", "Table 2 — nsyn5 under tr × nr"),
        ("table3", "Table 3 — categorical-only datasets"),
        ("table4", "Table 4 — syngen under tr × nr"),
        ("table5", "Table 5 — target-class proportion sweep"),
        ("table6", "Table 6 — KDD'99 simulation (probe, r2l)"),
        ("table_r2l", "Section 4 — r2l rp × rn grid"),
        ("table_r2l_p1", "Section 4 — r2l.P1 rp × rn grid"),
        ("table_probe", "Section 4 — probe rp × rn grid"),
        ("table_probe_p1", "Section 4 — probe.P1 rp × rn grid"),
        ("ablations", "Ablations (beyond the paper)"),
    ];

    let mut out = String::new();
    for (file, title) in order {
        let path = format!("{dir}/{file}.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("skipping {path} (not found)");
            continue;
        };
        let experiments: Vec<ExperimentResult> =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
        let _ = writeln!(out, "### {title}\n");
        for exp in &experiments {
            let _ = writeln!(out, "**{}** — {}\n", exp.id, exp.description);
            let _ = writeln!(
                out,
                "| model | recall % | precision % | F (ours) | F (paper) |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|");
            for row in &exp.rows {
                let paper = paper_f(&exp.id, &row.label)
                    .map(|f| format!("{f:.4}"))
                    .unwrap_or_else(|| "—".to_string());
                let _ = writeln!(
                    out,
                    "| {} | {:.2} | {:.2} | {:.4} | {} |",
                    row.label,
                    row.recall * 100.0,
                    row.precision * 100.0,
                    row.f,
                    paper
                );
            }
            let _ = writeln!(out);
        }
    }
    print!("{out}");
}
