//! Definitions of every table/figure experiment.

use crate::cli::CliOptions;
use crate::methods::{pnrule_variant_grid, run_method, run_pnrule_best, Method};
use crate::report::ExperimentResult;
use pnr_core::PnruleParams;
use pnr_data::{subsample_class, Dataset};
use pnr_metrics::PrfReport;
use pnr_rules::EvalMetric;
use pnr_synth::categorical::CategoricalModelConfig;
use pnr_synth::general::GeneralModelConfig;
use pnr_synth::numeric::NumericModelConfig;
use pnr_synth::SynthScale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// A boxed unit of work returning `T`.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Runs the closures on `threads` workers, returning results in input
/// order. Each closure is independent (one method on one dataset).
pub fn run_jobs<T: Send>(jobs: Vec<Job<'_, T>>, threads: usize) -> Vec<T> {
    let n = jobs.len();
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let queue: Mutex<Vec<(usize, Job<'_, T>)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    std::thread::scope(|s| {
        for _ in 0..threads.max(1).min(n.max(1)) {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                match job {
                    Some((i, f)) => {
                        let out = f();
                        slots.lock().expect("slot lock")[i] = Some(out);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("threads joined")
        .into_iter()
        .map(|o| o.expect("every job ran"))
        .collect()
}

fn train_scale(opts: &CliOptions) -> SynthScale {
    SynthScale::paper_train().scaled_by(opts.scale)
}

fn test_scale(opts: &CliOptions) -> SynthScale {
    SynthScale::paper_test().scaled_by(opts.scale)
}

/// The standard five-method comparison on one (train, test) pair: `C`,
/// `Cte`, `R`, `Re`, and best-of-grid PNrule.
fn compare_all(train: &Dataset, test: &Dataset, threads: usize) -> Vec<(&'static str, PrfReport)> {
    let target = train
        .class_code(pnr_synth::TARGET_CLASS)
        .expect("target class");
    let methods = [
        Method::C45Rules,
        Method::C45TreeWe,
        Method::Ripper,
        Method::RipperWe,
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> (&'static str, PrfReport) + Send + '_>> = methods
        .iter()
        .map(|m| {
            let m = m.clone();
            Box::new(move || (m.label(), run_method(&m, train, test, target)))
                as Box<dyn FnOnce() -> (&'static str, PrfReport) + Send + '_>
        })
        .collect();
    jobs.push(Box::new(move || {
        (
            "PNrule",
            run_pnrule_best(train, test, target, &pnrule_variant_grid()).0,
        )
    }));
    run_jobs(jobs, threads)
}

fn subset(rows: Vec<(&'static str, PrfReport)>, keep: &[&str], exp: &mut ExperimentResult) {
    for (label, rep) in rows {
        if keep.is_empty() || keep.contains(&label) {
            exp.push(label, rep);
        }
    }
}

/// **Table 1** — `nsyn1..nsyn6`, five classifiers each.
pub fn table1(opts: &CliOptions) -> Vec<ExperimentResult> {
    (1..=6)
        .map(|i| {
            let cfg = NumericModelConfig::nsyn(i);
            let train = pnr_synth::numeric::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::numeric::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let mut exp = ExperimentResult::new(
                format!("table1/nsyn{i}"),
                format!(
                    "nsptc={} ntc={} nspntc={} tr={} nr={} | train {} test {} (scale {})",
                    cfg.nsptc,
                    cfg.ntc,
                    cfg.nspntc,
                    cfg.tr,
                    cfg.nr,
                    train.n_rows(),
                    test.n_rows(),
                    opts.scale
                ),
            );
            subset(compare_all(&train, &test, opts.threads), &[], &mut exp);
            exp
        })
        .collect()
}

/// **Figure 1** — nsyn3 under the `tr × nr ∈ {0.2, 2, 4}²` grid.
pub fn figure1(opts: &CliOptions) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    for tr in [0.2, 2.0, 4.0] {
        for nr in [0.2, 2.0, 4.0] {
            let cfg = NumericModelConfig::nsyn(3).with_widths(tr, nr);
            let train = pnr_synth::numeric::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::numeric::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let mut exp = ExperimentResult::new(
                format!("figure1/nsyn3 tr={tr} nr={nr}"),
                format!(
                    "train {} test {} (scale {})",
                    train.n_rows(),
                    test.n_rows(),
                    opts.scale
                ),
            );
            subset(compare_all(&train, &test, opts.threads), &[], &mut exp);
            out.push(exp);
        }
    }
    out
}

/// **Table 2** — nsyn5 under `tr × nr ∈ {0.2, 4}²`; `Cte`, `Re`, `P` rows.
pub fn table2(opts: &CliOptions) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    for tr in [0.2, 4.0] {
        for nr in [0.2, 4.0] {
            let cfg = NumericModelConfig::nsyn(5).with_widths(tr, nr);
            let train = pnr_synth::numeric::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::numeric::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let mut exp = ExperimentResult::new(
                format!("table2/nsyn5 tr={tr} nr={nr}"),
                format!(
                    "train {} test {} (scale {})",
                    train.n_rows(),
                    test.n_rows(),
                    opts.scale
                ),
            );
            subset(
                compare_all(&train, &test, opts.threads),
                &["C4.5-we", "RIPPER-we", "PNrule"],
                &mut exp,
            );
            out.push(exp);
        }
    }
    out
}

/// The ten categorical dataset names of Table 3.
pub fn categorical_dataset_names() -> Vec<String> {
    (1..=6)
        .map(|i| format!("coa{i}"))
        .chain((1..=4).map(|i| format!("coad{i}")))
        .collect()
}

fn categorical_config(name: &str) -> CategoricalModelConfig {
    if let Some(i) = name.strip_prefix("coad") {
        CategoricalModelConfig::coad(i.parse().expect("coad index"))
    } else if let Some(i) = name.strip_prefix("coa") {
        CategoricalModelConfig::coa(i.parse().expect("coa index"))
    } else {
        panic!("unknown categorical dataset {name}")
    }
}

/// **Table 3** — the ten categorical-only datasets; `C4.5rules`, `RIPPER`,
/// `PNrule` rows.
pub fn table3(opts: &CliOptions) -> Vec<ExperimentResult> {
    categorical_dataset_names()
        .into_iter()
        .map(|name| {
            let cfg = categorical_config(&name);
            let train = pnr_synth::categorical::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::categorical::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let target = train.class_code(pnr_synth::TARGET_CLASS).expect("target");
            let mut exp = ExperimentResult::new(
                format!("table3/{name}"),
                format!(
                    "t(na={},nspa={},V={}) nt(na={},nspa={},V={}) | train {} test {}",
                    cfg.target.na,
                    cfg.target.nspa,
                    cfg.target.vocab,
                    cfg.non_target.na,
                    cfg.non_target.nspa,
                    cfg.non_target.vocab,
                    train.n_rows(),
                    test.n_rows()
                ),
            );
            let jobs: Vec<Box<dyn FnOnce() -> (&'static str, PrfReport) + Send + '_>> = vec![
                Box::new(|| {
                    (
                        "C4.5rules",
                        run_method(&Method::C45Rules, &train, &test, target),
                    )
                }),
                Box::new(|| ("RIPPER", run_method(&Method::Ripper, &train, &test, target))),
                Box::new(|| {
                    (
                        "PNrule",
                        run_pnrule_best(&train, &test, target, &pnrule_variant_grid()).0,
                    )
                }),
            ];
            for (label, rep) in run_jobs(jobs, opts.threads) {
                exp.push(label, rep);
            }
            exp
        })
        .collect()
}

/// **Table 4** — syngen under `tr × nr ∈ {0.2, 4}²`; `C`, `Re`, `P` rows.
pub fn table4(opts: &CliOptions) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    for tr in [0.2, 4.0] {
        for nr in [0.2, 4.0] {
            let cfg = GeneralModelConfig::default().with_widths(tr, nr);
            let train = pnr_synth::general::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::general::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let mut exp = ExperimentResult::new(
                format!("table4/syngen tr={tr} nr={nr}"),
                format!(
                    "train {} test {} (scale {})",
                    train.n_rows(),
                    test.n_rows(),
                    opts.scale
                ),
            );
            subset(
                compare_all(&train, &test, opts.threads),
                &["C4.5rules", "RIPPER-we", "PNrule"],
                &mut exp,
            );
            out.push(exp);
        }
    }
    out
}

/// **Table 5** — effect of target-class proportion: the non-target class of
/// syngen is subsampled by `ntc-frac`, raising the target fraction from
/// 0.3% towards 50%.
pub fn table5(opts: &CliOptions) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    for (tr, nr, fracs) in [
        (0.2, 0.2, vec![1.0, 0.5, 0.1, 0.05, 0.02, 0.01, 0.003]),
        (4.0, 4.0, vec![1.0, 0.1, 0.05, 0.02, 0.01]),
    ] {
        let cfg = GeneralModelConfig::default().with_widths(tr, nr);
        let full_train = pnr_synth::general::generate(&cfg, &train_scale(opts), opts.seed);
        let full_test = pnr_synth::general::generate(&cfg, &test_scale(opts), opts.seed + 1);
        let target = full_train
            .class_code(pnr_synth::TARGET_CLASS)
            .expect("target");
        let non_target = full_train
            .class_code(pnr_synth::NON_TARGET_CLASS)
            .expect("nc");
        for frac in fracs {
            let frac: f64 = frac;
            let mut rng = StdRng::seed_from_u64(opts.seed ^ frac.to_bits());
            let train = subsample_class(&full_train, non_target, frac, &mut rng);
            let test = subsample_class(&full_test, non_target, frac, &mut rng);
            let tc_pct =
                100.0 * train.class_counts()[target as usize] as f64 / train.n_rows() as f64;
            let mut exp = ExperimentResult::new(
                format!("table5/syngen tr={tr} nr={nr} ntc-frac={frac}"),
                format!("target proportion {tc_pct:.1}% | train {}", train.n_rows()),
            );
            let jobs: Vec<Box<dyn FnOnce() -> (&'static str, PrfReport) + Send + '_>> = vec![
                Box::new(|| {
                    (
                        "C4.5rules",
                        run_method(&Method::C45Rules, &train, &test, target),
                    )
                }),
                Box::new(|| ("RIPPER", run_method(&Method::Ripper, &train, &test, target))),
                Box::new(|| {
                    (
                        "PNrule",
                        run_pnrule_best(&train, &test, target, &pnrule_variant_grid()).0,
                    )
                }),
            ];
            for (label, rep) in run_jobs(jobs, opts.threads) {
                exp.push(label, rep);
            }
            out.push(exp);
        }
    }
    out
}

/// KDD simulation sizes: the contest's 10% training sample (~494k) and the
/// test set (~311k), shrunk by the scale factor.
pub fn kdd_sizes(opts: &CliOptions) -> (usize, usize) {
    (
        ((494_021.0 * opts.scale).round() as usize).max(1_000),
        ((311_029.0 * opts.scale).round() as usize).max(1_000),
    )
}

/// **Table 6** — simulated KDD'99, classes `probe` and `r2l`: each baseline
/// reports its best of {as-is, stratified}; PNrule runs with the default
/// two-phase settings (the "old PNrule" configuration).
pub fn table6(opts: &CliOptions) -> Vec<ExperimentResult> {
    let (n_train, n_test) = kdd_sizes(opts);
    let train = pnr_kddsim::generate_train(n_train, opts.seed);
    let test = pnr_kddsim::generate_test(n_test, opts.seed + 1);
    ["probe", "r2l"]
        .iter()
        .map(|class| {
            let target = train.class_code(class).expect("class exists");
            let mut exp = ExperimentResult::new(
                format!("table6/{class}"),
                format!(
                    "KDD sim | train {n_train} test {n_test} (scale {})",
                    opts.scale
                ),
            );
            type Job<'a> = Box<dyn FnOnce() -> (&'static str, PrfReport) + Send + 'a>;
            let best = |a: PrfReport, b: PrfReport| if a.f >= b.f { a } else { b };
            let (train, test) = (&train, &test);
            let jobs: Vec<Job<'_>> = vec![
                Box::new(move || {
                    let unit = run_method(&Method::C45Rules, train, test, target);
                    let strat = run_method(&Method::C45TreeWe, train, test, target);
                    ("C4.5rules", best(unit, strat))
                }),
                Box::new(move || {
                    let unit = run_method(&Method::Ripper, train, test, target);
                    let strat = run_method(&Method::RipperWe, train, test, target);
                    ("RIPPER", best(unit, strat))
                }),
                Box::new(move || {
                    let params = PnruleParams::default();
                    (
                        "PNrule",
                        run_method(&Method::Pnrule(params), train, test, target),
                    )
                }),
            ];
            for (label, rep) in run_jobs(jobs, opts.threads) {
                exp.push(label, rep);
            }
            exp
        })
        .collect()
}

/// The section-4 `rp × rn` parameter grids. `p1` restricts P-rules to one
/// condition; the metric is RIPPER's information gain, as in the paper.
pub fn rp_rn_grid(
    opts: &CliOptions,
    class: &str,
    rps: &[f64],
    rns: &[f64],
    p1: bool,
) -> Vec<ExperimentResult> {
    let (n_train, n_test) = kdd_sizes(opts);
    let train = pnr_kddsim::generate_train(n_train, opts.seed);
    let test = pnr_kddsim::generate_test(n_test, opts.seed + 1);
    let target = train.class_code(class).expect("class exists");
    let suffix = if p1 { ".P1" } else { "" };
    let mut out = Vec::new();
    for &rp in rps {
        let mut exp = ExperimentResult::new(
            format!("section4/{class}{suffix} rp={rp}"),
            format!("KDD sim | train {n_train} test {n_test}"),
        );
        let jobs: Vec<Box<dyn FnOnce() -> (String, PrfReport) + Send + '_>> = rns
            .iter()
            .map(|&rn| {
                let train = &train;
                let test = &test;
                Box::new(move || {
                    let params = PnruleParams {
                        metric: EvalMetric::FoilGain,
                        max_p_rule_len: if p1 { Some(1) } else { None },
                        ..PnruleParams::with_recall_limits(rp, rn)
                    };
                    (
                        format!("rn={rn}"),
                        run_method(&Method::Pnrule(params), train, test, target),
                    )
                }) as Box<dyn FnOnce() -> (String, PrfReport) + Send + '_>
            })
            .collect();
        for (label, rep) in run_jobs(jobs, opts.threads) {
            exp.push(label, rep);
        }
        out.push(exp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> CliOptions {
        CliOptions {
            scale: 0.004,
            threads: 4,
            ..Default::default()
        }
    }

    #[test]
    fn run_jobs_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_jobs(jobs, 3);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_single_thread_and_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 7)];
        assert_eq!(run_jobs(jobs, 1), vec![7]);
        let none: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![];
        assert!(run_jobs(none, 4).is_empty());
    }

    #[test]
    fn categorical_names_cover_table_3() {
        let names = categorical_dataset_names();
        assert_eq!(names.len(), 10);
        assert_eq!(names[0], "coa1");
        assert_eq!(names[9], "coad4");
        for n in &names {
            let _ = categorical_config(n); // must not panic
        }
    }

    #[test]
    fn kdd_sizes_scale() {
        let opts = CliOptions {
            scale: 0.1,
            ..Default::default()
        };
        let (tr, te) = kdd_sizes(&opts);
        assert_eq!(tr, 49_402);
        assert_eq!(te, 31_103);
    }

    #[test]
    fn table6_smoke_runs_at_tiny_scale() {
        let out = table6(&tiny_opts());
        assert_eq!(out.len(), 2);
        for exp in &out {
            assert_eq!(exp.rows.len(), 3);
        }
    }

    #[test]
    fn rp_rn_grid_smoke() {
        let out = rp_rn_grid(&tiny_opts(), "probe", &[0.95], &[0.9, 0.995], true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rows.len(), 2);
        assert!(out[0].id.contains(".P1"));
    }
}
