//! Definitions of every table/figure experiment.
//!
//! Jobs — one (method, dataset) cell each — run on a small worker pool
//! with **panic isolation**: a cell whose fit panics becomes a
//! [`JobOutcome::Failed`] carrying the panic message, and every sibling
//! cell still completes. Completed cells are persisted through the
//! [`Checkpoint`](crate::checkpoint::Checkpoint) store as they finish, so
//! an interrupted table run resumes from where it died.

use crate::checkpoint::{CellKey, Checkpoint};
use crate::cli::CliOptions;
use crate::methods::{
    pnrule_variant_grid, run_method_with_sink, run_pnrule_best_model_with_sink, Method,
};
use crate::report::{ExperimentResult, ResultRow};
use pnr_core::PnruleParams;
use pnr_data::{subsample_class, Dataset};
use pnr_metrics::PrfReport;
use pnr_rules::EvalMetric;
use pnr_synth::categorical::CategoricalModelConfig;
use pnr_synth::general::GeneralModelConfig;
use pnr_synth::numeric::NumericModelConfig;
use pnr_synth::SynthScale;
use pnr_telemetry::{RecordingSink, TelemetrySink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, PoisonError};

/// Captures panic messages from worker jobs without letting the global
/// panic hook spam stderr for isolated (expected-to-be-caught) panics.
mod panic_capture {
    use std::cell::{Cell, RefCell};
    use std::panic::{AssertUnwindSafe, PanicHookInfo};
    use std::sync::OnceLock;

    thread_local! {
        /// True while the current thread runs a job under [`run_caught`].
        static ACTIVE: Cell<bool> = const { Cell::new(false) };
        /// The formatted message of the most recent captured panic.
        static CAPTURED: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    /// The hook that was installed before ours; panics on threads that are
    /// not running an isolated job are forwarded to it unchanged.
    type PanicHook = Box<dyn for<'a> Fn(&PanicHookInfo<'a>) + Send + Sync>;
    static PREV_HOOK: OnceLock<PanicHook> = OnceLock::new();

    fn install_hook() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let _ = PREV_HOOK.set(std::panic::take_hook());
            std::panic::set_hook(Box::new(|info| {
                if ACTIVE.with(Cell::get) {
                    let msg = payload_str(info.payload());
                    let full = match info.location() {
                        Some(loc) => format!("{msg} at {}:{}", loc.file(), loc.line()),
                        None => msg,
                    };
                    CAPTURED.with(|c| *c.borrow_mut() = Some(full));
                } else if let Some(prev) = PREV_HOOK.get() {
                    prev(info);
                }
            }));
        });
    }

    fn payload_str(payload: &dyn std::any::Any) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// Runs `f`, converting a panic into `Err(message)`. The message comes
    /// from the panic hook (which sees the original payload and location)
    /// rather than from stderr scraping; nothing is printed for the
    /// captured panic.
    pub fn run_caught<T>(f: impl FnOnce() -> T) -> Result<T, String> {
        install_hook();
        ACTIVE.with(|a| a.set(true));
        let result = std::panic::catch_unwind(AssertUnwindSafe(f));
        ACTIVE.with(|a| a.set(false));
        result.map_err(|payload| {
            CAPTURED
                .with(|c| c.borrow_mut().take())
                .unwrap_or_else(|| payload_str(payload.as_ref()))
        })
    }
}

/// A boxed unit of work returning `T`.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// A boxed experiment cell: receives the cell's telemetry sink (a fresh
/// [`RecordingSink`] under `--telemetry`, the shared no-op otherwise) and
/// returns its report. The sink is write-only observation — a cell must
/// produce the identical report whatever sink it is handed.
pub type CellJob<'a> = Box<dyn FnOnce(&Arc<dyn TelemetrySink>) -> PrfReport + Send + 'a>;

/// What happened to one labelled job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<T> {
    /// The job completed and returned its value.
    Done {
        /// The label the job was submitted under.
        label: String,
        /// The job's return value.
        value: T,
    },
    /// The job panicked; the run continues and reports the cell as failed.
    Failed {
        /// The label the job was submitted under.
        label: String,
        /// The captured panic message (with source location when known).
        reason: String,
    },
}

impl<T> JobOutcome<T> {
    /// The label the job was submitted under.
    pub fn label(&self) -> &str {
        match self {
            JobOutcome::Done { label, .. } | JobOutcome::Failed { label, .. } => label,
        }
    }
}

/// Runs the labelled closures on `threads` workers, returning outcomes in
/// input order. Each closure is independent (one method on one dataset)
/// and runs under `catch_unwind`: a panicking job yields
/// [`JobOutcome::Failed`] with the panic message while every other job
/// still runs to completion.
pub fn run_jobs<T: Send>(jobs: Vec<(String, Job<'_, T>)>, threads: usize) -> Vec<JobOutcome<T>> {
    type QueuedJob<'a, T> = (usize, (String, Job<'a, T>));
    let n = jobs.len();
    let slots: Mutex<Vec<Option<JobOutcome<T>>>> = Mutex::new((0..n).map(|_| None).collect());
    let queue: Mutex<Vec<QueuedJob<'_, T>>> = Mutex::new(jobs.into_iter().enumerate().collect());
    std::thread::scope(|s| {
        for _ in 0..threads.max(1).min(n.max(1)) {
            s.spawn(|| loop {
                let job = queue.lock().unwrap_or_else(PoisonError::into_inner).pop();
                match job {
                    Some((i, (label, f))) => {
                        let outcome = match panic_capture::run_caught(f) {
                            Ok(value) => JobOutcome::Done { label, value },
                            Err(reason) => JobOutcome::Failed { label, reason },
                        };
                        slots.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(outcome);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| JobOutcome::Failed {
                label: format!("job#{i}"),
                reason: "worker exited before storing a result".to_string(),
            })
        })
        .collect()
}

/// Runs one experiment's cells with checkpoint/resume: cells already
/// completed under the same (experiment, method, scale, seed) are loaded
/// from `<out_dir>/checkpoints/` instead of re-run (when `opts.resume`),
/// and freshly completed cells are persisted *inside the worker* the
/// moment they finish — a killed run loses at most the in-flight cells.
/// Panicking cells become failed rows; failures are never checkpointed.
///
/// With `opts.telemetry`, each freshly run cell fits against its own
/// [`RecordingSink`] and, once its row is checkpointed, exports the
/// recording as NDJSON under `<out_dir>/telemetry/` keyed by the same
/// cell fingerprint (see [`crate::telemetry_out`]). Cells served from
/// checkpoints never re-run and therefore write no telemetry.
pub fn run_cells(
    exp_id: &str,
    opts: &CliOptions,
    jobs: Vec<(String, CellJob<'_>)>,
) -> Vec<ResultRow> {
    let ckpt = Checkpoint::new(&opts.out_dir, opts.resume);
    let mut rows: Vec<Option<ResultRow>> = (0..jobs.len()).map(|_| None).collect();
    let mut indices = Vec::new();
    let mut pending: Vec<(String, Job<'_, ResultRow>)> = Vec::new();
    for (i, (label, job)) in jobs.into_iter().enumerate() {
        let key = CellKey {
            experiment: exp_id.to_string(),
            method: label.clone(),
            scale: opts.scale,
            seed: opts.seed,
        };
        if let Some(row) = ckpt.load(&key) {
            rows[i] = Some(row);
            continue;
        }
        indices.push(i);
        let store = ckpt.clone();
        let row_label = label.clone();
        let telemetry = opts.telemetry;
        let out_dir = opts.out_dir.clone();
        pending.push((
            label,
            Box::new(move || {
                let recorder = if telemetry {
                    Some(Arc::new(RecordingSink::new()))
                } else {
                    None
                };
                let sink: Arc<dyn TelemetrySink> = match &recorder {
                    Some(r) => r.clone(),
                    None => pnr_telemetry::noop(),
                };
                let row = ResultRow::new(row_label, job(&sink));
                store.store(&key, &row);
                if let Some(recorder) = recorder {
                    crate::telemetry_out::write_cell(&out_dir, &key, &recorder);
                }
                row
            }),
        ));
    }
    for (slot, outcome) in indices.into_iter().zip(run_jobs(pending, opts.threads)) {
        rows[slot] = Some(match outcome {
            JobOutcome::Done { value, .. } => value,
            JobOutcome::Failed { label, reason } => ResultRow::failed(label, reason),
        });
    }
    rows.into_iter()
        .enumerate()
        .map(|(i, row)| {
            row.unwrap_or_else(|| ResultRow::failed(format!("cell#{i}"), "missing result"))
        })
        .collect()
}

fn train_scale(opts: &CliOptions) -> SynthScale {
    SynthScale::paper_train().scaled_by(opts.scale)
}

fn test_scale(opts: &CliOptions) -> SynthScale {
    SynthScale::paper_test().scaled_by(opts.scale)
}

/// The standard five-method comparison on one (train, test) pair: `C`,
/// `Cte`, `R`, `Re`, and best-of-grid PNrule.
fn compare_all(exp_id: &str, opts: &CliOptions, train: &Dataset, test: &Dataset) -> Vec<ResultRow> {
    let target = train
        .class_code(pnr_synth::TARGET_CLASS)
        .expect("target class");
    let methods = [
        Method::C45Rules,
        Method::C45TreeWe,
        Method::Ripper,
        Method::RipperWe,
    ];
    let mut jobs: Vec<(String, CellJob<'_>)> = methods
        .iter()
        .map(|m| {
            let m = m.clone();
            (
                m.label().to_string(),
                Box::new(move |sink: &Arc<dyn TelemetrySink>| {
                    run_method_with_sink(&m, train, test, target, sink)
                }) as CellJob<'_>,
            )
        })
        .collect();
    jobs.push((
        "PNrule".to_string(),
        pnrule_grid_cell(exp_id, opts, train, test, target),
    ));
    run_cells(exp_id, opts, jobs)
}

/// The best-of-grid PNrule cell shared by the table experiments: runs
/// the standard variant grid and, under `--save-model`, persists the
/// winning model as a loadable artifact keyed by the experiment id.
fn pnrule_grid_cell<'a>(
    exp_id: &str,
    opts: &CliOptions,
    train: &'a Dataset,
    test: &'a Dataset,
    target: u32,
) -> CellJob<'a> {
    let save_dir = opts.save_model.clone();
    let exp_id = exp_id.to_string();
    Box::new(move |sink: &Arc<dyn TelemetrySink>| {
        let best =
            run_pnrule_best_model_with_sink(train, test, target, &pnrule_variant_grid(), sink);
        if let Some(dir) = &save_dir {
            crate::artifact_out::save_pnrule_artifact(
                dir,
                &exp_id,
                best.model,
                best.params,
                best.fit_report,
                train.schema().clone(),
            );
        }
        best.report
    })
}

fn subset(rows: Vec<ResultRow>, keep: &[&str], exp: &mut ExperimentResult) {
    for row in rows {
        if keep.is_empty() || keep.contains(&row.label.as_str()) {
            exp.push_row(row);
        }
    }
}

/// **Table 1** — `nsyn1..nsyn6`, five classifiers each.
pub fn table1(opts: &CliOptions) -> Vec<ExperimentResult> {
    (1..=6)
        .map(|i| {
            let cfg = NumericModelConfig::nsyn(i);
            let train = pnr_synth::numeric::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::numeric::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let mut exp = ExperimentResult::new(
                format!("table1/nsyn{i}"),
                format!(
                    "nsptc={} ntc={} nspntc={} tr={} nr={} | train {} test {} (scale {})",
                    cfg.nsptc,
                    cfg.ntc,
                    cfg.nspntc,
                    cfg.tr,
                    cfg.nr,
                    train.n_rows(),
                    test.n_rows(),
                    opts.scale
                ),
            );
            let rows = compare_all(&exp.id, opts, &train, &test);
            subset(rows, &[], &mut exp);
            exp
        })
        .collect()
}

/// **Figure 1** — nsyn3 under the `tr × nr ∈ {0.2, 2, 4}²` grid.
pub fn figure1(opts: &CliOptions) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    for tr in [0.2, 2.0, 4.0] {
        for nr in [0.2, 2.0, 4.0] {
            let cfg = NumericModelConfig::nsyn(3).with_widths(tr, nr);
            let train = pnr_synth::numeric::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::numeric::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let mut exp = ExperimentResult::new(
                format!("figure1/nsyn3 tr={tr} nr={nr}"),
                format!(
                    "train {} test {} (scale {})",
                    train.n_rows(),
                    test.n_rows(),
                    opts.scale
                ),
            );
            let rows = compare_all(&exp.id, opts, &train, &test);
            subset(rows, &[], &mut exp);
            out.push(exp);
        }
    }
    out
}

/// **Table 2** — nsyn5 under `tr × nr ∈ {0.2, 4}²`; `Cte`, `Re`, `P` rows.
pub fn table2(opts: &CliOptions) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    for tr in [0.2, 4.0] {
        for nr in [0.2, 4.0] {
            let cfg = NumericModelConfig::nsyn(5).with_widths(tr, nr);
            let train = pnr_synth::numeric::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::numeric::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let mut exp = ExperimentResult::new(
                format!("table2/nsyn5 tr={tr} nr={nr}"),
                format!(
                    "train {} test {} (scale {})",
                    train.n_rows(),
                    test.n_rows(),
                    opts.scale
                ),
            );
            let rows = compare_all(&exp.id, opts, &train, &test);
            subset(rows, &["C4.5-we", "RIPPER-we", "PNrule"], &mut exp);
            out.push(exp);
        }
    }
    out
}

/// The ten categorical dataset names of Table 3.
pub fn categorical_dataset_names() -> Vec<String> {
    (1..=6)
        .map(|i| format!("coa{i}"))
        .chain((1..=4).map(|i| format!("coad{i}")))
        .collect()
}

/// Resolves a Table-3 categorical dataset name (`coa1..coa6`,
/// `coad1..coad4`) to its generator config, or `None` for an unknown
/// name — callers surface the error instead of panicking.
pub fn categorical_config(name: &str) -> Option<CategoricalModelConfig> {
    if let Some(i) = name.strip_prefix("coad") {
        let i: usize = i.parse().ok().filter(|i| (1..=4).contains(i))?;
        Some(CategoricalModelConfig::coad(i))
    } else if let Some(i) = name.strip_prefix("coa") {
        let i: usize = i.parse().ok().filter(|i| (1..=6).contains(i))?;
        Some(CategoricalModelConfig::coa(i))
    } else {
        None
    }
}

/// **Table 3** — the ten categorical-only datasets; `C4.5rules`, `RIPPER`,
/// `PNrule` rows.
pub fn table3(opts: &CliOptions) -> Vec<ExperimentResult> {
    categorical_dataset_names()
        .into_iter()
        .filter_map(|name| {
            let cfg = categorical_config(&name)?;
            let train = pnr_synth::categorical::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::categorical::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let target = train.class_code(pnr_synth::TARGET_CLASS).expect("target");
            let mut exp = ExperimentResult::new(
                format!("table3/{name}"),
                format!(
                    "t(na={},nspa={},V={}) nt(na={},nspa={},V={}) | train {} test {}",
                    cfg.target.na,
                    cfg.target.nspa,
                    cfg.target.vocab,
                    cfg.non_target.na,
                    cfg.non_target.nspa,
                    cfg.non_target.vocab,
                    train.n_rows(),
                    test.n_rows()
                ),
            );
            let jobs: Vec<(String, CellJob<'_>)> = vec![
                (
                    "C4.5rules".to_string(),
                    Box::new(|sink: &Arc<dyn TelemetrySink>| {
                        run_method_with_sink(&Method::C45Rules, &train, &test, target, sink)
                    }),
                ),
                (
                    "RIPPER".to_string(),
                    Box::new(|sink: &Arc<dyn TelemetrySink>| {
                        run_method_with_sink(&Method::Ripper, &train, &test, target, sink)
                    }),
                ),
                (
                    "PNrule".to_string(),
                    pnrule_grid_cell(&exp.id, opts, &train, &test, target),
                ),
            ];
            let rows = run_cells(&exp.id, opts, jobs);
            for row in rows {
                exp.push_row(row);
            }
            Some(exp)
        })
        .collect()
}

/// **Table 4** — syngen under `tr × nr ∈ {0.2, 4}²`; `C`, `Re`, `P` rows.
pub fn table4(opts: &CliOptions) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    for tr in [0.2, 4.0] {
        for nr in [0.2, 4.0] {
            let cfg = GeneralModelConfig::default().with_widths(tr, nr);
            let train = pnr_synth::general::generate(&cfg, &train_scale(opts), opts.seed);
            let test = pnr_synth::general::generate(&cfg, &test_scale(opts), opts.seed + 1);
            let mut exp = ExperimentResult::new(
                format!("table4/syngen tr={tr} nr={nr}"),
                format!(
                    "train {} test {} (scale {})",
                    train.n_rows(),
                    test.n_rows(),
                    opts.scale
                ),
            );
            let rows = compare_all(&exp.id, opts, &train, &test);
            subset(rows, &["C4.5rules", "RIPPER-we", "PNrule"], &mut exp);
            out.push(exp);
        }
    }
    out
}

/// **Table 5** — effect of target-class proportion: the non-target class of
/// syngen is subsampled by `ntc-frac`, raising the target fraction from
/// 0.3% towards 50%.
pub fn table5(opts: &CliOptions) -> Vec<ExperimentResult> {
    let mut out = Vec::new();
    for (tr, nr, fracs) in [
        (0.2, 0.2, vec![1.0, 0.5, 0.1, 0.05, 0.02, 0.01, 0.003]),
        (4.0, 4.0, vec![1.0, 0.1, 0.05, 0.02, 0.01]),
    ] {
        let cfg = GeneralModelConfig::default().with_widths(tr, nr);
        let full_train = pnr_synth::general::generate(&cfg, &train_scale(opts), opts.seed);
        let full_test = pnr_synth::general::generate(&cfg, &test_scale(opts), opts.seed + 1);
        let target = full_train
            .class_code(pnr_synth::TARGET_CLASS)
            .expect("target");
        let non_target = full_train
            .class_code(pnr_synth::NON_TARGET_CLASS)
            .expect("nc");
        for frac in fracs {
            let frac: f64 = frac;
            let mut rng = StdRng::seed_from_u64(opts.seed ^ frac.to_bits());
            let train = subsample_class(&full_train, non_target, frac, &mut rng);
            let test = subsample_class(&full_test, non_target, frac, &mut rng);
            let tc_pct =
                100.0 * train.class_counts()[target as usize] as f64 / train.n_rows() as f64;
            let mut exp = ExperimentResult::new(
                format!("table5/syngen tr={tr} nr={nr} ntc-frac={frac}"),
                format!("target proportion {tc_pct:.1}% | train {}", train.n_rows()),
            );
            let jobs: Vec<(String, CellJob<'_>)> = vec![
                (
                    "C4.5rules".to_string(),
                    Box::new(|sink: &Arc<dyn TelemetrySink>| {
                        run_method_with_sink(&Method::C45Rules, &train, &test, target, sink)
                    }),
                ),
                (
                    "RIPPER".to_string(),
                    Box::new(|sink: &Arc<dyn TelemetrySink>| {
                        run_method_with_sink(&Method::Ripper, &train, &test, target, sink)
                    }),
                ),
                (
                    "PNrule".to_string(),
                    pnrule_grid_cell(&exp.id, opts, &train, &test, target),
                ),
            ];
            let rows = run_cells(&exp.id, opts, jobs);
            for row in rows {
                exp.push_row(row);
            }
            out.push(exp);
        }
    }
    out
}

/// A single-parameter PNrule cell (no grid): fits once and, under
/// `--save-model`, persists the model as an artifact keyed by the
/// experiment id.
fn pnrule_params_cell<'a>(
    exp_id: &str,
    opts: &CliOptions,
    train: &'a Dataset,
    test: &'a Dataset,
    target: u32,
    params: PnruleParams,
) -> CellJob<'a> {
    let save_dir = opts.save_model.clone();
    let exp_id = exp_id.to_string();
    Box::new(move |sink: &Arc<dyn TelemetrySink>| {
        let best = run_pnrule_best_model_with_sink(
            train,
            test,
            target,
            std::slice::from_ref(&params),
            sink,
        );
        if let Some(dir) = &save_dir {
            crate::artifact_out::save_pnrule_artifact(
                dir,
                &exp_id,
                best.model,
                best.params,
                best.fit_report,
                train.schema().clone(),
            );
        }
        best.report
    })
}

/// KDD simulation sizes: the contest's 10% training sample (~494k) and the
/// test set (~311k), shrunk by the scale factor.
pub fn kdd_sizes(opts: &CliOptions) -> (usize, usize) {
    (
        ((494_021.0 * opts.scale).round() as usize).max(1_000),
        ((311_029.0 * opts.scale).round() as usize).max(1_000),
    )
}

/// **Table 6** — simulated KDD'99, classes `probe` and `r2l`: each baseline
/// reports its best of {as-is, stratified}; PNrule runs with the default
/// two-phase settings (the "old PNrule" configuration).
pub fn table6(opts: &CliOptions) -> Vec<ExperimentResult> {
    let (n_train, n_test) = kdd_sizes(opts);
    let train = pnr_kddsim::generate_train(n_train, opts.seed);
    let test = pnr_kddsim::generate_test(n_test, opts.seed + 1);
    ["probe", "r2l"]
        .iter()
        .map(|class| {
            let target = train.class_code(class).expect("class exists");
            let mut exp = ExperimentResult::new(
                format!("table6/{class}"),
                format!(
                    "KDD sim | train {n_train} test {n_test} (scale {})",
                    opts.scale
                ),
            );
            let best = |a: PrfReport, b: PrfReport| if a.f >= b.f { a } else { b };
            let (train, test) = (&train, &test);
            let jobs: Vec<(String, CellJob<'_>)> = vec![
                (
                    "C4.5rules".to_string(),
                    Box::new(move |sink: &Arc<dyn TelemetrySink>| {
                        let unit =
                            run_method_with_sink(&Method::C45Rules, train, test, target, sink);
                        let strat =
                            run_method_with_sink(&Method::C45TreeWe, train, test, target, sink);
                        best(unit, strat)
                    }),
                ),
                (
                    "RIPPER".to_string(),
                    Box::new(move |sink: &Arc<dyn TelemetrySink>| {
                        let unit = run_method_with_sink(&Method::Ripper, train, test, target, sink);
                        let strat =
                            run_method_with_sink(&Method::RipperWe, train, test, target, sink);
                        best(unit, strat)
                    }),
                ),
                (
                    "PNrule".to_string(),
                    pnrule_params_cell(&exp.id, opts, train, test, target, PnruleParams::default()),
                ),
            ];
            let rows = run_cells(&exp.id, opts, jobs);
            for row in rows {
                exp.push_row(row);
            }
            exp
        })
        .collect()
}

/// The section-4 `rp × rn` parameter grids. `p1` restricts P-rules to one
/// condition; the metric is RIPPER's information gain, as in the paper.
pub fn rp_rn_grid(
    opts: &CliOptions,
    class: &str,
    rps: &[f64],
    rns: &[f64],
    p1: bool,
) -> Vec<ExperimentResult> {
    let (n_train, n_test) = kdd_sizes(opts);
    let train = pnr_kddsim::generate_train(n_train, opts.seed);
    let test = pnr_kddsim::generate_test(n_test, opts.seed + 1);
    let target = train.class_code(class).expect("class exists");
    let suffix = if p1 { ".P1" } else { "" };
    let mut out = Vec::new();
    for &rp in rps {
        let mut exp = ExperimentResult::new(
            format!("section4/{class}{suffix} rp={rp}"),
            format!("KDD sim | train {n_train} test {n_test}"),
        );
        let jobs: Vec<(String, CellJob<'_>)> = rns
            .iter()
            .map(|&rn| {
                let train = &train;
                let test = &test;
                (
                    format!("rn={rn}"),
                    Box::new(move |sink: &Arc<dyn TelemetrySink>| {
                        let params = PnruleParams {
                            metric: EvalMetric::FoilGain,
                            max_p_rule_len: if p1 { Some(1) } else { None },
                            ..PnruleParams::with_recall_limits(rp, rn)
                        };
                        run_method_with_sink(&Method::Pnrule(params), train, test, target, sink)
                    }) as CellJob<'_>,
                )
            })
            .collect();
        let rows = run_cells(&exp.id, opts, jobs);
        for row in rows {
            exp.push_row(row);
        }
        out.push(exp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> CliOptions {
        CliOptions {
            scale: 0.004,
            threads: 4,
            resume: false,
            ..Default::default()
        }
    }

    fn labelled<T: Send + 'static>(
        items: Vec<(&str, Job<'static, T>)>,
    ) -> Vec<(String, Job<'static, T>)> {
        items.into_iter().map(|(l, f)| (l.to_string(), f)).collect()
    }

    #[test]
    fn run_jobs_preserves_order() {
        let jobs: Vec<(String, Job<'_, usize>)> = (0..20usize)
            .map(|i| (format!("j{i}"), Box::new(move || i * i) as Job<'_, usize>))
            .collect();
        let out = run_jobs(jobs, 3);
        for (i, outcome) in out.iter().enumerate() {
            assert_eq!(outcome.label(), format!("j{i}"));
            match outcome {
                JobOutcome::Done { value, .. } => assert_eq!(*value, i * i),
                JobOutcome::Failed { reason, .. } => panic!("job {i} failed: {reason}"),
            }
        }
    }

    #[test]
    fn run_jobs_single_thread_and_empty() {
        let out = run_jobs(labelled(vec![("only", Box::new(|| 7u8))]), 1);
        assert_eq!(
            out,
            vec![JobOutcome::Done {
                label: "only".to_string(),
                value: 7
            }]
        );
        let none: Vec<(String, Job<'_, u8>)> = vec![];
        assert!(run_jobs(none, 4).is_empty());
    }

    #[test]
    fn panicking_job_fails_alone_and_siblings_complete() {
        let jobs = labelled::<u32>(vec![
            ("ok-a", Box::new(|| 1)),
            ("boom", Box::new(|| panic!("synthetic failure {}", 41 + 1))),
            ("ok-b", Box::new(|| 3)),
        ]);
        let out = run_jobs(jobs, 2);
        assert_eq!(out.len(), 3);
        assert_eq!(
            out[0],
            JobOutcome::Done {
                label: "ok-a".to_string(),
                value: 1
            }
        );
        match &out[1] {
            JobOutcome::Failed { label, reason } => {
                assert_eq!(label, "boom");
                assert!(reason.contains("synthetic failure 42"), "{reason}");
                assert!(reason.contains("experiments.rs"), "location in {reason}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(
            out[2],
            JobOutcome::Done {
                label: "ok-b".to_string(),
                value: 3
            }
        );
    }

    #[test]
    fn run_cells_turns_panics_into_failed_rows() {
        let opts = CliOptions {
            threads: 2,
            resume: false,
            ..Default::default()
        };
        let jobs: Vec<(String, CellJob<'_>)> = vec![
            (
                "good".to_string(),
                Box::new(|_sink: &Arc<dyn TelemetrySink>| PrfReport {
                    recall: 1.0,
                    precision: 1.0,
                    f: 1.0,
                }),
            ),
            (
                "bad".to_string(),
                Box::new(|_sink: &Arc<dyn TelemetrySink>| -> PrfReport { panic!("cell exploded") }),
            ),
        ];
        let rows = run_cells("unit/panic", &opts, jobs);
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].is_failed());
        assert!(rows[1].is_failed());
        assert!(
            rows[1]
                .error
                .as_deref()
                .unwrap_or("")
                .contains("cell exploded"),
            "{:?}",
            rows[1].error
        );
    }

    #[test]
    fn run_cells_resumes_from_checkpoints() {
        let dir = std::env::temp_dir().join(format!("pnr_cells_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opts = CliOptions {
            out_dir: dir.to_string_lossy().to_string(),
            threads: 2,
            resume: true,
            ..Default::default()
        };
        let report = PrfReport {
            recall: 0.5,
            precision: 0.5,
            f: 0.5,
        };
        let first = run_cells(
            "unit/resume",
            &opts,
            vec![(
                "m".to_string(),
                Box::new(move |_sink: &Arc<dyn TelemetrySink>| report) as CellJob<'_>,
            )],
        );
        assert!(!first[0].is_failed());
        // Second invocation must come from the checkpoint: a job that
        // would panic is never executed.
        let second = run_cells(
            "unit/resume",
            &opts,
            vec![(
                "m".to_string(),
                Box::new(|_sink: &Arc<dyn TelemetrySink>| -> PrfReport {
                    panic!("must not re-run")
                }) as CellJob<'_>,
            )],
        );
        assert!(!second[0].is_failed(), "{:?}", second[0].error);
        assert_eq!(second[0].f, 0.5);
        // With resume off the panicking job does run, and fails.
        let no_resume = CliOptions {
            resume: false,
            ..opts.clone()
        };
        let third = run_cells(
            "unit/resume",
            &no_resume,
            vec![(
                "m".to_string(),
                Box::new(|_sink: &Arc<dyn TelemetrySink>| -> PrfReport { panic!("must re-run") })
                    as CellJob<'_>,
            )],
        );
        assert!(third[0].is_failed());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn run_cells_exports_telemetry_keyed_by_fingerprint() {
        use pnr_telemetry::Counter;
        let dir = std::env::temp_dir().join(format!("pnr_cells_tel_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opts = CliOptions {
            out_dir: dir.to_string_lossy().to_string(),
            threads: 2,
            resume: true,
            telemetry: true,
            ..Default::default()
        };
        let rows = run_cells(
            "unit/telemetry",
            &opts,
            vec![(
                "m".to_string(),
                Box::new(|sink: &Arc<dyn TelemetrySink>| {
                    // cells see an enabled sink under --telemetry
                    assert!(sink.enabled());
                    sink.add(Counter::ConditionsEvaluated, 9);
                    PrfReport {
                        recall: 1.0,
                        precision: 1.0,
                        f: 1.0,
                    }
                }) as CellJob<'_>,
            )],
        );
        assert!(!rows[0].is_failed());
        let key = CellKey {
            experiment: "unit/telemetry".to_string(),
            method: "m".to_string(),
            scale: opts.scale,
            seed: opts.seed,
        };
        let path = crate::telemetry_out::telemetry_path(&opts.out_dir, &key);
        let text = std::fs::read_to_string(&path).expect("telemetry file written");
        assert!(text.lines().next().unwrap_or("").contains("unit/telemetry"));
        assert!(text.contains("conditions_evaluated"));
        // a resumed run serves the checkpoint and leaves the file alone
        std::fs::remove_file(&path).expect("delete telemetry");
        let resumed = run_cells(
            "unit/telemetry",
            &opts,
            vec![(
                "m".to_string(),
                Box::new(|_sink: &Arc<dyn TelemetrySink>| -> PrfReport {
                    panic!("must come from checkpoint")
                }) as CellJob<'_>,
            )],
        );
        assert!(!resumed[0].is_failed());
        assert!(!path.exists(), "checkpointed cell must not re-export");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn categorical_names_cover_table_3() {
        let names = categorical_dataset_names();
        assert_eq!(names.len(), 10);
        assert_eq!(names[0], "coa1");
        assert_eq!(names[9], "coad4");
        for n in &names {
            assert!(categorical_config(n).is_some(), "{n} must resolve");
        }
    }

    #[test]
    fn categorical_config_rejects_unknown_names_without_panicking() {
        for bad in ["nope", "coa0", "coa7", "coad5", "coadx", "coa", "kdd"] {
            assert!(categorical_config(bad).is_none(), "{bad} must not resolve");
        }
    }

    #[test]
    fn kdd_sizes_scale() {
        let opts = CliOptions {
            scale: 0.1,
            ..Default::default()
        };
        let (tr, te) = kdd_sizes(&opts);
        assert_eq!(tr, 49_402);
        assert_eq!(te, 31_103);
    }

    #[test]
    fn table6_smoke_runs_at_tiny_scale() {
        let out = table6(&tiny_opts());
        assert_eq!(out.len(), 2);
        for exp in &out {
            assert_eq!(exp.rows.len(), 3);
            assert!(!exp.any_failed(), "{:?}", exp.rows);
        }
    }

    #[test]
    fn rp_rn_grid_smoke() {
        let out = rp_rn_grid(&tiny_opts(), "probe", &[0.95], &[0.9, 0.995], true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rows.len(), 2);
        assert!(out[0].id.contains(".P1"));
    }
}
