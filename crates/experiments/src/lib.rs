//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `table*`/`figure*` binary in this crate builds the experiment's
//! datasets from [`pnr_synth`] / [`pnr_kddsim`], runs the competing
//! classifiers through a common [`Method`] interface, and prints rows in
//! the paper's format (recall %, precision %, F). Results are also written
//! as JSON for the `EXPERIMENTS.md` record.
//!
//! Scale: the paper trains on 500 000 records. Every binary accepts
//! `--scale <f>` (default 0.2) to shrink the datasets proportionally while
//! preserving the 0.3% target rarity, and `--seed <n>` for the generator.
//! The qualitative shape — who wins, where methods collapse — is stable
//! across scales; absolute numbers move a little.

pub mod artifact_out;
pub mod checkpoint;
pub mod cli;
pub mod experiments;
pub mod methods;
pub mod paper;
pub mod report;
pub mod telemetry_out;

pub use artifact_out::{artifact_path, save_pnrule_artifact};
pub use checkpoint::{CellKey, Checkpoint};
pub use cli::CliOptions;
pub use experiments::{categorical_config, run_cells, run_jobs, CellJob, Job, JobOutcome};
pub use methods::{
    run_method, run_method_with_sink, run_pnrule_best, run_pnrule_best_model_with_sink,
    run_pnrule_best_with_sink, BestPnrule, Method,
};
pub use report::{
    format_experiment, print_experiment, run_status, write_json, ExperimentResult, ResultRow,
};
