//! Result records: paper-format text tables plus JSON for EXPERIMENTS.md.

use pnr_metrics::{format_prf_table, PrfReport, PrfRow};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One labelled result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultRow {
    /// Row label (classifier, possibly suffixed with a configuration).
    pub label: String,
    /// Recall in [0,1].
    pub recall: f64,
    /// Precision in [0,1].
    pub precision: f64,
    /// F-measure in [0,1].
    pub f: f64,
}

impl ResultRow {
    /// Builds a row from a report.
    pub fn new(label: impl Into<String>, rep: PrfReport) -> Self {
        ResultRow {
            label: label.into(),
            recall: rep.recall,
            precision: rep.precision,
            f: rep.f,
        }
    }

    fn to_prf_row(&self) -> PrfRow {
        PrfRow::new(
            self.label.clone(),
            PrfReport {
                recall: self.recall,
                precision: self.precision,
                f: self.f,
            },
        )
    }
}

/// One experiment (one table section): a title and its rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"table1/nsyn3"`.
    pub id: String,
    /// Free-form description (dataset parameters, scale, seed).
    pub description: String,
    /// The rows.
    pub rows: Vec<ResultRow>,
}

impl ExperimentResult {
    /// Creates an empty experiment record.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        ExperimentResult {
            id: id.into(),
            description: description.into(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn push(&mut self, label: impl Into<String>, rep: PrfReport) {
        self.rows.push(ResultRow::new(label, rep));
    }
}

/// Prints an experiment in the paper's row format.
pub fn print_experiment(exp: &ExperimentResult) {
    let rows: Vec<PrfRow> = exp.rows.iter().map(ResultRow::to_prf_row).collect();
    let title = format!("== {} ==\n{}", exp.id, exp.description);
    print!("{}", format_prf_table(&title, &rows));
    println!();
}

/// Writes experiments as pretty JSON under `dir` (created if needed), one
/// file per invocation: `<name>.json`.
pub fn write_json(
    dir: impl AsRef<Path>,
    name: &str,
    experiments: &[ExperimentResult],
) -> std::io::Result<std::path::PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(experiments).expect("serializable results");
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(f: f64) -> PrfReport {
        PrfReport {
            recall: f,
            precision: f,
            f,
        }
    }

    #[test]
    fn experiment_accumulates_rows() {
        let mut e = ExperimentResult::new("t", "demo");
        e.push("A", rep(0.5));
        e.push("B", rep(0.9));
        assert_eq!(e.rows.len(), 2);
        assert_eq!(e.rows[1].label, "B");
    }

    #[test]
    fn json_round_trip_via_file() {
        let mut e = ExperimentResult::new("table9/demo", "tiny");
        e.push("PNrule", rep(0.75));
        let dir = std::env::temp_dir().join("pnr_experiments_test");
        let path = write_json(&dir, "unit", &[e]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<ExperimentResult> = serde_json::from_str(&text).unwrap();
        assert_eq!(back[0].id, "table9/demo");
        assert_eq!(back[0].rows[0].f, 0.75);
        std::fs::remove_file(path).ok();
    }
}
