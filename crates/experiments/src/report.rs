//! Result records: paper-format text tables plus JSON for EXPERIMENTS.md.
//!
//! A row is either a completed (method, dataset) cell with its metrics or
//! a **failed** cell carrying the panic/error reason. Failed cells render
//! as `FAILED(<reason>)` in the text table, serialize alongside completed
//! rows in the JSON record, and drive the binary's exit status (see
//! [`run_status`]) — one bad cell no longer erases its siblings' results.

use pnr_metrics::{format_prf_row, PrfReport, PrfRow};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One labelled result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultRow {
    /// Row label (classifier, possibly suffixed with a configuration).
    pub label: String,
    /// Recall in [0,1] (0 for failed cells).
    pub recall: f64,
    /// Precision in [0,1] (0 for failed cells).
    pub precision: f64,
    /// F-measure in [0,1] (0 for failed cells).
    pub f: f64,
    /// Failure reason when the cell's job panicked or errored; `None` for
    /// a completed cell. Absent in JSON written before this field existed.
    #[serde(default)]
    pub error: Option<String>,
}

impl ResultRow {
    /// Builds a completed row from a report.
    pub fn new(label: impl Into<String>, rep: PrfReport) -> Self {
        ResultRow {
            label: label.into(),
            recall: rep.recall,
            precision: rep.precision,
            f: rep.f,
            error: None,
        }
    }

    /// Builds a failed row carrying the failure reason.
    pub fn failed(label: impl Into<String>, reason: impl Into<String>) -> Self {
        ResultRow {
            label: label.into(),
            recall: 0.0,
            precision: 0.0,
            f: 0.0,
            error: Some(reason.into()),
        }
    }

    /// True when the cell failed instead of completing.
    pub fn is_failed(&self) -> bool {
        self.error.is_some()
    }

    /// The metrics as a [`PrfReport`] (zeros for failed cells).
    pub fn report(&self) -> PrfReport {
        PrfReport {
            recall: self.recall,
            precision: self.precision,
            f: self.f,
        }
    }

    fn to_prf_row(&self) -> PrfRow {
        PrfRow::new(self.label.clone(), self.report())
    }
}

/// One experiment (one table section): a title and its rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"table1/nsyn3"`.
    pub id: String,
    /// Free-form description (dataset parameters, scale, seed).
    pub description: String,
    /// The rows.
    pub rows: Vec<ResultRow>,
}

impl ExperimentResult {
    /// Creates an empty experiment record.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        ExperimentResult {
            id: id.into(),
            description: description.into(),
            rows: Vec::new(),
        }
    }

    /// Adds a completed row.
    pub fn push(&mut self, label: impl Into<String>, rep: PrfReport) {
        self.rows.push(ResultRow::new(label, rep));
    }

    /// Adds a pre-built row (completed or failed).
    pub fn push_row(&mut self, row: ResultRow) {
        self.rows.push(row);
    }

    /// Adds a failed row.
    pub fn push_failed(&mut self, label: impl Into<String>, reason: impl Into<String>) {
        self.rows.push(ResultRow::failed(label, reason));
    }

    /// True when any row in this experiment failed.
    pub fn any_failed(&self) -> bool {
        self.rows.iter().any(ResultRow::is_failed)
    }
}

/// Renders an experiment in the paper's row format; failed cells print as
/// `FAILED(<reason>)` and are excluded from the best-F marker.
pub fn format_experiment(exp: &ExperimentResult) -> String {
    let mut out = format!(
        "== {} ==\n{}\n{:<12} {:>6} {:>6}  {:>6}\n",
        exp.id, exp.description, "model", "Rec", "Prec", "F"
    );
    let best = exp
        .rows
        .iter()
        .filter(|r| !r.is_failed())
        .map(|r| r.f)
        .fold(f64::NEG_INFINITY, f64::max);
    let completed = exp.rows.iter().filter(|r| !r.is_failed()).count();
    for row in &exp.rows {
        match &row.error {
            Some(reason) => out.push_str(&format!("{:<12} FAILED({reason})", row.label)),
            None => {
                out.push_str(&format_prf_row(&row.to_prf_row()));
                if completed > 1 && (row.f - best).abs() < 1e-12 {
                    out.push_str(" *");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Prints an experiment in the paper's row format.
pub fn print_experiment(exp: &ExperimentResult) {
    print!("{}", format_experiment(exp));
    println!();
}

/// Process exit code for a completed run: `0` when every cell completed,
/// `1` when any cell failed — reported only after every other cell ran,
/// so one pathological fit cannot erase its siblings' results.
pub fn run_status(experiments: &[ExperimentResult]) -> i32 {
    let failed: usize = experiments
        .iter()
        .map(|e| e.rows.iter().filter(|r| r.is_failed()).count())
        .sum();
    if failed > 0 {
        eprintln!("{failed} cell(s) FAILED; see the table output above");
        1
    } else {
        0
    }
}

/// Writes experiments as pretty JSON under `dir` (created if needed), one
/// file per invocation: `<name>.json`.
pub fn write_json(
    dir: impl AsRef<Path>,
    name: &str,
    experiments: &[ExperimentResult],
) -> std::io::Result<std::path::PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(experiments).expect("serializable results");
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(f: f64) -> PrfReport {
        PrfReport {
            recall: f,
            precision: f,
            f,
        }
    }

    #[test]
    fn experiment_accumulates_rows() {
        let mut e = ExperimentResult::new("t", "demo");
        e.push("A", rep(0.5));
        e.push("B", rep(0.9));
        assert_eq!(e.rows.len(), 2);
        assert_eq!(e.rows[1].label, "B");
    }

    #[test]
    fn json_round_trip_via_file() {
        let mut e = ExperimentResult::new("table9/demo", "tiny");
        e.push("PNrule", rep(0.75));
        let dir = std::env::temp_dir().join("pnr_experiments_test");
        let path = write_json(&dir, "unit", &[e]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<ExperimentResult> = serde_json::from_str(&text).unwrap();
        assert_eq!(back[0].id, "table9/demo");
        assert_eq!(back[0].rows[0].f, 0.75);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn failed_rows_render_and_round_trip() {
        let mut e = ExperimentResult::new("table9/demo", "tiny");
        e.push("RIPPER", rep(0.8));
        e.push_failed("PNrule", "panicked: boom");
        assert!(e.any_failed());
        let text = format_experiment(&e);
        assert!(text.contains("FAILED(panicked: boom)"), "{text}");
        assert!(text.contains("RIPPER"), "{text}");

        let json = serde_json::to_string(&e.rows).unwrap();
        let back: Vec<ResultRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(back[1].error.as_deref(), Some("panicked: boom"));
        assert!(!back[0].is_failed());
    }

    #[test]
    fn rows_without_error_field_deserialize() {
        // JSON written before the `error` field existed must still load.
        let legacy = r#"{"label":"PNrule","recall":0.9,"precision":0.8,"f":0.85}"#;
        let row: ResultRow = serde_json::from_str(legacy).unwrap();
        assert_eq!(row.label, "PNrule");
        assert!(row.error.is_none());
        assert!(!row.is_failed());
    }

    #[test]
    fn run_status_reflects_failures() {
        let mut ok = ExperimentResult::new("a", "");
        ok.push("X", rep(0.5));
        assert_eq!(run_status(&[ok.clone()]), 0);
        let mut bad = ExperimentResult::new("b", "");
        bad.push_failed("Y", "panicked");
        assert_eq!(run_status(&[ok, bad]), 1);
        assert_eq!(run_status(&[]), 0);
    }

    #[test]
    fn best_marker_skips_failed_cells() {
        let mut e = ExperimentResult::new("t", "");
        e.push("A", rep(0.5));
        e.push("B", rep(0.9));
        e.push_failed("C", "oom");
        let text = format_experiment(&e);
        // the best-F star goes to B, and C's zero metrics don't get one
        for line in text.lines() {
            if line.starts_with("B") {
                assert!(line.ends_with('*'), "{line}");
            }
            if line.starts_with("C") {
                assert!(line.contains("FAILED"), "{line}");
                assert!(!line.ends_with('*'), "{line}");
            }
        }
    }
}
