//! Saving experiment-winning models as loadable artifacts.
//!
//! Under `--save-model <dir>`, each experiment's best PNrule cell leaves
//! a [`ModelArtifact`] at `<dir>/<sanitized exp id>-PNrule.artifact`.
//! Saving follows the checkpoint-store convention: failures are reported
//! to stderr and never fail the cell — a full experiment run is worth
//! more than a persisted model. Cells served from checkpoints do not
//! re-run and therefore write no artifact.

use pnr_core::{FitReport, ModelArtifact, PnruleModel, PnruleParams};
use pnr_data::Schema;
use std::path::{Path, PathBuf};

/// Where the artifact for `exp_id`'s best PNrule cell lives under `dir`.
/// The experiment id is sanitized into a single path component (anything
/// outside `[A-Za-z0-9._-]` becomes `-`), so ids like
/// `table3/coa1` map to `table3-coa1-PNrule.artifact`.
pub fn artifact_path(dir: &str, exp_id: &str) -> PathBuf {
    let sanitized: String = exp_id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    Path::new(dir).join(format!("{sanitized}-PNrule.artifact"))
}

/// Persists the winning PNrule model of `exp_id` under `dir`. Errors are
/// printed to stderr, not returned: artifact persistence must never fail
/// an experiment cell.
pub fn save_pnrule_artifact(
    dir: &str,
    exp_id: &str,
    model: PnruleModel,
    params: PnruleParams,
    report: FitReport,
    schema: Schema,
) {
    let path = artifact_path(dir, exp_id);
    match ModelArtifact::new(model, params, report, schema) {
        Ok(artifact) => {
            if let Err(e) = artifact.save(&path) {
                eprintln!(
                    "warning: failed to save model artifact {}: {e}",
                    path.display()
                );
            }
        }
        Err(e) => {
            eprintln!("warning: model for {exp_id} failed artifact validation, not saved: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_path_sanitizes_experiment_ids() {
        let p = artifact_path("out/models", "table3/coa1");
        assert_eq!(
            p,
            Path::new("out/models").join("table3-coa1-PNrule.artifact")
        );
        let p = artifact_path("m", "figure1/nsyn3 tr=0.2 nr=4");
        assert_eq!(
            p,
            Path::new("m").join("figure1-nsyn3-tr-0.2-nr-4-PNrule.artifact")
        );
    }
}
