//! Minimal argument parsing shared by the experiment binaries.

/// Options every experiment binary accepts:
/// `--scale <f>` (default 0.2), `--seed <n>` (default 20010521 — the
/// paper's conference date), `--out <dir>` (default `results`),
/// `--threads <n>` (default: available parallelism),
/// `--resume` / `--no-resume` (default: resume) controlling whether
/// completed cells are loaded from `<out>/checkpoints/`, and
/// `--telemetry` / `--no-telemetry` (default: off) controlling whether
/// each freshly run cell writes an NDJSON fit trace under
/// `<out>/telemetry/`.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Dataset scale factor relative to the paper's 500k/250k records.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for JSON results.
    pub out_dir: String,
    /// Worker threads for independent (dataset, method) runs.
    pub threads: usize,
    /// Load completed cells from checkpoints and persist new ones.
    pub resume: bool,
    /// Record per-cell fit telemetry (spans + counters) and export it as
    /// NDJSON next to the checkpoints, keyed by the same fingerprint.
    pub telemetry: bool,
    /// Directory to save the best PNrule cell of each experiment as a
    /// loadable model artifact (`--save-model <dir>`; off by default).
    pub save_model: Option<String>,
}

/// Usage text printed when argument parsing fails.
pub const USAGE: &str = "usage: <binary> [--scale <f>] [--seed <n>] [--out <dir>] \
[--threads <n>] [--resume | --no-resume] [--telemetry | --no-telemetry] \
[--save-model <dir>]";

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: 0.2,
            seed: 20_010_521,
            out_dir: "results".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            resume: true,
            telemetry: false,
            save_model: None,
        }
    }
}

impl CliOptions {
    /// Parses `std::env::args`-style arguments. Malformed input is an
    /// `Err` with a one-line explanation, never a panic.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = CliOptions::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--scale" => {
                    let raw = value("--scale")?;
                    opts.scale = raw
                        .parse()
                        .map_err(|_| format!("--scale takes a float, got {raw:?}"))?;
                    if opts.scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                        return Err("--scale must be positive".to_string());
                    }
                }
                "--seed" => {
                    let raw = value("--seed")?;
                    opts.seed = raw
                        .parse()
                        .map_err(|_| format!("--seed takes an integer, got {raw:?}"))?;
                }
                "--out" => opts.out_dir = value("--out")?,
                "--threads" => {
                    let raw = value("--threads")?;
                    opts.threads = raw
                        .parse()
                        .map_err(|_| format!("--threads takes an integer, got {raw:?}"))?;
                    if opts.threads == 0 {
                        return Err("--threads must be positive".to_string());
                    }
                }
                "--resume" => opts.resume = true,
                "--no-resume" => opts.resume = false,
                "--telemetry" => opts.telemetry = true,
                "--no-telemetry" => opts.telemetry = false,
                "--save-model" => opts.save_model = Some(value("--save-model")?),
                other => {
                    return Err(format!(
                        "unknown argument {other}; expected --scale / --seed / --out / \
                         --threads / --resume / --no-resume / --telemetry / --no-telemetry / \
                         --save-model"
                    ))
                }
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments (skipping the binary name). On
    /// malformed input, prints the error and usage to stderr and exits
    /// with status 2 — the conventional "bad invocation" code, distinct
    /// from 1 which reports failed experiment cells.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(problem) => {
                eprintln!("error: {problem}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_empty() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, 0.2);
        assert_eq!(o.out_dir, "results");
        assert!(o.resume, "resume defaults on");
        assert!(!o.telemetry, "telemetry defaults off");
        assert!(o.save_model.is_none(), "model saving defaults off");
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--scale",
            "1.0",
            "--seed",
            "42",
            "--out",
            "r2",
            "--threads",
            "3",
            "--no-resume",
            "--telemetry",
            "--save-model",
            "r2/models",
        ])
        .unwrap();
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.seed, 42);
        assert_eq!(o.out_dir, "r2");
        assert_eq!(o.threads, 3);
        assert!(!o.resume);
        assert!(o.telemetry);
        assert_eq!(o.save_model.as_deref(), Some("r2/models"));
        let o = parse(&["--no-resume", "--resume"]).unwrap();
        assert!(o.resume, "last flag wins");
        let o = parse(&["--telemetry", "--no-telemetry"]).unwrap();
        assert!(!o.telemetry, "last flag wins");
    }

    #[test]
    fn rejects_unknown_flag() {
        let err = parse(&["--nope"]).unwrap_err();
        assert!(err.contains("unknown argument --nope"), "{err}");
    }

    #[test]
    fn rejects_nonpositive_scale() {
        let err = parse(&["--scale", "0"]).unwrap_err();
        assert!(err.contains("--scale must be positive"), "{err}");
        let err = parse(&["--scale", "NaN"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn rejects_malformed_values_without_panicking() {
        assert!(parse(&["--scale", "wide"]).is_err());
        assert!(parse(&["--seed", "-1"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--save-model"])
            .unwrap_err()
            .contains("requires a value"));
    }
}
