//! Minimal argument parsing shared by the experiment binaries.

/// Options every experiment binary accepts:
/// `--scale <f>` (default 0.2), `--seed <n>` (default 20010521 — the
/// paper's conference date), `--out <dir>` (default `results`),
/// `--threads <n>` (default: available parallelism).
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Dataset scale factor relative to the paper's 500k/250k records.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for JSON results.
    pub out_dir: String,
    /// Worker threads for independent (dataset, method) runs.
    pub threads: usize,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: 0.2,
            seed: 20_010_521,
            out_dir: "results".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

impl CliOptions {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    /// Panics with a usage message on malformed input.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = CliOptions::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--scale" => {
                    opts.scale = value("--scale").parse().expect("--scale takes a float");
                    assert!(opts.scale > 0.0, "--scale must be positive");
                }
                "--seed" => {
                    opts.seed = value("--seed").parse().expect("--seed takes an integer");
                }
                "--out" => opts.out_dir = value("--out"),
                "--threads" => {
                    opts.threads = value("--threads")
                        .parse()
                        .expect("--threads takes an integer");
                    assert!(opts.threads > 0, "--threads must be positive");
                }
                other => panic!(
                    "unknown argument {other}; expected --scale / --seed / --out / --threads"
                ),
            }
        }
        opts
    }

    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CliOptions {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_empty() {
        let o = parse(&[]);
        assert_eq!(o.scale, 0.2);
        assert_eq!(o.out_dir, "results");
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--scale",
            "1.0",
            "--seed",
            "42",
            "--out",
            "r2",
            "--threads",
            "3",
        ]);
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.seed, 42);
        assert_eq!(o.out_dir, "r2");
        assert_eq!(o.threads, 3);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown_flag() {
        parse(&["--nope"]);
    }

    #[test]
    #[should_panic(expected = "--scale must be positive")]
    fn rejects_nonpositive_scale() {
        parse(&["--scale", "0"]);
    }
}
