//! Per-cell NDJSON telemetry export, written next to the checkpoint
//! store under `<out_dir>/telemetry/` and keyed by the same FNV-1a cell
//! fingerprint as [`crate::checkpoint`] — a cell's result and its trace
//! share a file stem across the two directories.
//!
//! Each `<fingerprint>.ndjson` file starts with one meta line naming the
//! cell (experiment, method, scale, seed, fingerprint), followed by the
//! recording sink's counter and span records. Files are written
//! atomically (temp file + rename); IO problems are reported to stderr
//! and never fail the run — telemetry is observation, not a correctness
//! requirement.

use crate::checkpoint::CellKey;
use pnr_telemetry::RecordingSink;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// The first line of every cell telemetry file: which cell this trace
/// belongs to, in the checkpoint store's own vocabulary.
#[derive(Debug, Serialize)]
struct CellMeta {
    record: String,
    experiment: String,
    method: String,
    scale: f64,
    seed: u64,
    fingerprint: String,
}

/// The telemetry file path for one cell:
/// `<out_dir>/telemetry/<fingerprint>.ndjson`.
pub fn telemetry_path(out_dir: impl AsRef<Path>, key: &CellKey) -> PathBuf {
    out_dir
        .as_ref()
        .join("telemetry")
        .join(format!("{:016x}.ndjson", key.fingerprint()))
}

/// Writes one cell's recorded telemetry as NDJSON, atomically. Errors go
/// to stderr; like a failed checkpoint write, they never fail the run.
pub fn write_cell(out_dir: impl AsRef<Path>, key: &CellKey, sink: &RecordingSink) {
    let meta = CellMeta {
        record: "cell".to_owned(),
        experiment: key.experiment.clone(),
        method: key.method.clone(),
        scale: key.scale,
        seed: key.seed,
        fingerprint: format!("{:016x}", key.fingerprint()),
    };
    let meta_line = match serde_json::to_string(&meta) {
        Ok(line) => line,
        Err(e) => {
            eprintln!("telemetry meta serialization failed: {e}");
            return;
        }
    };
    let mut text = meta_line;
    text.push('\n');
    for line in sink.ndjson_lines() {
        text.push_str(&line);
        text.push('\n');
    }
    let path = telemetry_path(out_dir, key);
    let tmp = path.with_extension("tmp");
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let write = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&tmp, text))
        .and_then(|()| std::fs::rename(&tmp, &path));
    if let Err(e) = write {
        eprintln!("telemetry write failed for {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_telemetry::{Counter, SpanKind, TelemetrySink};

    fn key() -> CellKey {
        CellKey {
            experiment: "unit/telemetry".to_string(),
            method: "PNrule".to_string(),
            scale: 0.25,
            seed: 7,
        }
    }

    #[test]
    fn path_is_keyed_by_the_checkpoint_fingerprint() {
        let k = key();
        let path = telemetry_path("results", &k);
        assert_eq!(
            path,
            PathBuf::from("results")
                .join("telemetry")
                .join(format!("{:016x}.ndjson", k.fingerprint()))
        );
    }

    #[test]
    fn write_cell_emits_meta_then_records() {
        let dir = std::env::temp_dir().join(format!("pnr_tel_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let sink = RecordingSink::new();
        sink.add(Counter::ConditionsEvaluated, 42);
        sink.span_open(SpanKind::Fit, "fit");
        sink.span_close(SpanKind::Fit, 123);
        let k = key();
        write_cell(&dir, &k, &sink);
        let text = std::fs::read_to_string(telemetry_path(&dir, &k)).expect("file written");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "meta + counter + span: {lines:?}");
        assert!(
            lines[0].contains("\"record\":\"cell\"")
                && lines[0].contains("\"experiment\":\"unit/telemetry\"")
                && lines[0].contains(&format!("{:016x}", k.fingerprint())),
            "{}",
            lines[0]
        );
        assert!(
            lines.iter().any(|l| l.contains("conditions_evaluated")),
            "{text}"
        );
        assert!(
            lines.iter().any(|l| l.contains("\"kind\":\"fit\"")),
            "{text}"
        );
        // every line is standalone JSON
        for line in &lines {
            serde_json::parse(line).expect("valid JSON line");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
