//! The classifier variants compared in the paper, behind one interface.

use pnr_c45::{C45Learner, C45Params};
use pnr_core::{FitReport, PnruleLearner, PnruleModel, PnruleParams};
use pnr_data::{stratify_weights, Dataset};
use pnr_metrics::PrfReport;
use pnr_ripper::{RipperLearner, RipperParams};
use pnr_rules::evaluate_classifier;
use pnr_telemetry::TelemetrySink;
use std::sync::Arc;

/// A classifier variant, in the paper's notation:
///
/// * `C` — C4.5rules on the unit-weight training set;
/// * `Cte` — the C4.5 *tree* on the stratified training set (the paper
///   reports the tree for `-we` because rule generation from the huge
///   stratified trees took "unacceptable" time);
/// * `R` — RIPPER, `Re` — RIPPER on the stratified set;
/// * `P` — PNrule with explicit parameters.
#[derive(Debug, Clone)]
pub enum Method {
    /// C4.5rules (`C`).
    C45Rules,
    /// C4.5 tree on the stratified training set (`Cte`).
    C45TreeWe,
    /// RIPPER (`R`).
    Ripper,
    /// RIPPER on the stratified training set (`Re`).
    RipperWe,
    /// PNrule (`P`).
    Pnrule(PnruleParams),
}

impl Method {
    /// The paper's row label for this variant.
    pub fn label(&self) -> &'static str {
        match self {
            Method::C45Rules => "C4.5rules",
            Method::C45TreeWe => "C4.5-we",
            Method::Ripper => "RIPPER",
            Method::RipperWe => "RIPPER-we",
            Method::Pnrule(_) => "PNrule",
        }
    }
}

/// Trains the variant on `train` and evaluates recall/precision/F for
/// `target` on `test`.
pub fn run_method(method: &Method, train: &Dataset, test: &Dataset, target: u32) -> PrfReport {
    run_method_with_sink(method, train, test, target, &pnr_telemetry::noop())
}

/// [`run_method`] with an explicit telemetry sink attached to the
/// learner. The sink is write-only observation: the report is identical
/// whatever sink is passed.
pub fn run_method_with_sink(
    method: &Method,
    train: &Dataset,
    test: &Dataset,
    target: u32,
    sink: &Arc<dyn TelemetrySink>,
) -> PrfReport {
    match method {
        Method::C45Rules => {
            let model = C45Learner::new(C45Params::default())
                .with_sink(sink.clone())
                .fit_rules(train);
            evaluate_classifier(&model.binary_view(target), test, target).report()
        }
        Method::C45TreeWe => {
            let weighted = train.with_weights(stratify_weights(train, target));
            let model = C45Learner::new(C45Params::default())
                .with_sink(sink.clone())
                .fit_tree(&weighted);
            evaluate_classifier(&model.binary_view(target), test, target).report()
        }
        Method::Ripper => {
            let model = RipperLearner::new(RipperParams::default())
                .with_sink(sink.clone())
                .fit(train, target);
            evaluate_classifier(&model, test, target).report()
        }
        Method::RipperWe => {
            let weighted = train.with_weights(stratify_weights(train, target));
            let model = RipperLearner::new(RipperParams::default())
                .with_sink(sink.clone())
                .fit(&weighted, target);
            evaluate_classifier(&model, test, target).report()
        }
        Method::Pnrule(params) => {
            let model = PnruleLearner::new(params.clone())
                .with_sink(sink.clone())
                .fit(train, target);
            evaluate_classifier(&model, test, target).report()
        }
    }
}

/// The paper's PNrule protocol for the synthetic studies (section 3.1):
/// try the four `(rp, rn)` combinations `{0.95, 0.99} × {0.7, 0.95}` with
/// otherwise conservative settings, and keep the best test F.
pub fn pnrule_variant_grid() -> Vec<PnruleParams> {
    let mut grid = Vec::new();
    for rp in [0.95, 0.99] {
        for rn in [0.7, 0.95] {
            grid.push(PnruleParams::with_recall_limits(rp, rn));
        }
    }
    grid
}

/// Runs every PNrule variant in `grid` and returns the best report (by F)
/// with the winning parameters.
pub fn run_pnrule_best(
    train: &Dataset,
    test: &Dataset,
    target: u32,
    grid: &[PnruleParams],
) -> (PrfReport, PnruleParams) {
    run_pnrule_best_with_sink(train, test, target, grid, &pnr_telemetry::noop())
}

/// [`run_pnrule_best`] with an explicit telemetry sink: each grid
/// member's fit reports into the same sink (one `fit` span per variant).
pub fn run_pnrule_best_with_sink(
    train: &Dataset,
    test: &Dataset,
    target: u32,
    grid: &[PnruleParams],
    sink: &Arc<dyn TelemetrySink>,
) -> (PrfReport, PnruleParams) {
    let best = run_pnrule_best_model_with_sink(train, test, target, grid, sink);
    (best.report, best.params)
}

/// The winning cell of a PNrule parameter-grid sweep, with everything an
/// artifact needs: the trained model and its fit diagnostics, not just
/// the evaluation numbers.
#[derive(Debug, Clone)]
pub struct BestPnrule {
    /// Test-set recall/precision/F of the winner.
    pub report: PrfReport,
    /// The winning parameters.
    pub params: PnruleParams,
    /// The winning trained model.
    pub model: PnruleModel,
    /// Diagnostics of the winning fit.
    pub fit_report: FitReport,
}

/// [`run_pnrule_best_with_sink`] keeping the winning *model* (first best
/// F wins ties, identical to the report-only path) so callers can
/// persist it as a [`pnr_core::ModelArtifact`].
pub fn run_pnrule_best_model_with_sink(
    train: &Dataset,
    test: &Dataset,
    target: u32,
    grid: &[PnruleParams],
    sink: &Arc<dyn TelemetrySink>,
) -> BestPnrule {
    assert!(!grid.is_empty(), "need at least one variant");
    let mut best: Option<BestPnrule> = None;
    for params in grid {
        let (model, fit_report) = PnruleLearner::new(params.clone())
            .with_sink(sink.clone())
            .fit_with_report(train, target);
        let report = evaluate_classifier(&model, test, target).report();
        if best.as_ref().is_none_or(|b| report.f > b.report.f) {
            best = Some(BestPnrule {
                report,
                params: params.clone(),
                model,
                fit_report,
            });
        }
    }
    best.expect("non-empty grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_synth::{numeric::NumericModelConfig, SynthScale};

    fn tiny_pair() -> (Dataset, Dataset) {
        let cfg = NumericModelConfig::nsyn(1);
        let scale = SynthScale {
            n_records: 4_000,
            target_frac: 0.01,
        };
        (
            pnr_synth::numeric::generate(&cfg, &scale, 1),
            pnr_synth::numeric::generate(&cfg, &scale, 2),
        )
    }

    #[test]
    fn all_methods_produce_reports() {
        let (train, test) = tiny_pair();
        let target = train.class_code("C").unwrap();
        for m in [
            Method::C45Rules,
            Method::C45TreeWe,
            Method::Ripper,
            Method::RipperWe,
            Method::Pnrule(PnruleParams::default()),
        ] {
            let rep = run_method(&m, &train, &test, target);
            assert!((0.0..=1.0).contains(&rep.f), "{} F={}", m.label(), rep.f);
        }
    }

    #[test]
    fn pnrule_grid_has_four_combos() {
        let grid = pnrule_variant_grid();
        assert_eq!(grid.len(), 4);
        // lint:allow(float-eq) — grid constants round-trip verbatim
        assert!(grid.iter().any(|p| p.rp == 0.99 && p.rn == 0.7));
    }

    #[test]
    fn best_variant_beats_or_ties_each_member() {
        let (train, test) = tiny_pair();
        let target = train.class_code("C").unwrap();
        let grid = vec![
            PnruleParams::with_recall_limits(0.95, 0.9),
            PnruleParams::with_recall_limits(0.99, 0.7),
        ];
        let (best, _) = run_pnrule_best(&train, &test, target, &grid);
        for p in &grid {
            let rep = run_method(&Method::Pnrule(p.clone()), &train, &test, target);
            assert!(best.f >= rep.f - 1e-12);
        }
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(Method::C45TreeWe.label(), "C4.5-we");
        assert_eq!(Method::RipperWe.label(), "RIPPER-we");
    }
}
