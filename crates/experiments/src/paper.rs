//! The paper's published numbers, keyed by experiment id and row label —
//! the reference column of `EXPERIMENTS.md`.
//!
//! Values are transcribed from the tables of Joshi, Agarwal & Kumar
//! (SIGMOD 2001). F-measures only: F is the paper's comparison metric, and
//! what the reproduction tracks is its *shape* across datasets and methods.

/// Returns the paper's F-measure for `(experiment_id, row_label)` when the
/// paper reports one.
pub fn paper_f(id: &str, label: &str) -> Option<f64> {
    // Table 1 (numerical-only datasets), columns: C4.5 (rules), C4.5-we,
    // RIPPER, RIPPER-we, PNrule.
    let table1: &[(&str, [f64; 5])] = &[
        ("nsyn1", [0.9845, 0.4498, 0.9796, 0.5182, 0.9892]),
        ("nsyn2", [0.9721, 0.4633, 0.9440, 0.5580, 0.9701]),
        ("nsyn3", [0.9792, 0.4455, 0.7096, 0.4659, 0.9728]),
        ("nsyn4", [0.9480, 0.4505, 0.4406, 0.5051, 0.9693]),
        ("nsyn5", [0.1249, 0.4479, 0.3730, 0.4532, 0.9607]),
        ("nsyn6", [0.1193, 0.4470, 0.1299, 0.4559, 0.9489]),
    ];
    // Figure 1 (nsyn3, tr × nr grid), rows: C, Cte, R, Re, P.
    let figure1: &[(&str, [f64; 5])] = &[
        ("tr=0.2 nr=0.2", [0.9792, 0.4455, 0.7096, 0.4659, 0.9728]),
        ("tr=0.2 nr=2", [0.9607, 0.1013, 0.8820, 0.1108, 0.9382]),
        ("tr=0.2 nr=4", [0.9585, 0.0801, 0.8440, 0.1360, 0.9721]),
        ("tr=2 nr=0.2", [0.8679, 0.4640, 0.5165, 0.4682, 0.9052]),
        ("tr=2 nr=2", [0.8686, 0.0882, 0.5088, 0.0849, 0.8670]),
        ("tr=2 nr=4", [0.8582, 0.0714, 0.6173, 0.0432, 0.8785]),
        ("tr=4 nr=0.2", [0.4586, 0.4518, 0.3714, 0.4659, 0.7978]),
        ("tr=4 nr=2", [0.6460, 0.0908, 0.0488, 0.0791, 0.7860]),
        ("tr=4 nr=4", [0.5604, 0.0613, 0.1335, 0.0447, 0.7715]),
    ];
    // Table 2 (nsyn5 grid), rows: Cte, Re, P.
    let table2: &[(&str, [f64; 3])] = &[
        ("tr=0.2 nr=0.2", [0.4479, 0.4532, 0.9607]),
        ("tr=0.2 nr=4", [0.4654, 0.4673, 0.7294]),
        ("tr=4 nr=0.2", [0.0499, 0.0507, 0.9493]),
        ("tr=4 nr=4", [0.0469, 0.0413, 0.5710]),
    ];
    // Table 3 (categorical-only), rows: C4.5rules, RIPPER, PNrule.
    let table3: &[(&str, [f64; 3])] = &[
        ("coa1", [0.9035, 0.2868, 0.8462]),
        ("coa2", [0.7725, 0.2892, 0.9083]),
        ("coa3", [0.6297, 0.2875, 0.8789]),
        ("coa4", [0.8386, 0.2321, 0.9195]),
        ("coa5", [0.5983, 0.2316, 0.8692]),
        ("coa6", [0.3685, 0.2326, 0.8323]),
        ("coad1", [0.1258, 0.1315, 0.7548]),
        ("coad2", [0.0060, 0.1325, 0.5758]),
        ("coad3", [0.0885, 0.0379, 0.7285]),
        ("coad4", [0.3454, 0.0377, 0.8377]),
    ];
    // Table 4 (syngen grid), rows: C, Re, P.
    let table4: &[(&str, [f64; 3])] = &[
        ("tr=0.2 nr=0.2", [0.4038, 0.2717, 0.8988]),
        ("tr=0.2 nr=4", [0.4085, 0.2586, 0.6596]),
        ("tr=4 nr=0.2", [0.4043, 0.0444, 0.8530]),
        ("tr=4 nr=4", [0.1722, 0.0450, 0.5013]),
    ];
    // Table 5 (proportion sweep on syngen tr=0.2 nr=0.2 and tr=4 nr=4),
    // rows: C4.5rules, RIPPER, PNrule.
    let table5: &[(&str, [f64; 3])] = &[
        ("tr=0.2 nr=0.2 ntc-frac=1", [0.4038, 0.2717, 0.8988]),
        ("tr=0.2 nr=0.2 ntc-frac=0.5", [0.5177, 0.4137, 0.9208]),
        ("tr=0.2 nr=0.2 ntc-frac=0.1", [0.7569, 0.7766, 0.9090]),
        ("tr=0.2 nr=0.2 ntc-frac=0.05", [0.8261, 0.8643, 0.8709]),
        ("tr=0.2 nr=0.2 ntc-frac=0.02", [0.9270, 0.9395, 0.9390]),
        ("tr=0.2 nr=0.2 ntc-frac=0.01", [0.9448, 0.9644, 0.9603]),
        ("tr=0.2 nr=0.2 ntc-frac=0.003", [0.9577, 0.9840, 0.9539]),
        ("tr=4 nr=4 ntc-frac=1", [0.1722, 0.0450, 0.5013]),
        ("tr=4 nr=4 ntc-frac=0.1", [0.5326, 0.5293, 0.6181]),
        ("tr=4 nr=4 ntc-frac=0.05", [0.6411, 0.6639, 0.6944]),
        ("tr=4 nr=4 ntc-frac=0.02", [0.6545, 0.7314, 0.7598]),
        ("tr=4 nr=4 ntc-frac=0.01", [0.7681, 0.7935, 0.8328]),
    ];
    // Table 6 (KDD'99), rows: C4.5rules, RIPPER, PNrule (old version).
    let table6: &[(&str, [f64; 3])] = &[
        ("probe", [0.7915, 0.7951, 0.8542]),
        ("r2l", [0.0993, 0.1512, 0.2252]),
    ];

    // Section 4 grids: best cells the paper highlights.
    // r2l (unrestricted): best .1531 at rp=0.995 rn=0.995.
    // r2l.P1: best .2299 at rp=0.95 rn=0.95.
    // probe: best .8041 at rp=0.95 (any rn).
    // probe.P1: best .8837 at rp=0.95 rn=0.9/0.995.
    let section4: &[(&str, &str, f64)] = &[
        ("section4/r2l rp=0.95", "rn=0.95", 0.1135),
        ("section4/r2l rp=0.95", "rn=0.995", 0.1135),
        ("section4/r2l rp=0.995", "rn=0.95", 0.1192),
        ("section4/r2l rp=0.995", "rn=0.995", 0.1531),
        ("section4/r2l.P1 rp=0.95", "rn=0.8", 0.1149),
        ("section4/r2l.P1 rp=0.95", "rn=0.9", 0.1138),
        ("section4/r2l.P1 rp=0.95", "rn=0.95", 0.2299),
        ("section4/r2l.P1 rp=0.95", "rn=0.995", 0.2252),
        ("section4/r2l.P1 rp=0.995", "rn=0.8", 0.1192),
        ("section4/r2l.P1 rp=0.995", "rn=0.9", 0.1519),
        ("section4/r2l.P1 rp=0.995", "rn=0.95", 0.1853),
        ("section4/r2l.P1 rp=0.995", "rn=0.995", 0.1887),
        ("section4/probe rp=0.95", "rn=0.8", 0.8041),
        ("section4/probe rp=0.95", "rn=0.95", 0.8041),
        ("section4/probe rp=0.95", "rn=0.995", 0.8041),
        ("section4/probe rp=0.995", "rn=0.8", 0.7980),
        ("section4/probe rp=0.995", "rn=0.95", 0.7636),
        ("section4/probe rp=0.995", "rn=0.995", 0.7891),
        ("section4/probe.P1 rp=0.95", "rn=0.9", 0.8837),
        ("section4/probe.P1 rp=0.95", "rn=0.995", 0.8837),
        ("section4/probe.P1 rp=0.995", "rn=0.9", 0.7980),
        ("section4/probe.P1 rp=0.995", "rn=0.995", 0.7980),
    ];

    let five = |labels: [&str; 5], values: &[f64; 5]| -> Option<f64> {
        labels.iter().position(|&l| l == label).map(|i| values[i])
    };
    let three = |labels: [&str; 3], values: &[f64; 3]| -> Option<f64> {
        labels.iter().position(|&l| l == label).map(|i| values[i])
    };

    if let Some(ds) = id.strip_prefix("table1/") {
        let (_, v) = table1.iter().find(|(name, _)| *name == ds)?;
        return five(["C4.5rules", "C4.5-we", "RIPPER", "RIPPER-we", "PNrule"], v);
    }
    if let Some(rest) = id.strip_prefix("figure1/nsyn3 ") {
        let (_, v) = figure1.iter().find(|(name, _)| *name == rest)?;
        return five(["C4.5rules", "C4.5-we", "RIPPER", "RIPPER-we", "PNrule"], v);
    }
    if let Some(rest) = id.strip_prefix("table2/nsyn5 ") {
        let (_, v) = table2.iter().find(|(name, _)| *name == rest)?;
        return three(["C4.5-we", "RIPPER-we", "PNrule"], v);
    }
    if let Some(ds) = id.strip_prefix("table3/") {
        let (_, v) = table3.iter().find(|(name, _)| *name == ds)?;
        return three(["C4.5rules", "RIPPER", "PNrule"], v);
    }
    if let Some(rest) = id.strip_prefix("table4/syngen ") {
        let (_, v) = table4.iter().find(|(name, _)| *name == rest)?;
        return three(["C4.5rules", "RIPPER-we", "PNrule"], v);
    }
    if let Some(rest) = id.strip_prefix("table5/syngen ") {
        let (_, v) = table5.iter().find(|(name, _)| *name == rest)?;
        return three(["C4.5rules", "RIPPER", "PNrule"], v);
    }
    if let Some(cls) = id.strip_prefix("table6/") {
        let (_, v) = table6.iter().find(|(name, _)| *name == cls)?;
        return three(["C4.5rules", "RIPPER", "PNrule"], v);
    }
    section4
        .iter()
        .find(|(gid, glabel, _)| *gid == id && *glabel == label)
        .map(|(_, _, f)| *f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lookup() {
        assert_eq!(paper_f("table1/nsyn3", "PNrule"), Some(0.9728));
        assert_eq!(paper_f("table1/nsyn5", "C4.5rules"), Some(0.1249));
        assert_eq!(paper_f("table1/nsyn9", "PNrule"), None);
        assert_eq!(paper_f("table1/nsyn1", "nope"), None);
    }

    #[test]
    fn figure1_and_grids_lookup() {
        assert_eq!(paper_f("figure1/nsyn3 tr=4 nr=4", "PNrule"), Some(0.7715));
        assert_eq!(paper_f("table2/nsyn5 tr=4 nr=0.2", "PNrule"), Some(0.9493));
        assert_eq!(paper_f("section4/probe.P1 rp=0.95", "rn=0.9"), Some(0.8837));
    }

    #[test]
    fn table3_to_6_lookup() {
        assert_eq!(paper_f("table3/coad2", "C4.5rules"), Some(0.0060));
        assert_eq!(
            paper_f("table4/syngen tr=0.2 nr=0.2", "PNrule"),
            Some(0.8988)
        );
        assert_eq!(
            paper_f("table5/syngen tr=0.2 nr=0.2 ntc-frac=0.01", "RIPPER"),
            Some(0.9644)
        );
        assert_eq!(paper_f("table6/r2l", "PNrule"), Some(0.2252));
    }
}
