//! End-to-end fault-tolerance checks on the experiment pipeline:
//! a panicking cell leaves its siblings intact, an interrupted run
//! resumed from checkpoints matches an uninterrupted run exactly, and
//! resume re-runs precisely the cells whose checkpoints are missing.

use pnr_experiments::experiments::{run_cells, CellJob};
use pnr_experiments::{format_experiment, run_status, CliOptions, ExperimentResult, ResultRow};
use pnr_metrics::PrfReport;
use pnr_telemetry::TelemetrySink;
use std::sync::{Arc, Mutex};

fn opts_in(dir: &std::path::Path, resume: bool) -> CliOptions {
    CliOptions {
        out_dir: dir.to_string_lossy().to_string(),
        threads: 2,
        resume,
        ..Default::default()
    }
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pnr_ft_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn report_for(label: &str) -> PrfReport {
    // distinct, deterministic metrics per label
    let f = 0.5 + (label.len() as f64) / 100.0;
    PrfReport {
        recall: f,
        precision: f - 0.1,
        f,
    }
}

const LABELS: [&str; 4] = ["C4.5rules", "RIPPER", "PNrule", "PNrule-tuned"];

fn good_jobs() -> Vec<(String, CellJob<'static>)> {
    LABELS
        .iter()
        .map(|&l| {
            (
                l.to_string(),
                Box::new(move |_: &Arc<dyn TelemetrySink>| report_for(l)) as CellJob<'static>,
            )
        })
        .collect()
}

fn assert_rows_equal(a: &[ResultRow], b: &[ResultRow]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.recall.to_bits(), y.recall.to_bits());
        assert_eq!(x.precision.to_bits(), y.precision.to_bits());
        assert_eq!(x.f.to_bits(), y.f.to_bits());
        assert_eq!(x.error, y.error);
    }
}

#[test]
fn panicking_cell_completes_the_table_with_failed_sibling() {
    let dir = temp_dir("panic_table");
    let opts = opts_in(&dir, false);
    let jobs: Vec<(String, CellJob<'_>)> = vec![
        (
            "C4.5rules".to_string(),
            Box::new(|_: &Arc<dyn TelemetrySink>| report_for("C4.5rules")),
        ),
        (
            "RIPPER".to_string(),
            Box::new(|_: &Arc<dyn TelemetrySink>| -> PrfReport {
                panic!("index out of bounds: injected")
            }),
        ),
        (
            "PNrule".to_string(),
            Box::new(|_: &Arc<dyn TelemetrySink>| report_for("PNrule")),
        ),
    ];
    let rows = run_cells("ft/table", &opts, jobs);

    let mut exp = ExperimentResult::new("ft/table", "fault-tolerance demo");
    for row in rows {
        exp.push_row(row);
    }
    assert_eq!(exp.rows.len(), 3, "every cell reported");
    assert!(!exp.rows[0].is_failed());
    assert!(exp.rows[1].is_failed());
    assert!(!exp.rows[2].is_failed());
    assert!(
        exp.rows[1]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("injected"),
        "{:?}",
        exp.rows[1].error
    );
    // siblings keep their real metrics
    assert_eq!(exp.rows[2].f.to_bits(), report_for("PNrule").f.to_bits());

    let rendered = format_experiment(&exp);
    assert!(rendered.contains("FAILED("), "{rendered}");
    assert!(rendered.contains("C4.5rules"), "{rendered}");

    // the run reports failure only after completing every cell
    assert_eq!(run_status(&[exp]), 1);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn interrupted_run_resumes_to_identical_results() {
    // Reference: one uninterrupted run.
    let ref_dir = temp_dir("resume_ref");
    let reference = run_cells("ft/resume", &opts_in(&ref_dir, true), good_jobs());
    assert!(reference.iter().all(|r| !r.is_failed()));

    // Interrupted run: the last two cells die before checkpointing —
    // the same observable state a kill -9 leaves behind (completed
    // cells persisted, in-flight cells lost).
    let dir = temp_dir("resume_kill");
    let opts = opts_in(&dir, true);
    let first_pass: Vec<(String, CellJob<'_>)> = LABELS
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let job: CellJob<'_> = if i < 2 {
                Box::new(move |_: &Arc<dyn TelemetrySink>| report_for(l))
            } else {
                Box::new(|_: &Arc<dyn TelemetrySink>| -> PrfReport { panic!("simulated kill") })
            };
            (l.to_string(), job)
        })
        .collect();
    let partial = run_cells("ft/resume", &opts, first_pass);
    assert_eq!(partial.iter().filter(|r| r.is_failed()).count(), 2);

    // Re-invocation: completed cells must come from checkpoints (their
    // jobs are sentinels that panic if executed), lost cells re-run.
    let executed: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let second_pass: Vec<(String, CellJob<'_>)> = LABELS
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let executed = &executed;
            let job: CellJob<'_> = if i < 2 {
                Box::new(|_: &Arc<dyn TelemetrySink>| -> PrfReport {
                    panic!("checkpointed cell must not re-run")
                })
            } else {
                Box::new(move |_: &Arc<dyn TelemetrySink>| {
                    executed
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(l.to_string());
                    report_for(l)
                })
            };
            (l.to_string(), job)
        })
        .collect();
    let resumed = run_cells("ft/resume", &opts, second_pass);
    assert_rows_equal(&reference, &resumed);
    let mut ran = executed
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    ran.sort();
    assert_eq!(ran, vec!["PNrule".to_string(), "PNrule-tuned".to_string()]);

    std::fs::remove_dir_all(ref_dir).ok();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn deleting_one_checkpoint_reruns_only_that_cell() {
    let dir = temp_dir("partial");
    let opts = opts_in(&dir, true);
    let full = run_cells("ft/partial", &opts, good_jobs());
    assert!(full.iter().all(|r| !r.is_failed()));
    let ckpt_dir = dir.join("checkpoints");
    let mut files: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .expect("checkpoint dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    assert_eq!(files.len(), LABELS.len());
    std::fs::remove_file(&files[0]).expect("delete one checkpoint");

    let executed: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let jobs: Vec<(String, CellJob<'_>)> = LABELS
        .iter()
        .map(|&l| {
            let executed = &executed;
            (
                l.to_string(),
                Box::new(move |_: &Arc<dyn TelemetrySink>| {
                    executed
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(l.to_string());
                    report_for(l)
                }) as CellJob<'_>,
            )
        })
        .collect();
    let again = run_cells("ft/partial", &opts, jobs);
    assert_rows_equal(&full, &again);
    let ran = executed
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert_eq!(ran.len(), 1, "exactly the deleted cell re-ran: {ran:?}");
    std::fs::remove_dir_all(dir).ok();
}
