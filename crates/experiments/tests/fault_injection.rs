//! Degenerate-input fault injection: every learner must survive a full
//! `fit` + `predict` round on pathological datasets — empty, single-class,
//! constant-attribute, zero-total-weight — returning a valid (possibly
//! trivial) model, never panicking.

use pnr_c45::C45Learner;
use pnr_core::{PnruleLearner, PnruleParams};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_ripper::RipperLearner;
use pnr_rules::BinaryClassifier;

/// Builds a two-attribute dataset from (x, k, class, weight) tuples.
fn dataset(rows: &[(f64, &str, &str, f64)]) -> Dataset {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("k", AttrType::Categorical);
    for (x, k, class, w) in rows {
        b.push_row(&[Value::num(*x), Value::cat(k)], class, *w)
            .expect("valid row");
    }
    b.finish()
}

fn empty() -> Dataset {
    dataset(&[])
}

fn single_class() -> Dataset {
    dataset(&[
        (1.0, "a", "only", 1.0),
        (2.0, "b", "only", 1.0),
        (3.0, "a", "only", 1.0),
        (4.0, "b", "only", 1.0),
    ])
}

fn constant_attributes() -> Dataset {
    // both attributes constant: no condition can ever separate the classes
    dataset(&[
        (5.0, "same", "rare", 1.0),
        (5.0, "same", "rest", 1.0),
        (5.0, "same", "rest", 1.0),
        (5.0, "same", "rest", 1.0),
    ])
}

fn zero_total_weight() -> Dataset {
    dataset(&[
        (1.0, "a", "rare", 0.0),
        (2.0, "b", "rest", 0.0),
        (3.0, "a", "rest", 0.0),
    ])
}

/// Every degenerate dataset with the target code to use for binary fits.
/// For the empty dataset no class exists, so code 0 is deliberately dangling.
fn degenerate_cases() -> Vec<(&'static str, Dataset, u32)> {
    let single = single_class();
    let single_target = single.class_code("only").expect("class exists");
    let constant = constant_attributes();
    let constant_target = constant.class_code("rare").expect("class exists");
    let zero = zero_total_weight();
    let zero_target = zero.class_code("rare").expect("class exists");
    vec![
        ("empty", empty(), 0),
        ("single-class", single, single_target),
        ("constant-attributes", constant, constant_target),
        ("zero-total-weight", zero, zero_target),
    ]
}

/// Predicting over every row (plus on a normal probe dataset) must work on
/// whatever model the fit produced.
fn assert_scoreable(name: &str, model: &impl BinaryClassifier, data: &Dataset) {
    for row in 0..data.n_rows() {
        let _ = model.predict(data, row);
    }
    let probe = dataset(&[(1.0, "a", "rare", 1.0), (9.0, "b", "rest", 1.0)]);
    for row in 0..probe.n_rows() {
        let _ = model.predict(&probe, row);
    }
    let _ = name;
}

#[test]
fn pnrule_survives_degenerate_inputs() {
    for (name, data, target) in degenerate_cases() {
        let (model, report) =
            PnruleLearner::new(PnruleParams::default()).fit_with_report(&data, target);
        assert_scoreable(name, &model, &data);
        // a degenerate fit still yields a coherent report
        assert!(
            report.p_covered_recall.is_finite() || data.n_rows() == 0,
            "{name}: non-finite recall in report"
        );
    }
}

#[test]
fn ripper_survives_degenerate_inputs() {
    for (name, data, target) in degenerate_cases() {
        let model = RipperLearner::default().fit(&data, target);
        assert_scoreable(name, &model, &data);
    }
}

#[test]
fn c45_survives_degenerate_inputs() {
    for (name, data, target) in degenerate_cases() {
        let rules = C45Learner::default().fit_rules(&data);
        assert_scoreable(name, &rules.binary_view(target), &data);
        let tree = C45Learner::default().fit_tree(&data);
        assert_scoreable(name, &tree.binary_view(target), &data);
    }
}

#[test]
fn budgeted_fit_survives_degenerate_inputs() {
    use pnr_core::FitBudget;
    for (name, data, target) in degenerate_cases() {
        let params = PnruleParams {
            budget: FitBudget {
                max_rules: Some(1),
                max_candidates: Some(10),
                wall_clock_secs: None,
            },
            ..PnruleParams::default()
        };
        let (model, _report) = PnruleLearner::new(params).fit_with_report(&data, target);
        assert_scoreable(name, &model, &data);
    }
}
