//! End-to-end drift and corruption checks on the serving binaries:
//! `predict` never panics on drifted CSV, follows the unknown-value
//! policies exactly, reports counters matching the injected fault
//! counts, and refuses corrupted artifacts with a `ChecksumMismatch`
//! line and a non-zero exit; `inspect` and `kdd_csv` reject bad names
//! with exit code 2 and a list of valid spellings.

use pnr_core::{ModelArtifact, PnruleLearner, PnruleParams};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pnr_predict_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a tiny dos-vs-rest model on the KDD simulation and saves it as
/// an artifact under `dir`.
fn make_artifact(dir: &Path) -> PathBuf {
    let train = pnr_kddsim::generate_train(2_000, 7);
    let target = train.class_code("dos").unwrap();
    let params = PnruleParams::default();
    let (model, report) = PnruleLearner::new(params.clone()).fit_with_report(&train, target);
    let artifact = ModelArtifact::new(model, params, report, train.schema().clone()).unwrap();
    let path = dir.join("dos.artifact");
    artifact.save(&path).unwrap();
    path
}

fn run(bin: &str, args: &[&str]) -> Output {
    let exe = match bin {
        "predict" => env!("CARGO_BIN_EXE_predict"),
        "kdd_csv" => env!("CARGO_BIN_EXE_kdd_csv"),
        "inspect" => env!("CARGO_BIN_EXE_inspect"),
        other => panic!("unknown binary {other}"),
    };
    Command::new(exe).args(args).output().unwrap()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).to_string()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn predict_scores_a_clean_generated_csv() {
    let dir = temp_dir("clean");
    let artifact = make_artifact(&dir);
    let csv = dir.join("in.csv");
    let out = run(
        "kdd_csv",
        &[
            "--rows",
            "40",
            "--seed",
            "9",
            "--out",
            csv.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));

    let out = run(
        "predict",
        &[
            "--model",
            artifact.to_str().unwrap(),
            "--input",
            csv.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = stdout_of(&out);
    let records: Vec<&str> = stdout.lines().collect();
    assert_eq!(records.len(), 40, "one NDJSON object per record");
    for line in &records {
        assert!(line.contains("\"score\":"), "{line}");
        assert!(line.contains("\"decision\":"), "{line}");
    }
    let stderr = stderr_of(&out);
    assert!(stderr.contains("loaded artifact: format v1"), "{stderr}");
    // the generated file carries a trailing `class` column the model
    // never trained on — reconciliation must shrug it off
    assert!(stderr.contains("1 extra"), "{stderr}");
    assert!(stderr.contains("rows_scored=40"), "{stderr}");
    assert!(stderr.contains("rows_quarantined=0"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_tolerates_reordered_and_dropped_columns() {
    let dir = temp_dir("drift");
    let artifact = make_artifact(&dir);
    // Reorder columns and drop most of them; with `--missing default`
    // the absent attributes become unknown values, not an error.
    let csv = dir.join("drifted.csv");
    let out = run(
        "kdd_csv",
        &[
            "--rows",
            "25",
            "--seed",
            "11",
            "--columns",
            "service,src_bytes,class,count",
            "--out",
            csv.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));

    // Default (reject) missing-column policy: a typed SchemaMismatch,
    // exit 1, no panic.
    let out = run(
        "predict",
        &[
            "--model",
            artifact.to_str().unwrap(),
            "--input",
            csv.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("SchemaMismatch"),
        "{}",
        stderr_of(&out)
    );

    let out = run(
        "predict",
        &[
            "--model",
            artifact.to_str().unwrap(),
            "--input",
            csv.to_str().unwrap(),
            "--missing",
            "default",
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert_eq!(stdout_of(&out).lines().count(), 25);
    assert!(
        stderr_of(&out).contains("rows_scored=25"),
        "{}",
        stderr_of(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Patches field `column` of data row `row` (0-based) in CSV `text`.
fn patch_field(text: &str, row: usize, column: &str, value: &str) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let col = lines[0]
        .split(',')
        .position(|h| h == column)
        .unwrap_or_else(|| panic!("no column {column}"));
    let mut fields: Vec<&str> = lines[row + 1].split(',').collect();
    fields[col] = value;
    lines[row + 1] = fields.join(",");
    lines.join("\n") + "\n"
}

#[test]
fn predict_policies_pin_fault_behavior_and_counters() {
    let dir = temp_dir("policies");
    let artifact = make_artifact(&dir);
    let csv = dir.join("faults.csv");
    let out = run(
        "kdd_csv",
        &["--rows", "5", "--seed", "3", "--out", csv.to_str().unwrap()],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    // Inject a known fault census into the clean file: one unseen
    // category (row 1), one NaN numeric (row 2), one unparsable numeric
    // (row 3); rows 0 and 4 stay clean.
    let text = std::fs::read_to_string(&csv).unwrap();
    let text = patch_field(&text, 1, "service", "quic-v2");
    let text = patch_field(&text, 2, "src_bytes", "NaN");
    let text = patch_field(&text, 3, "src_bytes", "wide");
    std::fs::write(&csv, text).unwrap();
    let model = artifact.to_str().unwrap();
    let input = csv.to_str().unwrap();
    let base = ["--model", model, "--input", input];

    // condition-false (default): every parseable row scores; the
    // unparsable numeric is structurally quarantined.
    let out = run("predict", &base);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("rows_scored=4"), "{stderr}");
    assert!(stderr.contains("rows_quarantined=1"), "{stderr}");
    assert!(stderr.contains("unseen_category_hits=1"), "{stderr}");
    assert!(stderr.contains("nan_numeric_hits=1"), "{stderr}");
    let stdout = stdout_of(&out);
    assert_eq!(stdout.lines().count(), 5);
    assert!(
        stdout
            .lines()
            .nth(3)
            .unwrap()
            .contains("\"kind\":\"structural\""),
        "{stdout}"
    );

    // abstain: the faulted rows still count as scored but abstain.
    let out = run("predict", &[&base[..], &["--unknown", "abstain"]].concat());
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("rows_scored=4"), "{stderr}");
    assert!(stderr.contains("2 abstained"), "{stderr}");
    let stdout = stdout_of(&out);
    assert_eq!(
        stdout
            .lines()
            .filter(|l| l.contains("\"abstained\":true"))
            .count(),
        2,
        "{stdout}"
    );

    // reject: the faulted rows become typed per-record errors.
    let out = run("predict", &[&base[..], &["--unknown", "reject"]].concat());
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("rows_scored=2"), "{stderr}");
    assert!(stderr.contains("rows_quarantined=3"), "{stderr}");
    assert!(stderr.contains("3 not scored"), "{stderr}");
    let stdout = stdout_of(&out);
    assert_eq!(
        stdout
            .lines()
            .filter(|l| l.contains("\"kind\":\"unknown-rejected\""))
            .count(),
        2,
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_refuses_a_corrupted_artifact() {
    let dir = temp_dir("corrupt");
    let artifact = make_artifact(&dir);

    // the clean copy verifies...
    let out = run(
        "predict",
        &["--model", artifact.to_str().unwrap(), "--verify-only"],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));

    // ...the corrupted copy does not, with a greppable typed error
    let mut bytes = std::fs::read(&artifact).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    let corrupted = dir.join("corrupted.artifact");
    std::fs::write(&corrupted, &bytes).unwrap();
    let out = run(
        "predict",
        &["--model", corrupted.to_str().unwrap(), "--verify-only"],
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("ChecksumMismatch"),
        "{}",
        stderr_of(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_bad_invocation_exits_2() {
    let out = run("predict", &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("usage: predict"),
        "{}",
        stderr_of(&out)
    );
    let out = run("predict", &["--model", "m", "--unknown", "sometimes"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn inspect_lists_valid_names_on_unknown_dataset() {
    for name in ["nope", "kdd:ddos", "nsyn9", "coa7"] {
        let out = run("inspect", &[name, "--scale", "0.001"]);
        assert_eq!(out.status.code(), Some(2), "{name}");
        let stderr = stderr_of(&out);
        assert!(stderr.contains("nsyn1..nsyn6"), "{name}: {stderr}");
        assert!(stderr.contains("coad1..coad4"), "{name}: {stderr}");
    }
}

#[test]
fn kdd_csv_rejects_unknown_columns_with_the_valid_list() {
    let out = run("kdd_csv", &["--columns", "src_bytes,bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("bogus"), "{stderr}");
    assert!(stderr.contains("protocol_type"), "names listed: {stderr}");
    assert!(stderr.contains("class"), "{stderr}");
}

#[test]
fn kdd_csv_fault_flags_inject_deterministically_and_report_a_census() {
    let dir = temp_dir("faults");
    let csv = dir.join("hostile.csv");
    let args = [
        "--rows",
        "300",
        "--seed",
        "5",
        "--malformed-rate",
        "0.1",
        "--drift-rate",
        "0.1",
        "--out",
        csv.to_str().unwrap(),
    ];
    let out = run("kdd_csv", &args);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("fault census:"), "{stderr}");
    assert!(stderr.contains("clean)"), "{stderr}");

    // same seed, same rates: byte-identical hostile stream
    let csv2 = dir.join("hostile2.csv");
    let mut args2: Vec<&str> = args.to_vec();
    args2[9] = csv2.to_str().unwrap();
    let out = run("kdd_csv", &args2);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        std::fs::read(&csv).unwrap(),
        std::fs::read(&csv2).unwrap(),
        "fault injection is deterministic in the seed"
    );

    // the hostile stream drives the serving fault paths end to end:
    // predict survives it (exit 0) and quarantines/flags what the
    // injector wrote
    let artifact = make_artifact(&dir);
    let out = run(
        "predict",
        &[
            "--model",
            artifact.to_str().unwrap(),
            "--input",
            csv.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let report = stderr_of(&out);
    let quarantined = counter_value(&report, "rows_quarantined=");
    let unseen = counter_value(&report, "unseen_category_hits=");
    let non_finite = counter_value(&report, "nan_numeric_hits=");
    assert!(quarantined > 0, "malformed rows quarantined: {report}");
    assert!(unseen > 0, "drifted categories flagged: {report}");
    assert!(non_finite > 0, "non-finite numerics flagged: {report}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Extracts `prefix<digits>` from a serving report line.
fn counter_value(report: &str, prefix: &str) -> u64 {
    let start = report.find(prefix).map(|i| i + prefix.len());
    start
        .map(|s| {
            report[s..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|d| d.parse().ok())
        .unwrap_or_else(|| panic!("no {prefix} in report: {report}"))
}

#[test]
fn kdd_csv_rejects_out_of_range_fault_rates() {
    for args in [
        ["--malformed-rate", "1.5"],
        ["--malformed-rate", "-0.1"],
        ["--drift-rate", "2"],
        ["--drift-rate", "nope"],
    ] {
        let out = run("kdd_csv", &args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            stderr_of(&out).contains("usage: kdd_csv"),
            "{}",
            stderr_of(&out)
        );
    }
}
