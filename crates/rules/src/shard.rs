//! Row-shard planning and the unified worker-count policy.
//!
//! A [`ShardPlan`] splits a view's rows into contiguous chunks so condition
//! statistics — all of which are weight sums — can be accumulated per shard
//! and reduced in **shard-index order**. The plan is a pure function of
//! `(n_rows, requested shard count)`: it never consults the machine, so the
//! same request yields the same chunk boundaries (and therefore the same
//! float-addition grouping and the same learned model) on any host with any
//! worker count. The single-threaded reference scan
//! ([`crate::search::find_best_condition_sequential`]) accumulates through
//! the *same* plan, which is what makes the parallel scan bit-identical to
//! it by construction rather than by luck.
//!
//! [`worker_count`] is the one policy deciding how many worker threads a
//! search spawns. It unifies what used to be three divergent inline
//! computations in `find_best_condition` (the explicit-cap force-threaded
//! branch, the `parallel_min_cells == 0` forced-floor hack, and the default
//! size heuristic) and is shared by the attribute-level and row-sharded
//! paths — the task count it caps against is `attributes × shards`.

/// Rows per shard the automatic plan aims for. Chosen so a shard's partial
/// statistics stay cache-friendly while leaving enough shards to occupy a
/// large machine on KDD-scale (millions of rows) datasets.
pub const SHARD_TARGET_ROWS: usize = 65_536;

/// A deterministic split of `n_rows` contiguous rows into balanced chunks.
///
/// Shard `k` covers `[bounds(k).0, bounds(k).1)`; the first `n_rows %
/// n_shards` shards carry one extra row. Requests are clamped to
/// `[1, max(n_rows, 1)]` so no shard is ever empty (except the single shard
/// of an empty plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    n_rows: usize,
    n_shards: usize,
}

impl ShardPlan {
    /// Plan for `n_rows` with an explicit shard-count request; `None`
    /// keeps the whole view in one shard, which reproduces the unsharded
    /// scan's float arithmetic exactly. Sharding is therefore strictly
    /// opt-in: existing models cannot drift unless a caller asks for it.
    pub fn new(n_rows: usize, requested: Option<usize>) -> Self {
        let n_shards = match requested {
            Some(k) => k.clamp(1, n_rows.max(1)),
            None => 1,
        };
        ShardPlan { n_rows, n_shards }
    }

    /// Machine-independent automatic plan: `ceil(n_rows /`
    /// [`SHARD_TARGET_ROWS`]`)` shards, so views below the target keep a
    /// single shard (bit-identical to the unsharded scan) and larger ones
    /// scale with data size, never with core count.
    pub fn auto(n_rows: usize) -> Self {
        Self::new(n_rows, Some(n_rows.div_ceil(SHARD_TARGET_ROWS).max(1)))
    }

    /// Number of shards (always ≥ 1).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of rows the plan covers.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Half-open row range `[lo, hi)` of shard `shard`.
    ///
    /// # Panics
    /// Panics if `shard >= n_shards`.
    pub fn bounds(&self, shard: usize) -> (usize, usize) {
        assert!(shard < self.n_shards, "shard {shard} out of range");
        let base = self.n_rows / self.n_shards;
        let rem = self.n_rows % self.n_shards;
        let lo = shard * base + shard.min(rem);
        (lo, lo + base + usize::from(shard < rem))
    }

    /// Iterator over all shard ranges in shard-index order.
    pub fn ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n_shards).map(|k| self.bounds(k))
    }
}

/// The single worker-count policy for condition search.
///
/// Returns how many worker threads to spawn for a search of `tasks`
/// independent units (`attributes × shards`) over `cells = rows ×
/// attributes`, given `available` hardware threads. A return of `1` means
/// the caller must take the sequential reference scan. The three historical
/// behaviours are preserved exactly:
///
/// * `max_workers == Some(1)` (or `parallel` off, or a degenerate search
///   with at most one task) → sequential;
/// * `max_workers == Some(k > 1)` forces the threaded path even below the
///   cell threshold, with at least two workers so single-core hosts still
///   exercise the worker merge (thread-count sweeps rely on this);
/// * `max_workers == None` engages threads only when `cells` reaches
///   `parallel_min_cells`; an explicit `0` threshold keeps the historical
///   forced floor of two workers.
pub fn worker_count(
    parallel: bool,
    max_workers: Option<usize>,
    parallel_min_cells: usize,
    cells: usize,
    tasks: usize,
    available: usize,
) -> usize {
    if !parallel || tasks <= 1 {
        return 1;
    }
    match max_workers {
        Some(cap) if cap <= 1 => 1,
        Some(cap) => available.max(2).min(cap).min(tasks),
        None if cells >= parallel_min_cells => {
            let forced_floor = if parallel_min_cells == 0 { 2 } else { 1 };
            available.max(forced_floor).min(tasks)
        }
        None => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_one_shard() {
        let p = ShardPlan::new(1000, None);
        assert_eq!(p.n_shards(), 1);
        assert_eq!(p.bounds(0), (0, 1000));
    }

    #[test]
    fn ranges_partition_exactly_and_balance() {
        for n_rows in [0usize, 1, 7, 10, 65, 1000] {
            for k in [1usize, 2, 3, 4, 7, 16] {
                let p = ShardPlan::new(n_rows, Some(k));
                let mut expect_lo = 0;
                let mut sizes = Vec::new();
                for (lo, hi) in p.ranges() {
                    assert_eq!(lo, expect_lo, "contiguous at {n_rows}x{k}");
                    assert!(hi >= lo);
                    sizes.push(hi - lo);
                    expect_lo = hi;
                }
                assert_eq!(expect_lo, n_rows, "covers all rows at {n_rows}x{k}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced at {n_rows}x{k}: {sizes:?}");
                if n_rows > 0 {
                    assert!(*min >= 1, "no empty shard at {n_rows}x{k}");
                }
            }
        }
    }

    #[test]
    fn requests_are_clamped_to_rows() {
        assert_eq!(ShardPlan::new(3, Some(10)).n_shards(), 3);
        assert_eq!(ShardPlan::new(0, Some(10)).n_shards(), 1);
        assert_eq!(ShardPlan::new(5, Some(0)).n_shards(), 1);
    }

    #[test]
    fn auto_plan_tracks_the_target_rows() {
        assert_eq!(ShardPlan::auto(0).n_shards(), 1);
        assert_eq!(ShardPlan::auto(SHARD_TARGET_ROWS).n_shards(), 1);
        assert_eq!(ShardPlan::auto(SHARD_TARGET_ROWS + 1).n_shards(), 2);
        assert_eq!(ShardPlan::auto(10 * SHARD_TARGET_ROWS).n_shards(), 10);
    }

    #[test]
    fn plan_is_machine_independent() {
        // Pure in its inputs: repeated construction gives the same bounds.
        let a = ShardPlan::new(1_000_003, Some(17));
        let b = ShardPlan::new(1_000_003, Some(17));
        assert_eq!(a, b);
        assert_eq!(
            a.ranges().collect::<Vec<_>>(),
            b.ranges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sequential_cases_return_one_worker() {
        // parallel off
        assert_eq!(worker_count(false, None, 0, 1 << 20, 64, 8), 1);
        // degenerate search: at most one task
        assert_eq!(worker_count(true, None, 0, 1 << 20, 1, 8), 1);
        assert_eq!(worker_count(true, Some(8), 0, 1 << 20, 0, 8), 1);
        // explicit sequential cap
        assert_eq!(worker_count(true, Some(1), 0, 1 << 20, 64, 8), 1);
        assert_eq!(worker_count(true, Some(0), 0, 1 << 20, 64, 8), 1);
        // below the size threshold with no explicit cap
        assert_eq!(worker_count(true, None, 16 * 1024, 100, 64, 8), 1);
    }

    #[test]
    fn explicit_cap_forces_threads_below_the_threshold() {
        // Small search, cap 4, 8 hardware threads: threaded with 4 workers.
        assert_eq!(worker_count(true, Some(4), 16 * 1024, 100, 64, 8), 4);
        // A single-core host still gets the two-worker floor under a cap.
        assert_eq!(worker_count(true, Some(4), 16 * 1024, 100, 64, 1), 2);
        // Never more workers than tasks.
        assert_eq!(worker_count(true, Some(16), 0, 1 << 20, 3, 8), 3);
    }

    #[test]
    fn default_heuristic_uses_available_parallelism() {
        // Above threshold: one worker per hardware thread, capped by tasks.
        assert_eq!(worker_count(true, None, 16 * 1024, 1 << 20, 64, 8), 8);
        assert_eq!(worker_count(true, None, 16 * 1024, 1 << 20, 3, 8), 3);
        // Single core above the threshold stays sequential (floor 1).
        assert_eq!(worker_count(true, None, 16 * 1024, 1 << 20, 64, 1), 1);
        // A zero threshold forces the historical two-worker floor.
        assert_eq!(worker_count(true, None, 0, 0, 64, 1), 2);
    }
}
