//! A learner's working view of a binary task over a dataset.

use crate::condition::Condition;
use crate::rule::Rule;
use crate::stats::CovStats;
use crate::view_index::ViewIndex;
use pnr_data::{Dataset, RowSet};
use std::sync::Arc;

/// The state a sequential-covering learner threads through induction: the
/// dataset, the *current* row set (shrinking as rules cover records), a
/// per-row binary target flag and per-row weights.
///
/// `is_pos` and `weights` are indexed by **global** row id (they never
/// shrink), so restricting a view is just a row-set operation.
///
/// Each view also carries a lazily-built [`ViewIndex`] of per-attribute
/// sorted row projections; derived views ([`Self::restricted_to`],
/// [`Self::without`]) chain their index to the parent's so the condition
/// search stays proportional to the view, not the dataset.
#[derive(Debug, Clone)]
pub struct TaskView<'a> {
    /// The underlying dataset.
    pub data: &'a Dataset,
    /// Rows currently in play.
    pub rows: RowSet,
    /// `is_pos[row]` — whether the record is a target-class example.
    pub is_pos: &'a [bool],
    /// `weights[row]` — the record's training weight.
    pub weights: &'a [f64],
    index: Arc<ViewIndex>,
    pos_weight: f64,
    total_weight: f64,
}

impl<'a> TaskView<'a> {
    /// A view over every row of `data`.
    pub fn full(data: &'a Dataset, is_pos: &'a [bool], weights: &'a [f64]) -> Self {
        Self::over(data, RowSet::all(data.n_rows()), is_pos, weights)
    }

    /// A view over an explicit row set.
    pub fn over(data: &'a Dataset, rows: RowSet, is_pos: &'a [bool], weights: &'a [f64]) -> Self {
        assert_eq!(is_pos.len(), data.n_rows());
        assert_eq!(weights.len(), data.n_rows());
        let index = ViewIndex::root(rows.clone(), data.n_attrs());
        Self::assemble(data, rows, is_pos, weights, index)
    }

    fn assemble(
        data: &'a Dataset,
        rows: RowSet,
        is_pos: &'a [bool],
        weights: &'a [f64],
        index: Arc<ViewIndex>,
    ) -> Self {
        let mut pos_weight = 0.0;
        let mut total_weight = 0.0;
        for r in rows.iter() {
            let w = weights[r as usize];
            total_weight += w; // lint:allow(unordered-float-sum) — single pass in row-set order
            if is_pos[r as usize] {
                pos_weight += w; // lint:allow(unordered-float-sum) — same ordered pass
            }
        }
        TaskView {
            data,
            rows,
            is_pos,
            weights,
            index,
            pos_weight,
            total_weight,
        }
    }

    /// The view's rows sorted ascending by numeric attribute `attr`, built
    /// on first use from the nearest ancestor view's projection (or the
    /// dataset's global sort index for a root view) and cached.
    ///
    /// # Panics
    /// Panics if `attr` is categorical.
    pub fn projection(&self, attr: usize) -> Arc<Vec<u32>> {
        self.index.projection(self.data, attr)
    }

    /// True when this view's sorted projection for `attr` is already
    /// materialised, so the next [`projection`](Self::projection) call is
    /// a warm cache hit rather than a cold build. Telemetry-only: the
    /// answer never changes what the search computes.
    pub fn projection_is_warm(&self, attr: usize) -> bool {
        self.index.is_materialised(attr)
    }

    /// Total weight of target rows in the view.
    pub fn pos_weight(&self) -> f64 {
        self.pos_weight
    }

    /// Total weight of all rows in the view.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of rows in the view.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows remain.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Fraction of view weight that is target weight (the prior `p₀`).
    pub fn prior(&self) -> f64 {
        if pnr_data::weights::approx::is_zero(self.total_weight) {
            0.0
        } else {
            self.pos_weight / self.total_weight
        }
    }

    /// Rows of the view matched by `cond`.
    pub fn rows_matching(&self, cond: &Condition) -> RowSet {
        self.rows.filter(|r| cond.matches(self.data, r as usize))
    }

    /// Rows of the view matched by `rule`.
    pub fn rows_matching_rule(&self, rule: &Rule) -> RowSet {
        self.rows.filter(|r| rule.matches(self.data, r as usize))
    }

    /// Weighted coverage of `rule` over the view.
    pub fn coverage(&self, rule: &Rule) -> CovStats {
        let mut pos = 0.0;
        let mut total = 0.0;
        for r in self.rows.iter() {
            if rule.matches(self.data, r as usize) {
                let w = self.weights[r as usize];
                total += w; // lint:allow(unordered-float-sum) — single pass in row-set order
                if self.is_pos[r as usize] {
                    pos += w; // lint:allow(unordered-float-sum) — same ordered pass
                }
            }
        }
        CovStats::new(pos, total)
    }

    /// Weighted coverage of an explicit row set (assumed ⊆ view rows).
    pub fn coverage_of_rows(&self, rows: &RowSet) -> CovStats {
        let mut pos = 0.0;
        let mut total = 0.0;
        for r in rows.iter() {
            let w = self.weights[r as usize];
            total += w; // lint:allow(unordered-float-sum) — single pass in row-set order
            if self.is_pos[r as usize] {
                pos += w; // lint:allow(unordered-float-sum) — same ordered pass
            }
        }
        CovStats::new(pos, total)
    }

    /// A new view restricted to `rows` (assumed ⊆ view rows); its sorted
    /// projections derive from this view's.
    pub fn restricted_to(&self, rows: RowSet) -> TaskView<'a> {
        #[cfg(feature = "audit")]
        pnr_data::audit::check_subset(
            "TaskView::restricted_to",
            rows.as_slice(),
            self.rows.as_slice(),
        );
        let index = self.index.derive(rows.clone());
        TaskView::assemble(self.data, rows, self.is_pos, self.weights, index)
    }

    /// A new view with `rows` removed (sequential covering's "remove the
    /// examples supported by the rule"); its sorted projections derive from
    /// this view's.
    pub fn without(&self, rows: &RowSet) -> TaskView<'a> {
        let remaining = self.rows.difference(rows);
        let index = self.index.derive(remaining.clone());
        let child = TaskView::assemble(self.data, remaining, self.is_pos, self.weights, index);
        // Weight conservation: the child's masses plus the removed rows'
        // masses must reproduce this view's. Fires when `rows` was not a
        // subset of the view, or when a bookkeeping change breaks the sums.
        #[cfg(feature = "audit")]
        {
            let removed = self.coverage_of_rows(rows);
            pnr_data::audit::check_split_conservation(
                "TaskView::without",
                (self.pos_weight, self.total_weight),
                (child.pos_weight, child.total_weight),
                (removed.pos, removed.total),
            );
        }
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn setup() -> (Dataset, Vec<bool>, Vec<f64>) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..6 {
            let class = if i < 2 { "pos" } else { "neg" };
            b.push_row(&[Value::num(i as f64)], class, 1.0 + i as f64)
                .unwrap();
        }
        let d = b.finish();
        let pos = d.class_code("pos").unwrap();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == pos).collect();
        let weights = d.weights().to_vec();
        (d, is_pos, weights)
    }

    #[test]
    fn full_view_sums_weights() {
        let (d, is_pos, w) = setup();
        let v = TaskView::full(&d, &is_pos, &w);
        assert_eq!(v.total_weight(), 21.0); // 1+2+3+4+5+6
        assert_eq!(v.pos_weight(), 3.0); // rows 0,1 → 1+2
        assert!((v.prior() - 3.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_counts_matching_rows_only() {
        let (d, is_pos, w) = setup();
        let v = TaskView::full(&d, &is_pos, &w);
        let rule = Rule::new(vec![Condition::NumLe {
            attr: 0,
            value: 2.0,
        }]);
        let c = v.coverage(&rule);
        assert_eq!(c.pos, 3.0); // rows 0,1
        assert_eq!(c.total, 6.0); // rows 0,1,2
    }

    #[test]
    fn without_removes_rows_and_recomputes_sums() {
        let (d, is_pos, w) = setup();
        let v = TaskView::full(&d, &is_pos, &w);
        let covered = v.rows_matching(&Condition::NumLe {
            attr: 0,
            value: 0.0,
        });
        let v2 = v.without(&covered);
        assert_eq!(v2.n_rows(), 5);
        assert_eq!(v2.pos_weight(), 2.0);
        assert_eq!(v2.total_weight(), 20.0);
    }

    #[test]
    fn restricted_to_subset() {
        let (d, is_pos, w) = setup();
        let v = TaskView::full(&d, &is_pos, &w);
        let sub = v.restricted_to(RowSet::from_vec(vec![0, 5]));
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.pos_weight(), 1.0);
        assert_eq!(sub.total_weight(), 7.0);
    }

    #[test]
    fn empty_view_prior_is_zero() {
        let (d, is_pos, w) = setup();
        let v = TaskView::over(&d, RowSet::empty(), &is_pos, &w);
        assert!(v.is_empty());
        assert_eq!(v.prior(), 0.0);
    }

    #[test]
    fn rows_matching_rule_agrees_with_condition() {
        let (d, is_pos, w) = setup();
        let v = TaskView::full(&d, &is_pos, &w);
        let cond = Condition::NumGt {
            attr: 0,
            value: 3.0,
        };
        let rule = Rule::new(vec![cond.clone()]);
        assert_eq!(v.rows_matching(&cond), v.rows_matching_rule(&rule));
    }
}
