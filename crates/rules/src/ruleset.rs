//! Ordered rule sets with first-match semantics.

use crate::rule::Rule;
use pnr_data::{Dataset, Schema};
use serde::{Deserialize, Serialize};

/// An ordered list of rules, ranked by significance (discovery order in the
/// PNrule phases). Classification applies rules in rank order and accepts
/// the first that matches.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Builds from a ranked list.
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        RuleSet { rules }
    }

    /// Appends a rule at the lowest rank.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The ranked rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Index of the first rule matching `row`, or `None`.
    pub fn first_match(&self, data: &Dataset, row: usize) -> Option<usize> {
        self.rules.iter().position(|r| r.matches(data, row))
    }

    /// Whether any rule matches `row`.
    pub fn any_match(&self, data: &Dataset, row: usize) -> bool {
        self.first_match(data, row).is_some()
    }

    /// Index of the first rule whose conditions all hold against fallible
    /// value lookups, or `None`. Unknown values (a `None` lookup) never
    /// satisfy a condition — the serving path's drift-tolerant first-match.
    pub fn first_match_lookup<N, C>(&self, num: N, cat: C) -> Option<usize>
    where
        N: Fn(usize) -> Option<f64>,
        C: Fn(usize) -> Option<u32>,
    {
        self.rules.iter().position(|r| r.matches_lookup(&num, &cat))
    }

    /// Removes the rule at `index` and returns it.
    pub fn remove(&mut self, index: usize) -> Rule {
        self.rules.remove(index)
    }

    /// Replaces the rule at `index`.
    pub fn replace(&mut self, index: usize, rule: Rule) {
        self.rules[index] = rule;
    }

    /// Multi-line pretty form with one rule per line, rank-prefixed.
    pub fn display_lines(&self, schema: &Schema) -> String {
        let mut s = String::new();
        for (i, r) in self.rules.iter().enumerate() {
            s.push_str(&format!("[{i}] {}\n", r.display(schema)));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn data() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for x in [1.0, 5.0, 9.0] {
            b.push_row(&[Value::num(x)], "c", 1.0).unwrap();
        }
        b.finish()
    }

    fn le(v: f64) -> Rule {
        Rule::new(vec![Condition::NumLe { attr: 0, value: v }])
    }

    #[test]
    fn first_match_respects_rank_order() {
        let d = data();
        let rs = RuleSet::from_rules(vec![le(2.0), le(6.0), le(10.0)]);
        assert_eq!(rs.first_match(&d, 0), Some(0)); // x=1 matches rule 0 first
        assert_eq!(rs.first_match(&d, 1), Some(1)); // x=5 skips rule 0
        assert_eq!(rs.first_match(&d, 2), Some(2));
    }

    #[test]
    fn no_match_returns_none() {
        let d = data();
        let rs = RuleSet::from_rules(vec![le(1.5)]);
        assert_eq!(rs.first_match(&d, 2), None);
        assert!(!rs.any_match(&d, 2));
        assert!(rs.any_match(&d, 0));
    }

    #[test]
    fn first_match_lookup_mirrors_first_match_and_skips_unknowns() {
        let d = data();
        let rs = RuleSet::from_rules(vec![le(1.5), le(6.0)]);
        for row in 0..d.n_rows() {
            assert_eq!(
                rs.first_match_lookup(|a| Some(d.num(a, row)), |a| Some(d.cat(a, row))),
                rs.first_match(&d, row),
                "row {row}"
            );
        }
        // an unknown numeric value satisfies no rule at all
        assert_eq!(rs.first_match_lookup(|_| None, |_| None), None);
    }

    #[test]
    fn push_remove_replace() {
        let mut rs = RuleSet::new();
        assert!(rs.is_empty());
        rs.push(le(1.0));
        rs.push(le(2.0));
        assert_eq!(rs.len(), 2);
        let removed = rs.remove(0);
        assert_eq!(removed, le(1.0));
        rs.replace(0, le(3.0));
        assert_eq!(rs.rules()[0], le(3.0));
    }

    #[test]
    fn display_lines_ranks_rules() {
        let d = data();
        let rs = RuleSet::from_rules(vec![le(2.0), le(6.0)]);
        let s = rs.display_lines(d.schema());
        assert!(s.contains("[0] x <= 2.0"));
        assert!(s.contains("[1] x <= 6.0"));
    }
}
