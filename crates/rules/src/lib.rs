//! Rule machinery shared by PNrule and the baseline learners.
//!
//! This crate defines:
//!
//! * [`Condition`] — atomic tests on one attribute: categorical equality,
//!   numeric one-sided thresholds, and the paper's explicit **range**
//!   condition `lo < A ≤ hi`;
//! * [`Rule`] — a conjunction of conditions — and ordered [`RuleSet`]s with
//!   first-match semantics;
//! * [`CompiledRuleSet`] — a rule set lowered into an attribute-indexed
//!   predicate program (dispatch tables + breakpoint arrays + rule
//!   bitsets) whose first-match answers are bit-identical to the
//!   interpreter's at a fraction of the per-row cost;
//! * weighted rule-evaluation statistics ([`stats`]): Z-number (the PNrule
//!   default), FOIL gain (RIPPER's growth metric), entropy gain, gain ratio,
//!   gini gain, χ² and Laplace accuracy, selectable through [`EvalMetric`];
//! * [`TaskView`] — a learner's working view of a dataset (current rows,
//!   per-row binary target flags, weights);
//! * the greedy best-condition [`search`], including the two-scan range
//!   finder described in section 2.2 of the paper — view-proportional via
//!   per-view sorted projections ([`ViewIndex`]) and parallel across
//!   attributes with a deterministic, bit-identical merge;
//! * the [`BinaryClassifier`] trait every learner's model implements.
//!
//! # Example: find the best single condition on a toy task
//!
//! ```
//! use pnr_data::{DatasetBuilder, AttrType, Value};
//! use pnr_rules::{TaskView, EvalMetric, search::find_best_condition, SearchOptions};
//!
//! let mut b = DatasetBuilder::new();
//! b.add_attribute("x", AttrType::Numeric);
//! for i in 0..10 {
//!     let class = if (3..5).contains(&i) { "pos" } else { "neg" };
//!     b.push_row(&[Value::num(i as f64)], class, 1.0).unwrap();
//! }
//! let data = b.finish();
//! let pos = data.class_code("pos").unwrap();
//! let is_pos: Vec<bool> = (0..data.n_rows()).map(|r| data.label(r) == pos).collect();
//! let view = TaskView::full(&data, &is_pos, data.weights());
//! let best = find_best_condition(&view, EvalMetric::ZNumber, &SearchOptions::default()).unwrap();
//! // the positives live in x ∈ {3,4}: a range condition isolates them
//! assert_eq!(best.stats.pos, 2.0);
//! assert_eq!(best.stats.total, 2.0);
//! ```

pub mod budget;
pub mod classifier;
pub mod compiled;
pub mod condition;
pub mod mdl;
pub mod rule;
pub mod ruleset;
pub mod search;
pub mod shard;
pub mod stats;
pub mod task;
pub mod view_index;

pub use budget::{BudgetTracker, FitBudget};
pub use classifier::{evaluate_classifier, score_curve, BinaryClassifier, ConstantClassifier};
pub use compiled::{CompileError, CompiledMatcher, CompiledRuleSet};
pub use condition::Condition;
pub use rule::Rule;
pub use ruleset::RuleSet;
pub use search::{find_best_condition, CandidateCondition, SearchOptions};
pub use shard::{worker_count, ShardPlan, SHARD_TARGET_ROWS};
pub use stats::{CovStats, EvalMetric};
pub use task::TaskView;
pub use view_index::ViewIndex;
