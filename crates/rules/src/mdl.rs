//! Minimum-description-length accounting for rule sets.
//!
//! Both RIPPER's stopping/deletion criterion and PNrule's N-stage stopping
//! ("N-rules are added until the new rule increases the description length
//! within some limit of the minimum value obtained so far [5]") price a rule
//! set as *theory bits* (the cost of transmitting the rules) plus *data
//! bits* (the cost of transmitting the exceptions — the examples the theory
//! misclassifies). Theory bits follow Cohen (ICML'95): a rule with `k` of
//! `n` possible conditions costs `½·(log₂k + 2log₂log₂k + S(n,k,k/n))`
//! bits. Exception bits code each side of the prediction at its observed
//! error frequency with the `subset_dl` binomial scheme.

use pnr_data::{Column, Dataset};

/// Number of distinct candidate conditions the search space offers on
/// `data`: one per categorical value, and two one-sided thresholds per
/// distinct numeric value. Used as the `n_possible` input to
/// [`rule_theory_dl`].
pub fn count_possible_conditions(data: &Dataset) -> f64 {
    let mut n = 0.0;
    for attr in 0..data.n_attrs() {
        match data.column(attr) {
            // lint:allow(unordered-float-sum) — integer-valued counts, exact in f64
            Column::Cat(_) => n += data.schema().attr(attr).dict.len() as f64,
            Column::Num(_) => {
                let sorted = data.sort_index(attr);
                let mut distinct = 0usize;
                let mut last = f64::NAN;
                for &r in sorted {
                    let v = data.num(attr, r as usize);
                    if v != last {
                        distinct += 1;
                        last = v;
                    }
                }
                // lint:allow(unordered-float-sum) — integer-valued counts, exact in f64
                n += 2.0 * distinct as f64;
            }
        }
    }
    n.max(1.0)
}

/// Bits to identify a `k`-element subset of `n` elements when each element
/// is included independently with probability `p`:
/// `−k·log₂p − (n−k)·log₂(1−p)`.
pub fn subset_dl(n: f64, k: f64, p: f64) -> f64 {
    debug_assert!(k >= 0.0 && n + 1e-9 >= k, "k={k} n={n}");
    let mut bits = 0.0;
    if k > 0.0 {
        if p <= 0.0 {
            return f64::INFINITY;
        }
        bits -= k * p.log2();
    }
    if n - k > 0.0 {
        if p >= 1.0 {
            return f64::INFINITY;
        }
        bits -= (n - k) * (1.0 - p).log2();
    }
    bits
}

/// Theory cost in bits of one rule with `k` conditions drawn from
/// `n_possible` candidate conditions. The ½ factor is Cohen's correction
/// for redundancy among attribute tests.
pub fn rule_theory_dl(n_possible: f64, k: f64) -> f64 {
    if k <= 0.0 {
        return 0.0;
    }
    let n = n_possible.max(k).max(2.0);
    let mut tdl = k.log2().max(0.0);
    if k > 1.0 {
        let lk = k.log2();
        if lk > 1.0 {
            tdl += 2.0 * lk.log2();
        }
    }
    tdl += subset_dl(n, k, k / n);
    0.5 * tdl
}

/// Data (exception) cost in bits for a theory that covers `cover` weight of
/// examples with `fp` covered-but-negative weight, and leaves `uncover`
/// weight uncovered of which `fn_` is positive.
///
/// Exceptions on each side are coded at their observed frequency —
/// `n·H(k/n)` bits plus `log₂(n+1)` to transmit the count — rather than
/// Cohen's `expErr`-based split. The observed-frequency form is monotone in
/// the error masses on both sides, which matters in PNrule's N-stage where
/// the covered side can legitimately grow to half the pool while staying
/// nearly pure (the `expErr` heuristic mis-prices that regime and stops the
/// phase with false positives left on the table).
pub fn data_dl(cover: f64, uncover: f64, fp: f64, fn_: f64) -> f64 {
    let mut bits = 0.0;
    if cover > 0.0 {
        // lint:allow(unordered-float-sum) — two terms in fixed textual order
        bits += (cover + 1.0).log2() + subset_dl(cover, fp, (fp / cover).clamp(0.0, 1.0));
    }
    if uncover > 0.0 {
        // lint:allow(unordered-float-sum) — two terms in fixed textual order
        bits += (uncover + 1.0).log2() + subset_dl(uncover, fn_, (fn_ / uncover).clamp(0.0, 1.0));
    }
    bits
}

/// Combined description length of a rule set: the theory bits of every rule
/// plus the exception bits of the set as a whole.
///
/// `rule_lens` are the per-rule condition counts; coverage numbers describe
/// the whole set's predictions on the training data.
pub fn total_dl(
    n_possible: f64,
    rule_lens: &[usize],
    cover: f64,
    uncover: f64,
    fp: f64,
    fn_: f64,
) -> f64 {
    let theory = pnr_data::ordered_sum(
        rule_lens
            .iter()
            .map(|&k| rule_theory_dl(n_possible, k as f64)),
    );
    theory + data_dl(cover, uncover, fp, fn_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    #[test]
    fn possible_conditions_counts_values_and_thresholds() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        for (x, k) in [(1.0, "a"), (2.0, "b"), (2.0, "c"), (3.0, "a")] {
            b.push_row(&[Value::num(x), Value::cat(k)], "c", 1.0)
                .unwrap();
        }
        let d = b.finish();
        // numeric: 3 distinct values × 2 sides; categorical: 3 values
        assert_eq!(count_possible_conditions(&d), 9.0);
    }

    #[test]
    fn subset_dl_zero_exceptions_costs_little() {
        // perfectly pure coverage with tiny expected error probability
        let bits = subset_dl(100.0, 0.0, 0.01);
        assert!(bits > 0.0 && bits < 2.0, "{bits}");
    }

    #[test]
    fn subset_dl_is_monotone_in_k_for_small_p() {
        let p = 0.05;
        let b1 = subset_dl(100.0, 1.0, p);
        let b5 = subset_dl(100.0, 5.0, p);
        assert!(b5 > b1);
    }

    #[test]
    fn subset_dl_degenerate_probabilities() {
        assert_eq!(subset_dl(10.0, 0.0, 0.0), 0.0);
        assert_eq!(subset_dl(10.0, 3.0, 0.0), f64::INFINITY);
        assert_eq!(subset_dl(10.0, 3.0, 1.0), f64::INFINITY);
        assert_eq!(subset_dl(10.0, 10.0, 1.0), 0.0);
    }

    #[test]
    fn longer_rules_cost_more_theory_bits() {
        let n = 50.0;
        let d1 = rule_theory_dl(n, 1.0);
        let d3 = rule_theory_dl(n, 3.0);
        let d6 = rule_theory_dl(n, 6.0);
        assert!(d1 < d3 && d3 < d6, "{d1} {d3} {d6}");
        assert_eq!(rule_theory_dl(n, 0.0), 0.0);
    }

    #[test]
    fn small_disjuncts_have_long_descriptions() {
        // The paper's observation: "small disjuncts tend to have longer
        // lengths because of their small support", so a specific rule (many
        // conditions) costs much more than a general one.
        let n = 200.0;
        assert!(rule_theory_dl(n, 8.0) > 4.0 * rule_theory_dl(n, 1.0));
    }

    #[test]
    fn data_dl_grows_with_errors() {
        let clean = data_dl(100.0, 900.0, 0.0, 0.0);
        let dirty = data_dl(100.0, 900.0, 20.0, 30.0);
        assert!(dirty > clean, "dirty={dirty} clean={clean}");
    }

    #[test]
    fn data_dl_handles_empty_sides() {
        assert!(data_dl(0.0, 100.0, 0.0, 10.0).is_finite());
        assert!(data_dl(100.0, 0.0, 10.0, 0.0).is_finite());
    }

    #[test]
    fn shrinking_a_dirty_positive_prediction_reduces_data_dl() {
        // The N-stage prices the final classifier: its predicted-positive
        // set shrinks as N-rules remove false positives. Removing 600 pure
        // FPs from a 94%-FP prediction must reduce the data cost.
        let before = data_dl(7468.0, 142_532.0, 7040.0, 22.0);
        let after = data_dl(6868.0, 143_132.0, 6440.0, 22.0);
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn total_dl_adds_theory_and_data() {
        let t = total_dl(50.0, &[2, 3], 80.0, 920.0, 5.0, 10.0);
        let theory = rule_theory_dl(50.0, 2.0) + rule_theory_dl(50.0, 3.0);
        let data = data_dl(80.0, 920.0, 5.0, 10.0);
        assert!((t - (theory + data)).abs() < 1e-12);
    }

    #[test]
    fn adding_a_useless_rule_raises_total_dl() {
        // Same exception profile, one extra rule: DL must increase.
        let base = total_dl(50.0, &[2], 80.0, 920.0, 5.0, 10.0);
        let more = total_dl(50.0, &[2, 4], 80.0, 920.0, 5.0, 10.0);
        assert!(more > base);
    }
}
