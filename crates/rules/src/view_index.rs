//! Per-view sorted projections of numeric attributes.
//!
//! The condition search scans every numeric attribute in value order. The
//! dataset caches one *global* sort index per attribute, but a sequential-
//! covering learner spends most of its time on *shrinking* views — and
//! filtering the global index through a membership mask costs `O(n_rows)`
//! per attribute per call regardless of how small the view has become.
//!
//! A [`ViewIndex`] makes that cost view-proportional: each view owns a set
//! of lazily-built per-attribute row lists sorted by attribute value, and a
//! view derived via `restricted_to`/`without` chains back to its parent, so
//! a child's projection is built by filtering the nearest materialised
//! ancestor projection — `O(|ancestor view|)` — instead of re-scanning the
//! dataset. A root view (no ancestor) builds from the dataset directly in
//! `O(min(n_rows, m·log m))`.
//!
//! All paths produce the identical ordering (ascending value, ties in row
//! order), so swapping build strategies never changes search results — the
//! accumulation order of weight sums, and hence every floating-point
//! boundary statistic, is bit-identical.

use pnr_data::{Dataset, RowSet};
use std::sync::{Arc, OnceLock};

/// Lazily-built sorted row projections for one view, chained to the parent
/// view's index. Shared via `Arc`: cloning a view shares the cache, and a
/// projection is built at most once per view regardless of how many search
/// calls or threads ask for it (`OnceLock` per attribute).
#[derive(Debug)]
pub struct ViewIndex {
    rows: RowSet,
    parent: Option<Arc<ViewIndex>>,
    per_attr: Vec<OnceLock<Arc<Vec<u32>>>>,
}

impl ViewIndex {
    /// An index for a view with no ancestry (projections build from the
    /// dataset's global sort index).
    pub fn root(rows: RowSet, n_attrs: usize) -> Arc<Self> {
        Arc::new(ViewIndex {
            rows,
            parent: None,
            per_attr: (0..n_attrs).map(|_| OnceLock::new()).collect(),
        })
    }

    /// An index for a view derived from the one `self` indexes; `rows` must
    /// be a subset of the parent's rows.
    pub fn derive(self: &Arc<Self>, rows: RowSet) -> Arc<Self> {
        Arc::new(ViewIndex {
            rows,
            parent: Some(self.clone()),
            per_attr: (0..self.per_attr.len()).map(|_| OnceLock::new()).collect(),
        })
    }

    /// True when this view's projection for `attr` is already
    /// materialised (a subsequent [`projection`](Self::projection) call
    /// is a cache hit). Telemetry uses this to classify warm hits vs
    /// cold builds without forcing a build.
    pub fn is_materialised(&self, attr: usize) -> bool {
        self.per_attr[attr].get().is_some()
    }

    /// The view's rows sorted ascending by numeric attribute `attr` (ties in
    /// row order). Built on first use and cached; safe to call from several
    /// threads at once.
    ///
    /// # Panics
    /// Panics if `attr` is categorical.
    pub fn projection(&self, data: &Dataset, attr: usize) -> Arc<Vec<u32>> {
        self.per_attr[attr]
            .get_or_init(|| {
                // Filter the nearest ancestor that has already materialised
                // this attribute; never *force* an ancestor — if none has
                // built it, going to the dataset directly is cheaper than
                // materialising the whole chain.
                let mut ancestor = self.parent.as_deref();
                let source = loop {
                    match ancestor {
                        None => break None,
                        Some(a) => match a.per_attr[attr].get() {
                            Some(p) => break Some(p),
                            None => ancestor = a.parent.as_deref(),
                        },
                    }
                };
                let proj = match source {
                    Some(p) => p
                        .iter()
                        .copied()
                        .filter(|&r| self.rows.contains(r))
                        .collect::<Vec<u32>>(),
                    None => data.sorted_projection(attr, self.rows.as_slice()),
                };
                // Fires when a derived view's rows are not a subset of its
                // ancestor's (the filter then silently drops rows) or a
                // build path breaks the value-then-row ordering.
                #[cfg(feature = "audit")]
                pnr_data::audit::check_sorted_projection(
                    "ViewIndex::projection",
                    data,
                    attr,
                    self.rows.as_slice(),
                    &proj,
                );
                Arc::new(proj)
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn data() -> pnr_data::Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("y", AttrType::Numeric);
        for i in 0..40u32 {
            // x descends so the sort index is a genuine permutation;
            // y has heavy ties to exercise tie order.
            b.push_row(
                &[Value::num(-(i as f64)), Value::num((i % 5) as f64)],
                "c",
                1.0,
            )
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn root_projection_matches_dataset_projection() {
        let d = data();
        let rows = RowSet::from_vec((0..40).filter(|r| r % 2 == 0).collect());
        let idx = ViewIndex::root(rows.clone(), d.n_attrs());
        assert_eq!(
            *idx.projection(&d, 0),
            d.sorted_projection(0, rows.as_slice())
        );
        assert_eq!(
            *idx.projection(&d, 1),
            d.sorted_projection(1, rows.as_slice())
        );
    }

    #[test]
    fn projection_is_cached() {
        let d = data();
        let idx = ViewIndex::root(RowSet::all(40), d.n_attrs());
        let a = idx.projection(&d, 0);
        let b = idx.projection(&d, 0);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn derived_projection_filters_the_parent() {
        let d = data();
        let parent_rows = RowSet::from_vec((0..40).filter(|r| r % 2 == 0).collect());
        let parent = ViewIndex::root(parent_rows.clone(), d.n_attrs());
        let _ = parent.projection(&d, 1); // materialise the ancestor source
        let child_rows = RowSet::from_vec((0..40).filter(|r| r % 4 == 0).collect());
        let child = parent.derive(child_rows.clone());
        assert_eq!(
            *child.projection(&d, 1),
            d.sorted_projection(1, child_rows.as_slice())
        );
    }

    #[test]
    fn unmaterialised_chain_builds_from_dataset() {
        let d = data();
        let parent = ViewIndex::root(RowSet::all(40), d.n_attrs());
        let child_rows = RowSet::from_vec(vec![3, 8, 13, 30]);
        let child = parent.derive(child_rows.clone());
        // no ancestor projection exists for attr 1: builds directly, and the
        // parent's cache stays untouched
        assert_eq!(
            *child.projection(&d, 1),
            d.sorted_projection(1, child_rows.as_slice())
        );
        let grandchild = child.derive(RowSet::from_vec(vec![8, 13]));
        // grandchild now finds the child's materialised projection
        assert_eq!(
            *grandchild.projection(&d, 1),
            d.sorted_projection(1, &[8, 13])
        );
    }

    #[test]
    fn deep_chains_keep_tie_order() {
        let d = data();
        let mut idx = ViewIndex::root(RowSet::all(40), d.n_attrs());
        let mut rows = RowSet::all(40);
        let _ = idx.projection(&d, 1);
        for step in 0..6 {
            rows = rows.filter(|r| r % (step + 2) != 1);
            idx = idx.derive(rows.clone());
            assert_eq!(
                *idx.projection(&d, 1),
                d.sorted_projection(1, rows.as_slice()),
                "chain step {step}"
            );
        }
    }
}
