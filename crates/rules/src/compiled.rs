//! Compiled, attribute-indexed evaluation of ordered rule sets.
//!
//! [`RuleSet::first_match`] is a per-rule linear scan: every rule's every
//! condition is re-evaluated against the row, so scoring cost grows with
//! the *product* of rule count and rule length. [`CompiledRuleSet`] lowers
//! a rule set into an attribute-indexed predicate program once, and then
//! answers first-match queries by table dispatch:
//!
//! * **Categorical attributes** — every `CatEq` condition is grouped per
//!   attribute into a code → rule-bitset dispatch table. A rule whose
//!   equalities on the attribute pin two different codes is contradictory
//!   and is removed from the live set at compile time.
//! * **Numeric attributes** — each rule's `NumLe`/`NumGt`/`NumRange`
//!   conditions on one attribute fuse into a single half-open interval
//!   `(lo, hi]` (the workspace's closed-on-the-right convention, so the
//!   fusion is exact: `NumRange` *is* `NumGt(lo) ∧ NumLe(hi)`). All finite
//!   interval endpoints become a sorted breakpoint array partitioning the
//!   number line into segments `(b[i-1], b[i]]`; because every endpoint is
//!   a breakpoint, interval membership is constant within a segment, and a
//!   per-segment rule bitset answers "which rules' numeric constraints on
//!   this attribute does `x` satisfy" with one binary search.
//! * **First-match recovery** — bit `r` of every mask is rule `r` in rank
//!   order. Evaluation ANDs, per attribute, `base ∪ dispatch(value)`
//!   (`base` = rules with no condition on the attribute) into a live-rule
//!   mask; per-rule condition-count saturation is implicit in the AND — a
//!   rule's bit survives exactly when every attribute it tests passed it.
//!   The lowest surviving bit is the ranked first match. The AND steps
//!   commute, so programs run most-selective-first: an empty mask
//!   short-circuits the remaining attributes, and a program none of whose
//!   constrained rules are still live is skipped outright (no dispatch,
//!   no binary search).
//!
//! The unknown-value serving semantics ([`Condition::matches_lookup`]'s
//! "`None` never fires") compile to: an unknown value masks the
//! attribute's **entire dispatch table**, leaving only `base` — rules
//! without conditions on that attribute.
//!
//! # Value domain
//!
//! Dispatch assumes the dataset invariant that numeric cells are finite
//! (`DatasetBuilder` rejects NaN/±∞ and the `audit` feature re-checks
//! datasets that bypass the builder). Non-finite *thresholds* inside rules
//! are handled exactly: a NaN threshold makes its rule unsatisfiable (as
//! in the interpreter, where every comparison against NaN is false) and
//! infinite thresholds clamp the fused interval. Equivalence with the
//! interpreter is property-tested over random rule sets, datasets and
//! unknown-value patterns in `tests/compiled_props.rs`.

use crate::condition::Condition;
use crate::ruleset::RuleSet;
use pnr_data::{Column, Dataset};

/// Widest live mask (in 64-bit words) evaluated on the stack; rule sets
/// beyond `64 × STACK_WORDS` rules fall back to a heap buffer per call.
const STACK_WORDS: usize = 8;

/// Why a rule set could not be lowered into a predicate program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// One attribute is tested both by categorical equalities and by
    /// numeric thresholds across the rule set. No dataset column can
    /// satisfy both, so the rule set is malformed (the interpreter would
    /// panic on whichever condition mismatches the column's type).
    MixedConditionKinds {
        /// The attribute with conflicting condition kinds.
        attr: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::MixedConditionKinds { attr } => write!(
                f,
                "MixedConditionKinds: attribute {attr} is tested both by \
                 categorical equalities and by numeric thresholds"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// A value fed to the predicate program for one attribute.
#[derive(Debug, Clone, Copy)]
enum AttrValue {
    /// Finite numeric value.
    Num(f64),
    /// Categorical dictionary code.
    Code(u32),
    /// Unknown: masks the attribute's entire dispatch table.
    Unknown,
}

/// Per-attribute dispatch: which rules' conditions on this attribute does
/// a value satisfy. Masks are flattened entry-major, `stride` words each.
#[derive(Debug, Clone)]
enum DispatchTable {
    /// Code-indexed table over `n_codes` entries.
    Cat {
        /// `n_codes × stride` words; entry `c` = rules pinned to code `c`.
        masks: Vec<u64>,
        /// Number of dispatchable codes (codes beyond satisfy no rule).
        n_codes: usize,
    },
    /// Sorted finite breakpoints partitioning the line into
    /// `breakpoints.len() + 1` segments `(b[i-1], b[i]]`.
    Num {
        /// Ascending, distinct, finite interval endpoints.
        breakpoints: Vec<f64>,
        /// `(breakpoints.len() + 1) × stride` words; entry `s` = rules
        /// whose fused interval covers segment `s`.
        masks: Vec<u64>,
    },
}

/// One attribute's slice of the predicate program.
#[derive(Debug, Clone)]
struct AttrProgram {
    /// The attribute this program tests.
    attr: usize,
    /// Rules with *no* condition on this attribute (`stride` words):
    /// they pass regardless of the value.
    base: Vec<u64>,
    /// Complement of `base` within the rule width: rules *with* a
    /// condition on this attribute. When the live mask carries none of
    /// them, the program's AND is a no-op and evaluation skips it — in
    /// particular skipping the numeric binary search.
    constrained: Vec<u64>,
    /// The value-indexed part.
    table: DispatchTable,
}

impl AttrProgram {
    /// Index of the dispatch entry `value` selects, or `None` when the
    /// value reaches no entry (unknown, or a code beyond the table).
    #[inline]
    fn entry(&self, value: AttrValue) -> Option<usize> {
        match (&self.table, value) {
            (DispatchTable::Cat { n_codes, .. }, AttrValue::Code(c)) => {
                let c = c as usize;
                (c < *n_codes).then_some(c)
            }
            (DispatchTable::Num { breakpoints, .. }, AttrValue::Num(x)) => {
                Some(breakpoints.partition_point(|b| *b < x))
            }
            _ => None,
        }
    }

    /// The mask words of dispatch entry `e`.
    #[inline]
    fn entry_words(&self, e: usize, stride: usize) -> &[u64] {
        let masks = match &self.table {
            DispatchTable::Cat { masks, .. } => masks,
            DispatchTable::Num { masks, .. } => masks,
        };
        &masks[e * stride..(e + 1) * stride]
    }
}

/// A [`RuleSet`] lowered into an attribute-indexed predicate program.
/// Compile once per model, evaluate per row; see the module docs for the
/// scheme. Evaluation is bit-identical to the interpreter's
/// [`RuleSet::first_match`] / [`RuleSet::first_match_lookup`].
#[derive(Debug, Clone)]
pub struct CompiledRuleSet {
    /// Number of rules in the source rule set (bit width of the masks).
    n_rules: usize,
    /// Words per mask: `ceil(n_rules / 64)`, minimum 1.
    stride: usize,
    /// Rules that can match at all (contradictory conjunctions cleared).
    alive: Vec<u64>,
    /// Per-attribute programs, most selective first (fewest `base` bits,
    /// ties on attribute index); attributes no rule tests are absent.
    programs: Vec<AttrProgram>,
}

/// Per-rule requirements on one attribute, folded from its conditions.
#[derive(Debug, Clone, Copy)]
enum Requirement {
    /// No condition on this attribute yet.
    Free,
    /// Categorical equalities pin this code.
    Pinned(u32),
    /// Fused numeric interval `(lo, hi]`.
    Interval(f64, f64),
    /// The conjunction on this attribute is unsatisfiable.
    Contradiction,
}

/// Attribute kind as witnessed by conditions across the whole rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttrKind {
    Cat,
    Num,
}

impl CompiledRuleSet {
    /// Lowers `rules` into a predicate program. Fails only when the rule
    /// set itself is malformed (one attribute tested as both categorical
    /// and numeric); contradictory individual rules compile fine and
    /// simply never match, exactly as under the interpreter.
    pub fn compile(rules: &RuleSet) -> Result<CompiledRuleSet, CompileError> {
        let n_rules = rules.len();
        let stride = n_rules.div_ceil(64).max(1);

        // Pass 1: attribute kinds (and the attribute range in play).
        let mut kinds: Vec<Option<AttrKind>> = Vec::new();
        for rule in rules.rules() {
            for cond in rule.conditions() {
                let attr = cond.attr();
                if attr >= kinds.len() {
                    kinds.resize(attr + 1, None);
                }
                let kind = match cond {
                    Condition::CatEq { .. } => AttrKind::Cat,
                    Condition::NumLe { .. }
                    | Condition::NumGt { .. }
                    | Condition::NumRange { .. } => AttrKind::Num,
                };
                match kinds[attr] {
                    None => kinds[attr] = Some(kind),
                    Some(k) if k == kind => {}
                    Some(_) => return Err(CompileError::MixedConditionKinds { attr }),
                }
            }
        }

        // Pass 2: fold every rule's conditions into one requirement per
        // attribute, and collect them per attribute.
        let n_attrs = kinds.len();
        let mut pins: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n_attrs];
        let mut intervals: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new(); n_attrs];
        let mut constrained: Vec<Vec<usize>> = vec![Vec::new(); n_attrs];
        let mut alive = ones(n_rules, stride);
        let mut reqs: Vec<Requirement> = vec![Requirement::Free; n_attrs];
        for (r, rule) in rules.rules().iter().enumerate() {
            let mut touched: Vec<usize> = Vec::new();
            for cond in rule.conditions() {
                let attr = cond.attr();
                if matches!(reqs[attr], Requirement::Free) {
                    touched.push(attr);
                }
                reqs[attr] = fold(reqs[attr], cond);
            }
            let mut dead = false;
            for &attr in &touched {
                match reqs[attr] {
                    Requirement::Free => {}
                    Requirement::Pinned(code) => {
                        pins[attr].push((r, code));
                        constrained[attr].push(r);
                    }
                    Requirement::Interval(lo, hi) => {
                        intervals[attr].push((r, lo, hi));
                        constrained[attr].push(r);
                    }
                    Requirement::Contradiction => {
                        constrained[attr].push(r);
                        dead = true;
                    }
                }
                reqs[attr] = Requirement::Free;
            }
            if dead {
                clear_bit(&mut alive, r);
            }
        }

        // Pass 3: build one program per constrained attribute.
        let mut programs = Vec::new();
        for attr in 0..n_attrs {
            if constrained[attr].is_empty() {
                continue;
            }
            let mut base = ones(n_rules, stride);
            let mut cmask = vec![0u64; stride];
            for &r in &constrained[attr] {
                clear_bit(&mut base, r);
                set_bit(&mut cmask, r);
            }
            let table = match kinds[attr] {
                Some(AttrKind::Cat) => {
                    let n_codes = pins[attr]
                        .iter()
                        .map(|&(_, code)| code as usize + 1)
                        .max()
                        .unwrap_or(0);
                    let mut masks = vec![0u64; n_codes * stride];
                    for &(r, code) in &pins[attr] {
                        set_bit(&mut masks[code as usize * stride..], r);
                    }
                    DispatchTable::Cat { masks, n_codes }
                }
                Some(AttrKind::Num) => {
                    let mut breakpoints: Vec<f64> = Vec::new();
                    for &(_, lo, hi) in &intervals[attr] {
                        if lo.is_finite() {
                            breakpoints.push(lo);
                        }
                        if hi.is_finite() {
                            breakpoints.push(hi);
                        }
                    }
                    breakpoints.sort_by(f64::total_cmp);
                    breakpoints.dedup();
                    let n_segments = breakpoints.len() + 1;
                    let mut masks = vec![0u64; n_segments * stride];
                    for &(r, lo, hi) in &intervals[attr] {
                        if lo.is_nan() || hi.is_nan() || lo >= hi {
                            // Empty interval (includes NaN endpoints):
                            // the rule can never match.
                            clear_bit(&mut alive, r);
                            continue;
                        }
                        // Segments whose left edge is ≥ lo …
                        let first = if lo.is_finite() {
                            breakpoints.partition_point(|b| *b < lo) + 1
                        } else {
                            0
                        };
                        // … and whose right edge is ≤ hi.
                        let last = if hi.is_finite() {
                            breakpoints.partition_point(|b| *b <= hi)
                        } else {
                            n_segments
                        };
                        for s in first..last.max(first) {
                            set_bit(&mut masks[s * stride..], r);
                        }
                    }
                    DispatchTable::Num { breakpoints, masks }
                }
                // Unreachable: `constrained[attr]` is non-empty only when
                // a condition fixed the kind in pass 1.
                None => continue,
            };
            programs.push(AttrProgram {
                attr,
                base,
                constrained: cmask,
                table,
            });
        }

        // Most-selective programs first (fewest rules passing regardless
        // of value), so the live mask empties — and evaluation
        // short-circuits — as early as possible. The AND steps commute,
        // so ordering cannot change the result; ties break on attribute
        // index for determinism.
        programs.sort_by_key(|p| {
            (
                p.base
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>(),
                p.attr,
            )
        });

        Ok(CompiledRuleSet {
            n_rules,
            stride,
            alive,
            programs,
        })
    }

    /// Number of rules in the compiled set.
    pub fn n_rules(&self) -> usize {
        self.n_rules
    }

    /// Number of attribute programs (attributes any rule tests).
    pub fn n_programs(&self) -> usize {
        self.programs.len()
    }

    /// Core evaluation: AND per-attribute masks into the live set and
    /// return the lowest surviving bit.
    #[inline]
    fn eval(&self, value_of: impl Fn(&AttrProgram) -> AttrValue) -> Option<usize> {
        if self.stride == 1 {
            let mut mask = self.alive[0];
            for prog in &self.programs {
                if mask == 0 {
                    return None;
                }
                if mask & prog.constrained[0] == 0 {
                    continue;
                }
                let entry = match prog.entry(value_of(prog)) {
                    Some(e) => prog.entry_words(e, 1)[0],
                    None => 0,
                };
                mask &= prog.base[0] | entry;
            }
            if mask == 0 {
                None
            } else {
                Some(mask.trailing_zeros() as usize)
            }
        } else if self.stride <= STACK_WORDS {
            // Rule sets up to 64 × STACK_WORDS rules evaluate without
            // touching the heap.
            let mut buf = [0u64; STACK_WORDS];
            buf[..self.stride].copy_from_slice(&self.alive);
            self.eval_wide(value_of, &mut buf[..self.stride])
        } else {
            let mut buf = self.alive.clone();
            self.eval_wide(value_of, &mut buf)
        }
    }

    /// Multi-word evaluation over a caller-provided live mask.
    fn eval_wide(
        &self,
        value_of: impl Fn(&AttrProgram) -> AttrValue,
        mask: &mut [u64],
    ) -> Option<usize> {
        for prog in &self.programs {
            let touched = mask
                .iter()
                .zip(&prog.constrained)
                .fold(0u64, |t, (m, c)| t | (m & c));
            if touched == 0 {
                continue;
            }
            let entry = prog.entry(value_of(prog));
            let mut any = 0u64;
            for (w, m) in mask.iter_mut().enumerate() {
                let e = match entry {
                    Some(e) => prog.entry_words(e, self.stride)[w],
                    None => 0,
                };
                *m &= prog.base[w] | e;
                any |= *m;
            }
            if any == 0 {
                return None;
            }
        }
        first_bit(mask)
    }

    /// Rank of the first rule matching `row` of `data`, or `None`.
    /// Bit-identical to [`RuleSet::first_match`].
    ///
    /// # Panics
    /// Panics (like the interpreter) when a tested attribute's column
    /// type contradicts its conditions or indexes are out of range.
    #[inline]
    pub fn first_match(&self, data: &Dataset, row: usize) -> Option<usize> {
        self.eval(|prog| match &prog.table {
            DispatchTable::Cat { .. } => AttrValue::Code(data.cat(prog.attr, row)),
            DispatchTable::Num { .. } => AttrValue::Num(data.num(prog.attr, row)),
        })
    }

    /// Rank of the first rule whose conditions all hold against fallible
    /// value lookups, or `None`. Unknown (`None`) values mask the
    /// attribute's whole dispatch table, so no condition on that
    /// attribute can fire — bit-identical to
    /// [`RuleSet::first_match_lookup`]. Each attribute is looked up at
    /// most once per call (the interpreter may look up more often; the
    /// lookups are expected to be pure).
    pub fn first_match_lookup<N, C>(&self, num: N, cat: C) -> Option<usize>
    where
        N: Fn(usize) -> Option<f64>,
        C: Fn(usize) -> Option<u32>,
    {
        self.eval(|prog| match &prog.table {
            DispatchTable::Cat { .. } => match cat(prog.attr) {
                Some(c) => AttrValue::Code(c),
                None => AttrValue::Unknown,
            },
            DispatchTable::Num { .. } => match num(prog.attr) {
                Some(x) => AttrValue::Num(x),
                None => AttrValue::Unknown,
            },
        })
    }

    /// A batch matcher over `data` with the per-attribute columns and
    /// dispatch tables resolved once, for tight scoring loops. Binding
    /// pays one pass over each numeric program's column (to precompute
    /// per-row dispatch segments), so it amortizes over a batch — for a
    /// single row use [`CompiledRuleSet::first_match`] directly.
    ///
    /// # Panics
    /// Panics (like the interpreter's first data access would) when a
    /// tested attribute's column type contradicts its conditions.
    pub fn matcher<'a>(&'a self, data: &'a Dataset) -> CompiledMatcher<'a> {
        let programs = self
            .programs
            .iter()
            .map(|prog| {
                let table = match (&prog.table, data.column(prog.attr)) {
                    (DispatchTable::Num { breakpoints, masks }, Column::Num(v)) => {
                        // Rows visited in ascending value order share a
                        // monotone segment cursor: O(rows + breakpoints)
                        // for the whole column, no per-row search.
                        let mut segments = vec![0u32; v.len()];
                        let mut seg: u32 = 0;
                        for &r in data.sort_index(prog.attr) {
                            let x = v[r as usize];
                            while (seg as usize) < breakpoints.len()
                                && breakpoints[seg as usize] < x
                            {
                                seg += 1;
                            }
                            segments[r as usize] = seg;
                        }
                        BoundTable::Num { segments, masks }
                    }
                    (DispatchTable::Cat { masks, n_codes }, Column::Cat(v)) => BoundTable::Cat {
                        codes: v,
                        masks,
                        n_codes: *n_codes,
                    },
                    (DispatchTable::Num { .. }, Column::Cat(_)) => {
                        panic!("attribute {} is categorical, not numeric", prog.attr)
                    }
                    (DispatchTable::Cat { .. }, Column::Num(_)) => {
                        panic!("attribute {} is numeric, not categorical", prog.attr)
                    }
                };
                BoundProgram {
                    base: &prog.base,
                    constrained: &prog.constrained,
                    table,
                }
            })
            .collect();
        CompiledMatcher {
            n_rules: self.n_rules,
            stride: self.stride,
            alive: &self.alive,
            programs,
        }
    }
}

/// A dispatch table bound to its dataset column (see
/// [`CompiledRuleSet::matcher`]).
#[derive(Debug, Clone)]
enum BoundTable<'a> {
    Num {
        /// Per-row dispatch-segment codes, precomputed at bind time by
        /// one merge-walk over the column's sort index — numeric dispatch
        /// in the batch path is a single load, like categorical, instead
        /// of a per-row binary search.
        segments: Vec<u32>,
        masks: &'a [u64],
    },
    Cat {
        codes: &'a [u32],
        masks: &'a [u64],
        n_codes: usize,
    },
}

/// One attribute program bound to its column.
#[derive(Debug, Clone)]
struct BoundProgram<'a> {
    base: &'a [u64],
    constrained: &'a [u64],
    table: BoundTable<'a>,
}

impl BoundProgram<'_> {
    /// Index of the dispatch entry `row` selects, or `None` for a code
    /// beyond the table.
    #[inline]
    fn entry(&self, row: usize) -> Option<usize> {
        match &self.table {
            BoundTable::Num { segments, .. } => Some(segments[row] as usize),
            BoundTable::Cat { codes, n_codes, .. } => {
                let c = codes[row] as usize;
                (c < *n_codes).then_some(c)
            }
        }
    }

    /// The flattened mask words of this program's table.
    #[inline]
    fn masks(&self) -> &[u64] {
        match &self.table {
            BoundTable::Num { masks, .. } => masks,
            BoundTable::Cat { masks, .. } => masks,
        }
    }
}

/// A [`CompiledRuleSet`] bound to one dataset's columns: the per-row hot
/// path pays no column-type dispatch and no bounds re-derivation.
#[derive(Debug, Clone)]
pub struct CompiledMatcher<'a> {
    n_rules: usize,
    stride: usize,
    alive: &'a [u64],
    /// One bound program per attribute program, in program order.
    programs: Vec<BoundProgram<'a>>,
}

impl CompiledMatcher<'_> {
    /// Number of rules in the underlying compiled set.
    pub fn n_rules(&self) -> usize {
        self.n_rules
    }

    /// Rank of the first rule matching `row`, or `None`. Identical to
    /// [`CompiledRuleSet::first_match`] minus the per-call column lookup.
    #[inline]
    pub fn first_match(&self, row: usize) -> Option<usize> {
        if self.stride == 1 {
            let mut mask = self.alive[0];
            for prog in &self.programs {
                if mask == 0 {
                    return None;
                }
                if mask & prog.constrained[0] == 0 {
                    continue;
                }
                let entry = match prog.entry(row) {
                    Some(e) => prog.masks()[e],
                    None => 0,
                };
                mask &= prog.base[0] | entry;
            }
            if mask == 0 {
                None
            } else {
                Some(mask.trailing_zeros() as usize)
            }
        } else if self.stride <= STACK_WORDS {
            let mut buf = [0u64; STACK_WORDS];
            buf[..self.stride].copy_from_slice(self.alive);
            self.first_match_wide(row, &mut buf[..self.stride])
        } else {
            let mut buf = self.alive.to_vec();
            self.first_match_wide(row, &mut buf)
        }
    }

    /// Multi-word evaluation over a caller-provided live mask.
    fn first_match_wide(&self, row: usize, mask: &mut [u64]) -> Option<usize> {
        for prog in &self.programs {
            let touched = mask
                .iter()
                .zip(prog.constrained)
                .fold(0u64, |t, (m, c)| t | (m & c));
            if touched == 0 {
                continue;
            }
            let entry = prog.entry(row);
            let mut any = 0u64;
            for (w, m) in mask.iter_mut().enumerate() {
                let e = match entry {
                    Some(e) => prog.masks()[e * self.stride + w],
                    None => 0,
                };
                *m &= prog.base[w] | e;
                any |= *m;
            }
            if any == 0 {
                return None;
            }
        }
        first_bit(mask)
    }
}

/// A mask with the low `n` bits set, `stride` words wide.
fn ones(n: usize, stride: usize) -> Vec<u64> {
    let mut words = vec![0u64; stride];
    for (w, word) in words.iter_mut().enumerate() {
        let low = w * 64;
        if n >= low + 64 {
            *word = u64::MAX;
        } else if n > low {
            *word = (1u64 << (n - low)) - 1;
        }
    }
    words
}

/// Sets bit `r` of a mask.
#[inline]
fn set_bit(words: &mut [u64], r: usize) {
    words[r / 64] |= 1u64 << (r % 64);
}

/// Clears bit `r` of a mask.
#[inline]
fn clear_bit(words: &mut [u64], r: usize) {
    words[r / 64] &= !(1u64 << (r % 64));
}

/// Index of the lowest set bit, or `None` for an all-zero mask.
#[inline]
fn first_bit(words: &[u64]) -> Option<usize> {
    for (w, &word) in words.iter().enumerate() {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
    }
    None
}

/// Folds one more condition into an attribute requirement.
fn fold(req: Requirement, cond: &Condition) -> Requirement {
    let (lo, hi) = match *cond {
        Condition::CatEq { value, .. } => {
            return match req {
                Requirement::Free => Requirement::Pinned(value),
                Requirement::Pinned(prev) if prev == value => Requirement::Pinned(prev),
                _ => Requirement::Contradiction,
            };
        }
        Condition::NumLe { value, .. } => (f64::NEG_INFINITY, value),
        Condition::NumGt { value, .. } => (value, f64::INFINITY),
        Condition::NumRange { lo, hi, .. } => (lo, hi),
    };
    if lo.is_nan() || hi.is_nan() {
        return Requirement::Contradiction;
    }
    match req {
        Requirement::Free => Requirement::Interval(lo, hi),
        Requirement::Interval(plo, phi) => Requirement::Interval(plo.max(lo), phi.min(hi)),
        _ => Requirement::Contradiction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn data() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_cat_value(1, "a");
        b.add_cat_value(1, "b");
        b.add_cat_value(1, "c");
        for (x, k) in [
            (1.0, "a"),
            (2.0, "b"),
            (3.0, "a"),
            (4.0, "c"),
            (2.0, "c"),
            (5.0, "b"),
        ] {
            b.push_row(&[Value::num(x), Value::cat(k)], "c", 1.0)
                .unwrap();
        }
        b.finish()
    }

    fn le(v: f64) -> Condition {
        Condition::NumLe { attr: 0, value: v }
    }

    fn gt(v: f64) -> Condition {
        Condition::NumGt { attr: 0, value: v }
    }

    fn range(lo: f64, hi: f64) -> Condition {
        Condition::NumRange { attr: 0, lo, hi }
    }

    fn cat(code: u32) -> Condition {
        Condition::CatEq {
            attr: 1,
            value: code,
        }
    }

    fn assert_identical(rules: &RuleSet, data: &Dataset) {
        let compiled = CompiledRuleSet::compile(rules).expect("compiles");
        let matcher = compiled.matcher(data);
        for row in 0..data.n_rows() {
            let want = rules.first_match(data, row);
            assert_eq!(compiled.first_match(data, row), want, "row {row}");
            assert_eq!(matcher.first_match(row), want, "matcher row {row}");
            let via_lookup =
                compiled.first_match_lookup(|a| Some(data.num(a, row)), |a| Some(data.cat(a, row)));
            assert_eq!(via_lookup, want, "lookup row {row}");
        }
    }

    #[test]
    fn mixed_rules_dispatch_identically() {
        let d = data();
        let rules = RuleSet::from_rules(vec![
            Rule::new(vec![le(2.0), cat(2)]),
            Rule::new(vec![range(1.0, 3.0)]),
            Rule::new(vec![gt(3.0)]),
            Rule::empty(),
        ]);
        assert_identical(&rules, &d);
    }

    #[test]
    fn empty_ruleset_matches_nothing() {
        let d = data();
        let compiled = CompiledRuleSet::compile(&RuleSet::new()).expect("compiles");
        for row in 0..d.n_rows() {
            assert_eq!(compiled.first_match(&d, row), None);
        }
    }

    #[test]
    fn empty_rule_matches_everything_first() {
        let d = data();
        let rules = RuleSet::from_rules(vec![Rule::empty(), Rule::new(vec![le(10.0)])]);
        let compiled = CompiledRuleSet::compile(&rules).expect("compiles");
        for row in 0..d.n_rows() {
            assert_eq!(compiled.first_match(&d, row), Some(0));
        }
    }

    #[test]
    fn contradictory_conjunctions_never_match() {
        let d = data();
        // two different codes on one attribute; an empty numeric interval;
        // a NaN threshold — all satisfiable by no row, exactly as under
        // the interpreter.
        let rules = RuleSet::from_rules(vec![
            Rule::new(vec![cat(0), cat(1)]),
            Rule::new(vec![gt(3.0), le(2.0)]),
            Rule::new(vec![le(f64::NAN)]),
            Rule::new(vec![range(2.0, 2.0)]),
            Rule::new(vec![le(3.0)]),
        ]);
        assert_identical(&rules, &d);
        let compiled = CompiledRuleSet::compile(&rules).expect("compiles");
        for row in 0..d.n_rows() {
            assert!(!matches!(
                compiled.first_match(&d, row),
                Some(0) | Some(1) | Some(2) | Some(3)
            ));
        }
    }

    #[test]
    fn fused_intervals_equal_condition_conjunctions() {
        let d = data();
        let rules = RuleSet::from_rules(vec![
            Rule::new(vec![gt(1.0), le(4.0), range(1.5, 5.0)]),
            Rule::new(vec![le(f64::INFINITY)]),
            Rule::new(vec![gt(f64::NEG_INFINITY)]),
            Rule::new(vec![le(f64::NEG_INFINITY)]),
            Rule::new(vec![gt(f64::INFINITY)]),
        ]);
        assert_identical(&rules, &d);
    }

    #[test]
    fn threshold_boundaries_are_closed_on_the_right() {
        let d = data();
        // thresholds sitting exactly on data values: x ≤ 2 must include
        // x = 2, x > 2 must exclude it.
        let rules = RuleSet::from_rules(vec![Rule::new(vec![le(2.0)]), Rule::new(vec![gt(2.0)])]);
        assert_identical(&rules, &d);
    }

    #[test]
    fn unknown_masks_the_whole_dispatch_table() {
        // rank 0 tests both attributes, rank 1 only the numeric one,
        // rank 2 is unconditional.
        let rules = RuleSet::from_rules(vec![
            Rule::new(vec![le(10.0), cat(0)]),
            Rule::new(vec![le(10.0)]),
            Rule::empty(),
        ]);
        let compiled = CompiledRuleSet::compile(&rules).expect("compiles");
        // categorical unknown: rule 0 cannot fire, rule 1 can
        assert_eq!(
            compiled.first_match_lookup(|_| Some(1.0), |_| None),
            Some(1)
        );
        // numeric unknown too: only the unconditional rule fires
        assert_eq!(compiled.first_match_lookup(|_| None, |_| None), Some(2));
        // interpreter agrees
        assert_eq!(rules.first_match_lookup(|_| Some(1.0), |_| None), Some(1));
        assert_eq!(rules.first_match_lookup(|_| None, |_| None), Some(2));
    }

    #[test]
    fn codes_beyond_the_dispatch_table_satisfy_no_equality() {
        let rules = RuleSet::from_rules(vec![Rule::new(vec![cat(0)]), Rule::empty()]);
        let compiled = CompiledRuleSet::compile(&rules).expect("compiles");
        assert_eq!(compiled.first_match_lookup(|_| None, |_| Some(7)), Some(1));
        assert_eq!(rules.first_match_lookup(|_| None, |_| Some(7)), Some(1));
    }

    #[test]
    fn mixed_kinds_on_one_attribute_refuse_to_compile() {
        let rules = RuleSet::from_rules(vec![
            Rule::new(vec![Condition::CatEq { attr: 0, value: 0 }]),
            Rule::new(vec![le(1.0)]),
        ]);
        assert_eq!(
            CompiledRuleSet::compile(&rules).err(),
            Some(CompileError::MixedConditionKinds { attr: 0 })
        );
    }

    #[test]
    fn wide_rulesets_use_multi_word_masks() {
        let d = data();
        // 70 rules: first 69 test successively larger thresholds on a
        // value no row reaches, the last is a catch-all — exercises the
        // multi-word path and cross-word first-bit recovery.
        let mut rules: Vec<Rule> = (0..69)
            .map(|i| Rule::new(vec![le(-100.0 + i as f64)]))
            .collect();
        rules.push(Rule::empty());
        let rules = RuleSet::from_rules(rules);
        let compiled = CompiledRuleSet::compile(&rules).expect("compiles");
        assert_eq!(compiled.stride, 2);
        assert_identical(&rules, &d);
        for row in 0..d.n_rows() {
            assert_eq!(compiled.first_match(&d, row), Some(69));
        }
    }

    #[test]
    fn ones_mask_widths() {
        assert_eq!(ones(0, 1), vec![0]);
        assert_eq!(ones(3, 1), vec![0b111]);
        assert_eq!(ones(64, 1), vec![u64::MAX]);
        assert_eq!(ones(65, 2), vec![u64::MAX, 1]);
        assert_eq!(first_bit(&[0, 4]), Some(66));
        assert_eq!(first_bit(&[0, 0]), None);
    }
}
