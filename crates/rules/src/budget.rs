//! Training budget guards: bounded candidate evaluation and wall-clock
//! deadlines for the grow loops.
//!
//! A [`FitBudget`] is a declarative limit set on the learner's parameters
//! (`max_rules`, `max_candidates`, `wall_clock_secs`); a [`BudgetTracker`]
//! is the shared runtime counter the grow loops and the condition search
//! charge against. When any limit is crossed the tracker latches
//! **exhausted** and every later budget check fails fast, so the learner
//! stops growing and returns the valid model it has so far — graceful
//! truncation, never a hang or a panic.
//!
//! # Determinism
//!
//! `max_rules` and `max_candidates` are deterministic: candidates are
//! charged per attribute inside the condition search, and when a charge
//! crosses the limit the *whole* search call reports exhaustion and
//! returns no candidate — partial scans are discarded, so the outcome
//! does not depend on how parallel workers interleaved their charges.
//! `wall_clock_secs` is inherently nondeterministic (it races the host
//! clock) and is therefore opt-in for reproducible runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Declarative training budget; the all-`None` default is unlimited.
///
/// Carried by learner parameter structs and serialized with them, so a
/// checkpointed experiment cell records the budget it ran under.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FitBudget {
    /// Maximum number of rules grown across all phases (P-rules plus
    /// N-rules for PNrule). `None` = unlimited.
    #[serde(default)]
    pub max_rules: Option<u64>,
    /// Maximum number of candidate conditions scored across the whole
    /// fit. `None` = unlimited.
    #[serde(default)]
    pub max_candidates: Option<u64>,
    /// Wall-clock limit in seconds for the whole fit. `None` =
    /// unlimited. Nondeterministic: the same run may truncate at a
    /// different rule on a slower machine.
    #[serde(default)]
    pub wall_clock_secs: Option<f64>,
}

impl FitBudget {
    /// An unlimited budget (all limits off).
    pub fn unlimited() -> Self {
        FitBudget::default()
    }

    /// True when no limit is set, so callers can skip tracker plumbing.
    pub fn is_unlimited(&self) -> bool {
        self.max_rules.is_none() && self.max_candidates.is_none() && self.wall_clock_secs.is_none()
    }

    /// Validates the budget; returns a description of the first problem.
    /// Limits must be positive and the wall clock finite.
    pub fn validation_error(&self) -> Option<String> {
        if self.max_rules == Some(0) {
            return Some("budget.max_rules must be positive when set".to_owned());
        }
        if self.max_candidates == Some(0) {
            return Some("budget.max_candidates must be positive when set".to_owned());
        }
        if let Some(secs) = self.wall_clock_secs {
            if !secs.is_finite() || secs < 0.0 {
                return Some(format!(
                    "budget.wall_clock_secs must be finite and non-negative, got {secs}"
                ));
            }
        }
        None
    }

    /// Starts a runtime tracker for this budget, anchoring the wall-clock
    /// deadline at "now". Returns `None` for an unlimited budget so the
    /// hot paths can skip every check.
    pub fn start(&self) -> Option<BudgetTracker> {
        if self.is_unlimited() {
            return None;
        }
        let deadline = self.wall_clock_secs.map(|secs| {
            // Clamp rather than panic on pathological inputs; validation
            // reports them, the tracker just degrades to "already due".
            let secs = if secs.is_finite() && secs >= 0.0 {
                secs
            } else {
                0.0
            };
            Instant::now() + Duration::from_secs_f64(secs.min(1e9))
        });
        Some(BudgetTracker {
            max_rules: self.max_rules,
            max_candidates: self.max_candidates,
            deadline,
            rules: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        })
    }
}

/// Shared runtime counters for one fit. Cheap to query; once any limit is
/// crossed [`BudgetTracker::is_exhausted`] stays `true` (the flag
/// latches), so every later check fails fast.
#[derive(Debug)]
pub struct BudgetTracker {
    max_rules: Option<u64>,
    max_candidates: Option<u64>,
    deadline: Option<Instant>,
    rules: AtomicU64,
    candidates: AtomicU64,
    exhausted: AtomicBool,
}

impl BudgetTracker {
    /// True once any limit has been crossed.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Latches the exhausted flag (used by the search when a charge
    /// crosses the candidate limit).
    fn exhaust(&self) {
        self.exhausted.store(true, Ordering::Relaxed);
    }

    /// Checks the wall-clock deadline, latching exhaustion when past due.
    /// Returns `true` when the budget still has time left.
    pub fn check_deadline(&self) -> bool {
        if self.is_exhausted() {
            return false;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.exhaust();
                return false;
            }
        }
        true
    }

    /// Charges `n` scored candidate conditions against the budget.
    /// Returns `false` — latching exhaustion — when the charge crosses
    /// the candidate limit or the budget was already exhausted. The
    /// caller must then discard its partial scan (see the module-level
    /// determinism note).
    pub fn charge_candidates(&self, n: u64) -> bool {
        if self.is_exhausted() {
            return false;
        }
        let before = self.candidates.fetch_add(n, Ordering::Relaxed);
        if let Some(max) = self.max_candidates {
            if before.saturating_add(n) > max {
                self.exhaust();
                return false;
            }
        }
        true
    }

    /// Charges one grown rule. Returns `false` — latching exhaustion —
    /// when the rule limit is reached or the budget was already
    /// exhausted; the rule that triggered the charge is still valid and
    /// kept, but the grow loop must not start another.
    pub fn charge_rule(&self) -> bool {
        if self.is_exhausted() {
            return false;
        }
        let before = self.rules.fetch_add(1, Ordering::Relaxed);
        if let Some(max) = self.max_rules {
            if before + 1 >= max {
                self.exhaust();
                return false;
            }
        }
        true
    }

    /// Candidates charged so far (diagnostics).
    pub fn candidates_charged(&self) -> u64 {
        self.candidates.load(Ordering::Relaxed)
    }

    /// Rules charged so far (diagnostics).
    pub fn rules_charged(&self) -> u64 {
        self.rules.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_has_no_tracker() {
        assert!(FitBudget::unlimited().is_unlimited());
        assert!(FitBudget::default().start().is_none());
    }

    #[test]
    fn candidate_limit_latches() {
        let budget = FitBudget {
            max_candidates: Some(10),
            ..FitBudget::default()
        };
        let t = budget.start().expect("limited budget");
        assert!(t.charge_candidates(6));
        assert!(!t.is_exhausted());
        // 6 + 5 = 11 > 10: crossing charge fails and latches.
        assert!(!t.charge_candidates(5));
        assert!(t.is_exhausted());
        assert!(!t.charge_candidates(1));
        assert!(!t.check_deadline());
    }

    #[test]
    fn exact_candidate_limit_is_allowed() {
        let budget = FitBudget {
            max_candidates: Some(10),
            ..FitBudget::default()
        };
        let t = budget.start().expect("limited budget");
        assert!(t.charge_candidates(10));
        assert!(!t.is_exhausted());
        assert!(!t.charge_candidates(1));
    }

    #[test]
    fn rule_limit_keeps_the_crossing_rule() {
        let budget = FitBudget {
            max_rules: Some(2),
            ..FitBudget::default()
        };
        let t = budget.start().expect("limited budget");
        assert!(t.charge_rule()); // rule 1: under the limit
        assert!(!t.charge_rule()); // rule 2: reaches the limit, kept, latches
        assert!(t.is_exhausted());
        assert_eq!(t.rules_charged(), 2);
    }

    #[test]
    fn zero_deadline_is_immediately_due() {
        let budget = FitBudget {
            wall_clock_secs: Some(0.0),
            ..FitBudget::default()
        };
        let t = budget.start().expect("limited budget");
        assert!(!t.check_deadline());
        assert!(t.is_exhausted());
    }

    #[test]
    fn generous_deadline_is_not_due() {
        let budget = FitBudget {
            wall_clock_secs: Some(3600.0),
            ..FitBudget::default()
        };
        let t = budget.start().expect("limited budget");
        assert!(t.check_deadline());
        assert!(!t.is_exhausted());
    }

    #[test]
    fn validation_rejects_degenerate_limits() {
        let zero_rules = FitBudget {
            max_rules: Some(0),
            ..FitBudget::default()
        };
        assert!(zero_rules.validation_error().is_some());
        let zero_cands = FitBudget {
            max_candidates: Some(0),
            ..FitBudget::default()
        };
        assert!(zero_cands.validation_error().is_some());
        let bad_clock = FitBudget {
            wall_clock_secs: Some(f64::NAN),
            ..FitBudget::default()
        };
        assert!(bad_clock.validation_error().is_some());
        assert!(FitBudget::default().validation_error().is_none());
    }

    #[test]
    fn budget_round_trips_through_json() {
        let budget = FitBudget {
            max_rules: Some(7),
            max_candidates: None,
            wall_clock_secs: Some(1.5),
        };
        let json = serde_json::to_string(&budget).expect("serialize");
        let back: FitBudget = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, budget);
    }

    #[test]
    fn missing_budget_fields_default_to_unlimited() {
        // Older serialized params carry no budget fields at all; the
        // `#[serde(default)]` markers must fill them in as unlimited.
        let back: FitBudget = serde_json::from_str("{}").expect("deserialize empty map");
        assert_eq!(back, FitBudget::unlimited());
    }
}
