//! Greedy best-condition search, including the paper's range finder.
//!
//! For categorical attributes every `attr = value` test is scored from a
//! single counting pass. For numeric attributes the two one-sided tests
//! `A ≤ v` and `A > v` are scored for every distinct-value boundary in one
//! scan of the view's **sorted projection** (section 2.2 of the paper), and
//! a **range-based** condition `lo < A ≤ hi` is then sought with one extra
//! scan: the better one-sided bound is fixed and the opposite bound swept —
//! "If condition A ≤ vᵣ has higher value than condition A > vₗ, then we fix
//! vᵣ and scan for the best value of vₗ to the left of vᵣ", and vice versa.
//!
//! The scan is **view-proportional**: the per-attribute sorted row lists
//! come from the view's [`ViewIndex`](crate::view_index::ViewIndex), so a
//! view that has shrunk to a handful of rows is not scanned through a
//! dataset-sized mask.
//!
//! Parallelism is two-dimensional. Attributes are independent, and a
//! [`ShardPlan`](crate::shard::ShardPlan) additionally splits the view's
//! rows into contiguous shards whose per-shard statistics — all weight
//! sums — merge exactly. Workers claim `(attribute × shard)` partial tasks
//! off a shared counter (phase A); the main thread then reduces each
//! attribute's shard partials in **shard-index order** through
//! [`pnr_data::weights::ordered_sum`]-style left folds, charges the budget
//! and scores candidates in ascending attribute order (phase B). Because
//! [`find_best_condition_sequential`] accumulates through the *same* plan,
//! the threaded scan is bit-identical to it for any worker count —
//! including the "first best wins, lowest attribute index" tie-break.

use crate::budget::BudgetTracker;
use crate::condition::Condition;
use crate::shard::{worker_count, ShardPlan};
use crate::stats::{CovStats, EvalMetric};
use crate::task::TaskView;
use pnr_data::weights::{approx, ordered_sum};
use pnr_data::Column;
use pnr_telemetry::{Counter, TelemetrySink};
use std::sync::Arc;

/// Options controlling condition search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Evaluate explicit range conditions on numeric attributes (the
    /// paper's method). Disable to emulate learners that only use one-sided
    /// tests (RIPPER, C4.5) or for the `ablation_range` experiment.
    pub use_ranges: bool,
    /// Minimum weighted support (total covered weight) a candidate must
    /// retain. The P-phase sets this to its min-support floor; 0 disables.
    pub min_support_weight: f64,
    /// Optional `(pos_total, n_total)` context the metric is evaluated
    /// against, overriding the view's own totals. The paper scores both the
    /// current rule and its refinement "with respect to the distribution of
    /// target class in the data-set that remains after removing data
    /// supported by earlier rules" — i.e. against the rule's starting view,
    /// not the shrinking refinement view.
    pub context: Option<(f64, f64)>,
    /// Evaluate attributes on worker threads when the search is large
    /// enough to amortise the spawn cost (see
    /// [`Self::parallel_min_cells`]). The result is bit-identical to the
    /// sequential scan either way; disable to force single-threaded
    /// execution.
    pub parallel: bool,
    /// Minimum `view rows × attributes` product before the parallel path
    /// engages; defaults to [`PARALLEL_MIN_CELLS`]. Tests and benchmarks
    /// lower it to engage worker threads on small inputs; `0` always takes
    /// the threaded path (at least two workers, even on a single core), so
    /// the thread/merge machinery can be exercised anywhere.
    pub parallel_min_cells: usize,
    /// Optional training-budget tracker candidates are charged against.
    /// When a charge crosses the budget's candidate limit (or its
    /// wall-clock deadline has passed) the whole search call returns
    /// `None` and the tracker latches exhausted — partial scans are
    /// discarded so the outcome is deterministic under parallelism (see
    /// [`crate::budget`]).
    pub budget: Option<Arc<BudgetTracker>>,
    /// Telemetry receiver. The search reports candidate-evaluation
    /// counters, `ViewIndex` warm/cold projection hits and the effective
    /// worker policy through it; the default no-op sink makes every report
    /// a no-op branch. Telemetry is write-only — it never influences the
    /// search result.
    pub sink: Arc<dyn TelemetrySink>,
    /// Explicit worker-thread cap. `None` (default) leaves the
    /// size-based heuristic in charge; `Some(1)` forces the sequential
    /// scan; `Some(k)` with `k > 1` forces the threaded path with at
    /// most `k` workers even below [`Self::parallel_min_cells`] — the
    /// determinism harness uses this to prove bit-identity across
    /// thread counts on small fits.
    pub max_workers: Option<usize>,
    /// Row-shard count for the [`ShardPlan`]. `None` (default) keeps one
    /// shard, which reproduces the unsharded scan's float arithmetic
    /// exactly; `Some(k)` splits the view's rows into `k` contiguous
    /// shards (clamped to the row count). The plan — not the worker
    /// count — fixes the float-addition grouping, so a given shard
    /// request yields the same model on any machine. Must be ≥ 1.
    pub row_shards: Option<usize>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            use_ranges: true,
            min_support_weight: 0.0,
            context: None,
            parallel: true,
            parallel_min_cells: PARALLEL_MIN_CELLS,
            budget: None,
            sink: pnr_telemetry::noop(),
            max_workers: None,
            row_shards: None,
        }
    }
}

/// Charges `n` scored candidates against the options' budget tracker;
/// always `true` when no budget is attached. Mirrors every evaluation
/// into the telemetry sink: `ConditionsEvaluated` unconditionally, and
/// `CandidateCharges` for exactly the charges a live (un-exhausted)
/// tracker accepts, so sink and tracker totals agree while the budget
/// holds.
fn charge_candidates(opts: &SearchOptions, n: usize) -> bool {
    if opts.sink.enabled() {
        opts.sink.add(Counter::ConditionsEvaluated, n as u64);
    }
    match &opts.budget {
        Some(tracker) => {
            let was_live = !tracker.is_exhausted();
            let ok = tracker.charge_candidates(n as u64);
            if was_live && opts.sink.enabled() {
                opts.sink.add(Counter::CandidateCharges, n as u64);
            }
            ok
        }
        None => true,
    }
}

/// True when the attached budget can no longer fund this search call:
/// already latched exhausted, or past its wall-clock deadline.
fn budget_depleted(opts: &SearchOptions) -> bool {
    match &opts.budget {
        Some(tracker) => tracker.is_exhausted() || !tracker.check_deadline(),
        None => false,
    }
}

/// Minimum `view rows × attributes` product before a parallel search pays
/// for its thread spawns. Below this the sequential scan is used even with
/// [`SearchOptions::parallel`] set.
pub const PARALLEL_MIN_CELLS: usize = 16 * 1024;

/// A scored candidate condition.
#[derive(Debug, Clone)]
pub struct CandidateCondition {
    /// The condition itself.
    pub condition: Condition,
    /// Its weighted coverage over the searched view.
    pub stats: CovStats,
    /// Its evaluation-metric score.
    pub score: f64,
}

/// Tracks the best candidate seen; strictly-greater comparison keeps the
/// search deterministic (first best wins ties).
#[derive(Debug, Default)]
struct Best {
    cand: Option<CandidateCondition>,
}

impl Best {
    fn offer(&mut self, condition: Condition, stats: CovStats, score: f64) {
        if !score.is_finite() {
            return;
        }
        if self.cand.as_ref().is_none_or(|c| score > c.score) {
            self.cand = Some(CandidateCondition {
                condition,
                stats,
                score,
            });
        }
    }
}

/// Per-shard accumulation of one attribute's condition statistics: a pure
/// function of the shard's rows, computable on any thread.
enum ShardPartial {
    /// Per-dictionary-code positive/total covered weight over the shard's
    /// slice of the view's row set.
    Cat { pos: Vec<f64>, tot: Vec<f64> },
    /// Within-shard prefix sums at each distinct value of the shard's
    /// slice of the view's sorted projection.
    Num(Boundaries),
}

/// Finds the highest-scoring single condition over the view, or `None` when
/// no candidate has positive support under the constraints.
///
/// Large searches evaluate `(attribute × shard)` statistics tasks on worker
/// threads (unless [`SearchOptions::parallel`] is off); the merged result
/// is always bit-identical to [`find_best_condition_sequential`].
pub fn find_best_condition(
    view: &TaskView<'_>,
    metric: EvalMetric,
    opts: &SearchOptions,
) -> Option<CandidateCondition> {
    if view.is_empty() || budget_depleted(opts) {
        return None;
    }
    let n_attrs = view.data.n_attrs();
    let plan = ShardPlan::new(view.n_rows(), opts.row_shards);
    let tasks = n_attrs * plan.n_shards();
    let available = std::thread::available_parallelism().map_or(1, |p| p.get());
    let workers = worker_count(
        opts.parallel,
        opts.max_workers,
        opts.parallel_min_cells,
        view.n_rows() * n_attrs,
        tasks,
        available,
    );
    if workers <= 1 {
        return find_best_condition_sequential(view, metric, opts);
    }
    if opts.sink.enabled() {
        // Record the effective thread policy so sweeps read the real
        // worker count instead of guessing: mean workers per threaded
        // search = SearchWorkerThreads / ParallelSearchCalls.
        opts.sink.add(Counter::ParallelSearchCalls, 1);
        opts.sink.add(Counter::SearchWorkerThreads, workers as u64);
        // Warm/cold projection telemetry is classified here, before any
        // worker materialises a projection.
        for attr in 0..n_attrs {
            if matches!(view.data.column(attr), Column::Num(_)) {
                let counter = if view.projection_is_warm(attr) {
                    Counter::ViewWarmHits
                } else {
                    Counter::ViewColdBuilds
                };
                // lint:allow(telemetry-ungated) — inside the `sink.enabled()` block opened above
                opts.sink.add(counter, 1);
            }
        }
    }
    let (pos_total, n_total) = opts
        .context
        .unwrap_or_else(|| (view.pos_weight(), view.total_weight()));
    // Phase A: workers claim (attribute × shard) partial-statistics tasks
    // off a shared counter (task = attr * n_shards + shard); each slot is
    // written by exactly one worker.
    let slots: Vec<std::sync::Mutex<Option<ShardPartial>>> =
        (0..tasks).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Workers race only over *which* slot they fill; phase B below reduces
    // each attribute's shard partials in shard-index order and visits
    // attributes in ascending order on this thread, so the outcome is
    // bit-identical to the sequential scan. det:merge(shard-index-order)
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let task = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if task >= tasks {
                    break;
                }
                let attr = task / plan.n_shards();
                let (lo, hi) = plan.bounds(task % plan.n_shards());
                let partial = compute_shard_partial(view, attr, lo, hi);
                // Poison recovery is sound: each slot is written by exactly
                // one worker, and a panicked worker re-panics at scope join.
                *slots[task]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(partial);
            });
        }
    });
    // Phase B: deterministic reduce + charge + score on the main thread,
    // in ascending attribute order — the same sequence of budget charges
    // and `Best::offer`s the sequential scan makes.
    let mut slot_iter = slots.into_iter();
    let mut best = Best::default();
    for attr in 0..n_attrs {
        let partials: Vec<ShardPartial> = slot_iter
            .by_ref()
            .take(plan.n_shards())
            .filter_map(|s| {
                s.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect();
        score_merged_attribute(
            view, attr, partials, metric, opts, pos_total, n_total, &mut best,
        );
    }
    if budget_depleted(opts) {
        // The budget fired somewhere in this call: discard the partial
        // scan so the result does not depend on worker interleaving.
        return None;
    }
    best.cand
}

/// The single-threaded reference scan; [`find_best_condition`] must always
/// agree with it bit-for-bit. It accumulates through the same
/// [`ShardPlan`] as the threaded path, so a sharded scan has one defined
/// arithmetic regardless of worker count.
pub fn find_best_condition_sequential(
    view: &TaskView<'_>,
    metric: EvalMetric,
    opts: &SearchOptions,
) -> Option<CandidateCondition> {
    if view.is_empty() || budget_depleted(opts) {
        return None;
    }
    let plan = ShardPlan::new(view.n_rows(), opts.row_shards);
    let (pos_total, n_total) = opts
        .context
        .unwrap_or_else(|| (view.pos_weight(), view.total_weight()));
    let mut best = Best::default();
    for attr in 0..view.data.n_attrs() {
        if opts.sink.enabled() && matches!(view.data.column(attr), Column::Num(_)) {
            // Classified before the partial pass materialises the projection.
            let counter = if view.projection_is_warm(attr) {
                Counter::ViewWarmHits
            } else {
                Counter::ViewColdBuilds
            };
            opts.sink.add(counter, 1);
        }
        let partials: Vec<ShardPartial> = plan
            .ranges()
            .map(|(lo, hi)| compute_shard_partial(view, attr, lo, hi))
            .collect();
        score_merged_attribute(
            view, attr, partials, metric, opts, pos_total, n_total, &mut best,
        );
    }
    if budget_depleted(opts) {
        // Mirror of the parallel path: a budget that fired mid-call
        // invalidates the whole scan.
        return None;
    }
    best.cand
}

/// Computes one attribute's statistics over the shard rows `[lo, hi)` —
/// positions into the view's row set (categorical) or sorted projection
/// (numeric); both orders are fixed by the view, so the accumulation below
/// is deterministic per shard.
fn compute_shard_partial(view: &TaskView<'_>, attr: usize, lo: usize, hi: usize) -> ShardPartial {
    match view.data.column(attr) {
        Column::Cat(_) => {
            let n_values = view.data.schema().attr(attr).dict.len();
            let mut pos = vec![0.0f64; n_values];
            let mut tot = vec![0.0f64; n_values];
            for &r in &view.rows.as_slice()[lo..hi] {
                let code = view.data.cat(attr, r as usize) as usize;
                let w = view.weights[r as usize];
                tot[code] += w;
                if view.is_pos[r as usize] {
                    pos[code] += w;
                }
            }
            ShardPartial::Cat { pos, tot }
        }
        Column::Num(_) => {
            // The view's own sorted projection: one pass over exactly the
            // shard's rows, no dataset-sized mask. Row order (ascending
            // value, ties by row id) matches a mask-filtered scan of the
            // global sort index.
            let sorted = view.projection(attr);
            ShardPartial::Num(shard_boundaries(view, attr, &sorted[lo..hi]))
        }
    }
}

/// Merges per-attribute shard partials (in shard-index order) and scores
/// the attribute's candidates into `best`. This is the only scoring entry
/// point, shared verbatim by the sequential and threaded drivers.
#[allow(clippy::too_many_arguments)]
fn score_merged_attribute(
    view: &TaskView<'_>,
    attr: usize,
    partials: Vec<ShardPartial>,
    metric: EvalMetric,
    opts: &SearchOptions,
    pos_total: f64,
    n_total: f64,
    best: &mut Best,
) {
    match view.data.column(attr) {
        Column::Cat(_) => {
            let (pos, tot) = merge_cat_partials(partials);
            score_categorical(attr, &pos, &tot, metric, opts, pos_total, n_total, best);
        }
        Column::Num(_) => {
            let b = merge_num_partials(partials);
            score_numeric(attr, &b, metric, opts, pos_total, n_total, best);
        }
    }
}

/// Shard-index-order reduction of categorical partials: each code's
/// positive/total weight is an [`ordered_sum`] over the shards' local
/// sums, so the float-addition grouping is fixed by the plan alone. With a
/// single shard this is `0.0 + local`, bit-identical to the unsharded
/// counting pass.
fn merge_cat_partials(partials: Vec<ShardPartial>) -> (Vec<f64>, Vec<f64>) {
    let locals: Vec<(Vec<f64>, Vec<f64>)> = partials
        .into_iter()
        .filter_map(|p| match p {
            ShardPartial::Cat { pos, tot } => Some((pos, tot)),
            ShardPartial::Num(_) => None,
        })
        .collect();
    let n_values = locals.first().map_or(0, |(p, _)| p.len());
    let mut pos = vec![0.0f64; n_values];
    let mut tot = vec![0.0f64; n_values];
    for code in 0..n_values {
        // det:merge(shard-index-order) — `locals` preserves shard order
        pos[code] = ordered_sum(locals.iter().map(|(p, _)| p[code]));
        tot[code] = ordered_sum(locals.iter().map(|(_, t)| t[code]));
    }
    (pos, tot)
}

/// Shard-index-order reduction of numeric prefix partials. Each shard's
/// local prefix is offset by the running base — the left fold
/// [`ordered_sum`] performs, kept incremental so every shard is offset
/// exactly once — and a distinct value straddling a shard boundary
/// overwrites the previous entry, exactly as the unsharded prefix pass
/// overwrites repeated values. With a single shard the base is `0.0` and
/// the result is bit-identical to the unsharded scan.
fn merge_num_partials(partials: Vec<ShardPartial>) -> Boundaries {
    let locals: Vec<Boundaries> = partials
        .into_iter()
        .filter_map(|p| match p {
            ShardPartial::Num(b) => Some(b),
            ShardPartial::Cat { .. } => None,
        })
        .collect();
    let mut b = Boundaries {
        values: Vec::new(),
        cum_pos: Vec::new(),
        cum_tot: Vec::new(),
    };
    let mut base_pos = 0.0;
    let mut base_tot = 0.0;
    // det:merge(shard-index-order) — left fold over shards in index order
    for local in &locals {
        for i in 0..local.values.len() {
            let v = local.values[i];
            let cp = base_pos + local.cum_pos[i];
            let ct = base_tot + local.cum_tot[i];
            if b.values.last() == Some(&v) {
                let last = b.values.len() - 1;
                b.cum_pos[last] = cp;
                b.cum_tot[last] = ct;
            } else {
                b.values.push(v);
                b.cum_pos.push(cp);
                b.cum_tot.push(ct);
            }
        }
        if let (Some(&lp), Some(&lt)) = (local.cum_pos.last(), local.cum_tot.last()) {
            base_pos += lp; // lint:allow(unordered-float-sum) — shard-index-order left fold
            base_tot += lt; // lint:allow(unordered-float-sum) — shard-index-order left fold
        }
    }
    b
}

#[allow(clippy::too_many_arguments)]
fn score_categorical(
    attr: usize,
    pos: &[f64],
    tot: &[f64],
    metric: EvalMetric,
    opts: &SearchOptions,
    pos_total: f64,
    n_total: f64,
    best: &mut Best,
) {
    let n_values = tot.len();
    if n_values == 0 {
        return;
    }
    // One scored candidate per dictionary value.
    if !charge_candidates(opts, n_values) {
        return;
    }
    for code in 0..n_values {
        if approx::is_zero(tot[code]) || tot[code] < opts.min_support_weight {
            continue;
        }
        let stats = CovStats::new(pos[code], tot[code]);
        let score = metric.score(stats, pos_total, n_total);
        best.offer(
            Condition::CatEq {
                attr,
                value: pnr_data::index::to_u32(code, "dictionary code"),
            },
            stats,
            score,
        );
    }
}

/// Cumulative weights at each distinct-value boundary of a numeric attribute
/// restricted to a run of projection rows: `cum_pos[i]` / `cum_tot[i]` cover
/// all scanned rows with value ≤ `values[i]`. Built per shard by
/// [`shard_boundaries`] and reduced by [`merge_num_partials`].
struct Boundaries {
    values: Vec<f64>,
    cum_pos: Vec<f64>,
    cum_tot: Vec<f64>,
}

impl Boundaries {
    /// Threshold for a cut after boundary `i`: the midpoint between the
    /// boundary value and the next distinct value. Train-set coverage is
    /// identical to cutting at the value itself, but the midpoint
    /// generalises symmetrically to unseen records between the two training
    /// values.
    fn threshold(&self, i: usize) -> f64 {
        if i + 1 < self.values.len() {
            (self.values[i] + self.values[i + 1]) / 2.0
        } else {
            self.values[i]
        }
    }

    /// Lower bound for a range starting after boundary `i` (midpoint below).
    fn lower_threshold(&self, i: usize) -> f64 {
        self.threshold(i)
    }
    /// Coverage of the half-open interval `(values[lo_idx], values[hi_idx]]`;
    /// `lo_idx == None` means unbounded below.
    fn interval(&self, lo_idx: Option<usize>, hi_idx: usize) -> CovStats {
        let (lp, lt) = match lo_idx {
            Some(i) => (self.cum_pos[i], self.cum_tot[i]),
            None => (0.0, 0.0),
        };
        CovStats::new(self.cum_pos[hi_idx] - lp, self.cum_tot[hi_idx] - lt)
    }

    fn len(&self) -> usize {
        self.values.len()
    }
}

/// Builds one shard's local boundary prefix over `sorted`, a contiguous
/// slice of the view's sorted projection. The float accumulation runs in
/// slice order (ascending value, ties by row id) starting from zero, so a
/// whole-projection slice reproduces the historical unsharded pass exactly.
fn shard_boundaries(view: &TaskView<'_>, attr: usize, sorted: &[u32]) -> Boundaries {
    let mut b = Boundaries {
        values: Vec::new(),
        cum_pos: Vec::new(),
        cum_tot: Vec::new(),
    };
    let mut cum_pos = 0.0;
    let mut cum_tot = 0.0;
    for &r in sorted {
        let v = view.data.num(attr, r as usize);
        let w = view.weights[r as usize];
        cum_tot += w; // lint:allow(unordered-float-sum) — prefix sum in sorted-projection order
        if view.is_pos[r as usize] {
            cum_pos += w; // lint:allow(unordered-float-sum) — same ordered prefix pass
        }
        if b.values.last() == Some(&v) {
            let last = b.values.len() - 1;
            b.cum_pos[last] = cum_pos;
            b.cum_tot[last] = cum_tot;
        } else {
            b.values.push(v);
            b.cum_pos.push(cum_pos);
            b.cum_tot.push(cum_tot);
        }
    }
    b
}

#[allow(clippy::too_many_arguments)]
fn score_numeric(
    attr: usize,
    b: &Boundaries,
    metric: EvalMetric,
    opts: &SearchOptions,
    pos_total: f64,
    n_total: f64,
    best: &mut Best,
) {
    if b.len() < 2 {
        // A constant attribute offers no split.
        return;
    }
    // Two one-sided candidates per interior boundary.
    if !charge_candidates(opts, (b.len() - 1) * 2) {
        return;
    }
    // b.len() >= 2 was checked above, so the last boundary exists.
    let all = CovStats::new(b.cum_pos[b.len() - 1], b.cum_tot[b.len() - 1]);

    // One-sided scan. The last boundary is excluded for `≤` (covers all) and
    // for `>` (covers nothing).
    let mut best_le: Option<(usize, f64)> = None;
    let mut best_gt: Option<(usize, f64)> = None;
    for i in 0..b.len() - 1 {
        let le = b.interval(None, i);
        if le.total >= opts.min_support_weight {
            let s = metric.score(le, pos_total, n_total);
            if s.is_finite() && best_le.is_none_or(|(_, bs)| s > bs) {
                best_le = Some((i, s));
            }
        }
        let gt = CovStats::new(all.pos - le.pos, all.total - le.total);
        if gt.total >= opts.min_support_weight {
            let s = metric.score(gt, pos_total, n_total);
            if s.is_finite() && best_gt.is_none_or(|(_, bs)| s > bs) {
                best_gt = Some((i, s));
            }
        }
    }
    if let Some((i, s)) = best_le {
        best.offer(
            Condition::NumLe {
                attr,
                value: b.threshold(i),
            },
            b.interval(None, i),
            s,
        );
    }
    if let Some((i, s)) = best_gt {
        let le = b.interval(None, i);
        let stats = CovStats::new(all.pos - le.pos, all.total - le.total);
        best.offer(
            Condition::NumGt {
                attr,
                value: b.threshold(i),
            },
            stats,
            s,
        );
    }

    if !opts.use_ranges {
        return;
    }

    // Range scan: fix the better one-sided bound and sweep the other side.
    let (le_score, gt_score) = (
        best_le.map_or(f64::NEG_INFINITY, |(_, s)| s),
        best_gt.map_or(f64::NEG_INFINITY, |(_, s)| s),
    );
    if le_score == f64::NEG_INFINITY && gt_score == f64::NEG_INFINITY {
        return;
    }
    if gt_score >= le_score {
        // Best one-sided is `A > v_lo` (a finite gt_score implies the
        // candidate exists): fix lo, scan hi to the right.
        let Some((lo_idx, _)) = best_gt else { return };
        if !charge_candidates(opts, (b.len() - 1).saturating_sub(lo_idx + 1)) {
            return;
        }
        for hi_idx in lo_idx + 1..b.len() - 1 {
            let stats = b.interval(Some(lo_idx), hi_idx);
            if stats.total < opts.min_support_weight {
                continue;
            }
            let s = metric.score(stats, pos_total, n_total);
            best.offer(
                Condition::NumRange {
                    attr,
                    lo: b.lower_threshold(lo_idx),
                    hi: b.threshold(hi_idx),
                },
                stats,
                s,
            );
        }
    } else {
        // Best one-sided is `A ≤ v_hi` (a finite le_score implies the
        // candidate exists): fix hi, scan lo to the left.
        let Some((hi_idx, _)) = best_le else { return };
        if !charge_candidates(opts, hi_idx) {
            return;
        }
        for lo_idx in 0..hi_idx {
            let stats = b.interval(Some(lo_idx), hi_idx);
            if stats.total < opts.min_support_weight {
                continue;
            }
            let s = metric.score(stats, pos_total, n_total);
            best.offer(
                Condition::NumRange {
                    attr,
                    lo: b.lower_threshold(lo_idx),
                    hi: b.threshold(hi_idx),
                },
                stats,
                s,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};

    fn numeric_data(values: &[(f64, bool)]) -> (Dataset, Vec<bool>) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for &(x, p) in values {
            b.push_row(&[Value::num(x)], if p { "pos" } else { "neg" }, 1.0)
                .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        (d, is_pos)
    }

    #[test]
    fn one_sided_threshold_found_on_separable_data() {
        let (d, is_pos) = numeric_data(&[(1.0, true), (2.0, true), (3.0, false), (4.0, false)]);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let best =
            find_best_condition(&v, EvalMetric::EntropyGain, &SearchOptions::default()).unwrap();
        // x ≤ 2 isolates the positives perfectly
        assert_eq!(best.stats.pos, 2.0);
        assert_eq!(best.stats.total, 2.0);
        match best.condition {
            // midpoint between the boundary value 2 and the next value 3
            Condition::NumLe { value, .. } => assert_eq!(value, 2.5),
            ref c => panic!("expected NumLe, got {c:?}"),
        }
    }

    #[test]
    fn range_condition_isolates_interior_peak() {
        // positives form an interior band: only a range isolates them in one step
        let rows: Vec<(f64, bool)> = (0..20).map(|i| (i as f64, (8..12).contains(&i))).collect();
        let (d, is_pos) = numeric_data(&rows);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let best = find_best_condition(&v, EvalMetric::ZNumber, &SearchOptions::default()).unwrap();
        match best.condition {
            Condition::NumRange { lo, hi, .. } => {
                // midpoints between the boundary values and their neighbours
                assert_eq!(lo, 7.5);
                assert_eq!(hi, 11.5);
            }
            ref c => panic!("expected NumRange, got {c:?}"),
        }
        assert_eq!(best.stats.pos, 4.0);
        assert_eq!(best.stats.total, 4.0);
    }

    #[test]
    fn disabling_ranges_falls_back_to_one_sided() {
        let rows: Vec<(f64, bool)> = (0..20).map(|i| (i as f64, (8..12).contains(&i))).collect();
        let (d, is_pos) = numeric_data(&rows);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let opts = SearchOptions {
            use_ranges: false,
            ..Default::default()
        };
        let best = find_best_condition(&v, EvalMetric::ZNumber, &opts).unwrap();
        assert!(
            matches!(
                best.condition,
                Condition::NumLe { .. } | Condition::NumGt { .. }
            ),
            "got {:?}",
            best.condition
        );
    }

    #[test]
    fn range_never_scores_worse_than_best_one_sided() {
        // On several random-ish configurations the returned best candidate
        // with ranges enabled must score >= the best without ranges.
        let patterns: Vec<Vec<(f64, bool)>> = vec![
            (0..30).map(|i| (i as f64 % 7.0, i % 3 == 0)).collect(),
            (0..30).map(|i| ((i * i % 13) as f64, i % 5 == 0)).collect(),
            (0..30).map(|i| (i as f64, i >= 25)).collect(),
        ];
        for rows in patterns {
            let (d, is_pos) = numeric_data(&rows);
            let v = TaskView::full(&d, &is_pos, d.weights());
            let with = find_best_condition(&v, EvalMetric::ZNumber, &SearchOptions::default());
            let without = find_best_condition(
                &v,
                EvalMetric::ZNumber,
                &SearchOptions {
                    use_ranges: false,
                    ..Default::default()
                },
            );
            match (with, without) {
                (Some(w), Some(wo)) => assert!(w.score >= wo.score - 1e-12),
                (None, Some(_)) => panic!("range search lost candidates"),
                _ => {}
            }
        }
    }

    #[test]
    fn categorical_value_selected() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("pos");
        b.add_class("neg");
        for (k, c) in [
            ("a", "pos"),
            ("a", "pos"),
            ("b", "neg"),
            ("c", "neg"),
            ("a", "neg"),
        ] {
            b.push_row(&[Value::cat(k)], c, 1.0).unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let best = find_best_condition(&v, EvalMetric::ZNumber, &SearchOptions::default()).unwrap();
        match best.condition {
            Condition::CatEq { attr: 0, value } => {
                assert_eq!(d.schema().attr(0).dict.name(value), "a")
            }
            ref c => panic!("expected CatEq, got {c:?}"),
        }
        assert_eq!(best.stats.pos, 2.0);
        assert_eq!(best.stats.total, 3.0);
    }

    #[test]
    fn min_support_filters_small_candidates() {
        let (d, is_pos) = numeric_data(&[
            (1.0, true),
            (2.0, false),
            (2.0, false),
            (3.0, false),
            (3.0, true),
            (4.0, false),
        ]);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let opts = SearchOptions {
            min_support_weight: 3.0,
            ..Default::default()
        };
        let best = find_best_condition(&v, EvalMetric::ZNumber, &opts);
        if let Some(c) = best {
            assert!(
                c.stats.total >= 3.0,
                "support {} below floor",
                c.stats.total
            );
        }
    }

    #[test]
    fn constant_attribute_yields_no_candidate() {
        let (d, is_pos) = numeric_data(&[(5.0, true), (5.0, false), (5.0, false)]);
        let v = TaskView::full(&d, &is_pos, d.weights());
        assert!(find_best_condition(&v, EvalMetric::ZNumber, &SearchOptions::default()).is_none());
    }

    #[test]
    fn empty_view_yields_none() {
        let (d, is_pos) = numeric_data(&[(1.0, true)]);
        let v = TaskView::over(&d, pnr_data::RowSet::empty(), &is_pos, d.weights());
        assert!(find_best_condition(&v, EvalMetric::ZNumber, &SearchOptions::default()).is_none());
    }

    #[test]
    fn weighted_rows_shift_the_chosen_threshold() {
        // One heavy positive at x=10 outweighs several unit negatives.
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        b.push_row(&[Value::num(10.0)], "pos", 50.0).unwrap();
        for i in 0..5 {
            b.push_row(&[Value::num(i as f64)], "neg", 1.0).unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let best = find_best_condition(&v, EvalMetric::ZNumber, &SearchOptions::default()).unwrap();
        assert_eq!(best.stats.pos, 50.0);
        assert_eq!(best.stats.neg(), 0.0);
    }

    #[test]
    fn brute_force_agreement_one_sided() {
        // Exhaustively verify the scan equals brute-force enumeration of all
        // one-sided conditions on a small dataset.
        let rows: Vec<(f64, bool)> = (0..15).map(|i| ((i % 5) as f64, i % 4 == 0)).collect();
        let (d, is_pos) = numeric_data(&rows);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let opts = SearchOptions {
            use_ranges: false,
            ..Default::default()
        };
        let got = find_best_condition(&v, EvalMetric::EntropyGain, &opts).unwrap();

        let mut want = f64::NEG_INFINITY;
        for t in 0..5 {
            for cond in [
                Condition::NumLe {
                    attr: 0,
                    value: t as f64,
                },
                Condition::NumGt {
                    attr: 0,
                    value: t as f64,
                },
            ] {
                let stats = v.coverage(&crate::rule::Rule::new(vec![cond]));
                if stats.total > 0.0 && stats.total < v.total_weight() {
                    let s = EvalMetric::EntropyGain.score(stats, v.pos_weight(), v.total_weight());
                    want = want.max(s);
                }
            }
        }
        assert!(
            (got.score - want).abs() < 1e-12,
            "scan {} vs brute {}",
            got.score,
            want
        );
    }

    #[test]
    fn brute_force_agreement_with_ranges_on_restricted_view() {
        // The range scan on a *derived* view (its boundaries come from the
        // chained sorted projection, not a full-dataset scan): the winner's
        // stats must equal its re-computed coverage, its score must beat
        // every one-sided condition, and it can never exceed the global
        // optimum over all (lo, hi] ranges.
        let rows: Vec<(f64, bool)> = (0..40)
            .map(|i| ((i % 8) as f64, (3..6).contains(&(i % 8))))
            .collect();
        let (d, is_pos) = numeric_data(&rows);
        let full = TaskView::full(&d, &is_pos, d.weights());
        let v = full.restricted_to(full.rows.filter(|r| r % 3 != 1));
        let metric = EvalMetric::ZNumber;
        let got = find_best_condition(&v, metric, &SearchOptions::default()).unwrap();

        let re_cov = v.coverage(&crate::rule::Rule::new(vec![got.condition.clone()]));
        assert_eq!(
            got.stats, re_cov,
            "stats must match coverage on the restricted view"
        );
        assert!((got.score - metric.score(re_cov, v.pos_weight(), v.total_weight())).abs() < 1e-12);

        let mut one_sided = f64::NEG_INFINITY;
        let mut all_ranges = f64::NEG_INFINITY;
        let values: Vec<f64> = (0..8).map(|t| t as f64).collect();
        for (i, &t) in values.iter().enumerate() {
            for cond in [
                Condition::NumLe { attr: 0, value: t },
                Condition::NumGt { attr: 0, value: t },
            ] {
                let c = v.coverage(&crate::rule::Rule::new(vec![cond]));
                if c.total > 0.0 && c.total < v.total_weight() {
                    one_sided = one_sided.max(metric.score(c, v.pos_weight(), v.total_weight()));
                }
            }
            for &hi in &values[i + 1..] {
                let c = v.coverage(&crate::rule::Rule::new(vec![Condition::NumRange {
                    attr: 0,
                    lo: t,
                    hi,
                }]));
                if c.total > 0.0 {
                    all_ranges = all_ranges.max(metric.score(c, v.pos_weight(), v.total_weight()));
                }
            }
        }
        assert!(
            got.score >= one_sided - 1e-12,
            "range scan lost to a one-sided cut"
        );
        assert!(
            got.score <= all_ranges + 1e-12,
            "scored above the global range optimum"
        );
    }

    #[test]
    fn tiny_candidate_budget_aborts_the_search() {
        let rows: Vec<(f64, bool)> = (0..20).map(|i| (i as f64, (8..12).contains(&i))).collect();
        let (d, is_pos) = numeric_data(&rows);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let tracker = crate::budget::FitBudget {
            max_candidates: Some(1),
            ..Default::default()
        }
        .start()
        .map(std::sync::Arc::new);
        let opts = SearchOptions {
            budget: tracker.clone(),
            ..Default::default()
        };
        assert!(find_best_condition(&v, EvalMetric::ZNumber, &opts).is_none());
        assert!(tracker.unwrap().is_exhausted());
        // A later call against the latched tracker also returns None.
        assert!(find_best_condition(&v, EvalMetric::ZNumber, &opts).is_none());
    }

    #[test]
    fn ample_candidate_budget_matches_unbudgeted_search() {
        let rows: Vec<(f64, bool)> = (0..20).map(|i| (i as f64, (8..12).contains(&i))).collect();
        let (d, is_pos) = numeric_data(&rows);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let tracker = crate::budget::FitBudget {
            max_candidates: Some(1_000_000),
            ..Default::default()
        }
        .start()
        .map(std::sync::Arc::new);
        let opts = SearchOptions {
            budget: tracker.clone(),
            ..Default::default()
        };
        let budgeted = find_best_condition(&v, EvalMetric::ZNumber, &opts).unwrap();
        let free = find_best_condition(&v, EvalMetric::ZNumber, &SearchOptions::default()).unwrap();
        assert_eq!(budgeted.condition, free.condition);
        assert_eq!(budgeted.score.to_bits(), free.score.to_bits());
        let tracker = tracker.unwrap();
        assert!(!tracker.is_exhausted());
        assert!(tracker.candidates_charged() > 0);
    }

    #[test]
    fn expired_deadline_returns_none_without_scanning() {
        let rows: Vec<(f64, bool)> = (0..20).map(|i| (i as f64, i % 2 == 0)).collect();
        let (d, is_pos) = numeric_data(&rows);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let tracker = crate::budget::FitBudget {
            wall_clock_secs: Some(0.0),
            ..Default::default()
        }
        .start()
        .map(std::sync::Arc::new);
        let opts = SearchOptions {
            budget: tracker.clone(),
            ..Default::default()
        };
        assert!(find_best_condition(&v, EvalMetric::ZNumber, &opts).is_none());
        let tracker = tracker.unwrap();
        assert!(tracker.is_exhausted());
        assert_eq!(tracker.candidates_charged(), 0);
    }

    /// A mixed-type dataset for the parallel/sharded identity tests.
    fn mixed_data() -> (Dataset, Vec<bool>) {
        let rows: Vec<(f64, bool)> = (0..60)
            .map(|i| (((i * 7) % 13) as f64, i % 4 == 0))
            .collect();
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("y", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("pos");
        b.add_class("neg");
        for (i, &(x, p)) in rows.iter().enumerate() {
            let k = ["a", "b", "c"][i % 3];
            b.push_row(
                &[Value::num(x), Value::num((i % 5) as f64), Value::cat(k)],
                if p { "pos" } else { "neg" },
                1.0 + (i % 3) as f64 * 0.25,
            )
            .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        (d, is_pos)
    }

    #[test]
    fn forced_parallel_matches_sequential_search() {
        let (d, is_pos) = mixed_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        for metric in [
            EvalMetric::ZNumber,
            EvalMetric::FoilGain,
            EvalMetric::Laplace,
        ] {
            let par = SearchOptions {
                parallel_min_cells: 0,
                ..Default::default()
            };
            let seq = SearchOptions {
                parallel: false,
                ..Default::default()
            };
            let g = find_best_condition(&v, metric, &par).unwrap();
            let s = find_best_condition_sequential(&v, metric, &seq).unwrap();
            assert_eq!(g.condition, s.condition, "{metric:?}");
            assert_eq!(g.score.to_bits(), s.score.to_bits(), "{metric:?}");
            assert_eq!(g.stats, s.stats, "{metric:?}");
        }
    }

    #[test]
    fn row_sharded_parallel_matches_row_sharded_sequential() {
        // For every shard count, the threaded (attr × shard) scan must be
        // bit-identical to the sequential scan over the *same* plan, even
        // with non-unit weights.
        let (d, is_pos) = mixed_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        for shards in [1usize, 2, 3, 7, 60, 200] {
            let par = SearchOptions {
                parallel_min_cells: 0,
                row_shards: Some(shards),
                ..Default::default()
            };
            let seq = SearchOptions {
                parallel: false,
                row_shards: Some(shards),
                ..Default::default()
            };
            let g = find_best_condition(&v, EvalMetric::ZNumber, &par).unwrap();
            let s = find_best_condition_sequential(&v, EvalMetric::ZNumber, &seq).unwrap();
            assert_eq!(g.condition, s.condition, "shards={shards}");
            assert_eq!(g.score.to_bits(), s.score.to_bits(), "shards={shards}");
            assert_eq!(g.stats, s.stats, "shards={shards}");
        }
    }

    #[test]
    fn unit_weight_shard_sweep_is_bit_identical_to_unsharded() {
        // With unit weights every partial sum is a small integer, exact in
        // f64 under any grouping — so even *different* shard counts agree
        // bitwise. This is the invariant the determinism harness and the
        // training bench's bit-identity gate rely on.
        let rows: Vec<(f64, bool)> = (0..80)
            .map(|i| (((i * 11) % 17) as f64, i % 5 == 0))
            .collect();
        let (d, is_pos) = numeric_data(&rows);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let baseline =
            find_best_condition_sequential(&v, EvalMetric::ZNumber, &SearchOptions::default())
                .unwrap();
        for shards in [2usize, 3, 8, 80] {
            let opts = SearchOptions {
                row_shards: Some(shards),
                ..Default::default()
            };
            let got = find_best_condition_sequential(&v, EvalMetric::ZNumber, &opts).unwrap();
            assert_eq!(got.condition, baseline.condition, "shards={shards}");
            assert_eq!(
                got.score.to_bits(),
                baseline.score.to_bits(),
                "shards={shards}"
            );
            assert_eq!(got.stats, baseline.stats, "shards={shards}");
        }
    }

    #[test]
    fn parallel_search_telemetry_records_worker_policy() {
        let (d, is_pos) = mixed_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let sink = std::sync::Arc::new(pnr_telemetry::RecordingSink::new());
        let opts = SearchOptions {
            parallel_min_cells: 0,
            sink: sink.clone(),
            ..Default::default()
        };
        find_best_condition(&v, EvalMetric::ZNumber, &opts).unwrap();
        let calls = sink.value(Counter::ParallelSearchCalls);
        let threads = sink.value(Counter::SearchWorkerThreads);
        assert_eq!(calls, 1, "one threaded search");
        assert!(threads >= 2, "forced path spawns at least two workers");
        // Sequential scans record no worker policy.
        let seq_sink = std::sync::Arc::new(pnr_telemetry::RecordingSink::new());
        let seq = SearchOptions {
            parallel: false,
            sink: seq_sink.clone(),
            ..Default::default()
        };
        find_best_condition(&v, EvalMetric::ZNumber, &seq).unwrap();
        assert_eq!(seq_sink.value(Counter::ParallelSearchCalls), 0);
        assert_eq!(seq_sink.value(Counter::SearchWorkerThreads), 0);
    }
}
