//! The common classifier interface every learner's model implements.

use pnr_data::Dataset;
use pnr_metrics::{BinaryConfusion, PrCurve};

/// A trained binary (target vs rest) classifier.
///
/// `score` returns an estimate of `P(target | record)` in `[0,1]`;
/// `predict` thresholds it. PNrule's ScoreMatrix produces calibrated-ish
/// probabilities, RIPPER and C4.5rules produce {0,1}-style scores from their
/// crisp decisions — both fit this interface, which is what the experiment
/// harness evaluates.
pub trait BinaryClassifier {
    /// Probability-like score that `row` of `data` belongs to the target
    /// class.
    fn score(&self, data: &Dataset, row: usize) -> f64;

    /// Crisp decision at the classifier's threshold (default 0.5).
    fn predict(&self, data: &Dataset, row: usize) -> bool {
        self.score(data, row) > 0.5
    }
}

/// A classifier that predicts a constant score; the degenerate model the
/// paper's accuracy critique warns about ("predict everything non-target"),
/// useful as a floor baseline in tests and benches.
#[derive(Debug, Clone, Copy)]
pub struct ConstantClassifier {
    /// The constant score returned for every record.
    pub score: f64,
}

impl BinaryClassifier for ConstantClassifier {
    fn score(&self, _data: &Dataset, _row: usize) -> f64 {
        self.score
    }
}

/// Evaluates `clf` on every row of `data`, treating records labelled
/// `target` as actual positives. Cells accumulate record weights.
pub fn evaluate_classifier<C: BinaryClassifier + ?Sized>(
    clf: &C,
    data: &Dataset,
    target: u32,
) -> BinaryConfusion {
    let mut cm = BinaryConfusion::new();
    for row in 0..data.n_rows() {
        cm.record(
            data.label(row) == target,
            clf.predict(data, row),
            data.weight(row),
        );
    }
    cm
}

/// Builds the precision-recall curve of `clf`'s scores over `data` for the
/// `target` class — the threshold-free view of a scored rare-class
/// classifier.
pub fn score_curve<C: BinaryClassifier + ?Sized>(clf: &C, data: &Dataset, target: u32) -> PrCurve {
    let scored: Vec<(f64, bool, f64)> = (0..data.n_rows())
        .map(|row| {
            (
                clf.score(data, row),
                data.label(row) == target,
                data.weight(row),
            )
        })
        .collect();
    PrCurve::from_scored(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn data() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..10 {
            b.push_row(
                &[Value::num(i as f64)],
                if i < 3 { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        b.finish()
    }

    struct ThresholdClf;
    impl BinaryClassifier for ThresholdClf {
        fn score(&self, data: &Dataset, row: usize) -> f64 {
            if data.num(0, row) < 4.0 {
                0.9
            } else {
                0.1
            }
        }
    }

    #[test]
    fn evaluate_counts_cells() {
        let d = data();
        let cm = evaluate_classifier(&ThresholdClf, &d, 0);
        // predicts rows 0..4 positive; actual positives are rows 0..3
        assert_eq!(cm.tp, 3.0);
        assert_eq!(cm.fp, 1.0);
        assert_eq!(cm.fn_, 0.0);
        assert_eq!(cm.tn, 6.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.precision(), 0.75);
    }

    #[test]
    fn constant_all_negative_has_zero_f() {
        let d = data();
        let cm = evaluate_classifier(&ConstantClassifier { score: 0.0 }, &d, 0);
        assert_eq!(cm.f_measure(), 0.0);
        assert!(cm.accuracy() > 0.5);
    }

    #[test]
    fn constant_all_positive_has_full_recall() {
        let d = data();
        let cm = evaluate_classifier(&ConstantClassifier { score: 1.0 }, &d, 0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.precision(), 0.3);
    }

    #[test]
    fn score_curve_ranks_threshold_classifier_perfectly() {
        let d = data();
        let curve = score_curve(&ThresholdClf, &d, 0);
        assert!(!curve.is_empty());
        // ThresholdClf scores rows 0..4 high; actual positives are 0..3:
        // best F on the curve is 2*1.0*0.75/1.75
        let best = curve.best_f_point().unwrap();
        assert!((best.f - 6.0 / 7.0).abs() < 1e-9, "best F {}", best.f);
    }

    #[test]
    fn predict_thresholds_score() {
        let d = data();
        let c = ConstantClassifier { score: 0.5 };
        assert!(!c.predict(&d, 0), "score exactly 0.5 is not positive");
    }
}
