//! Weighted rule-evaluation statistics.
//!
//! Every statistic scores a candidate rule from four weighted counts: the
//! rule's coverage of target examples (`pos`), its total coverage
//! (`total` — the paper's notion of *support*, "the total number of examples
//! a rule covers, positive as well as negative"), and the same two numbers
//! for the data the rule is being evaluated against (`pos_total`, `n_total`).

use pnr_data::weights::approx;
use serde::{Deserialize, Serialize};

/// Weighted coverage of a candidate rule or condition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CovStats {
    /// Weight of covered target-class examples.
    pub pos: f64,
    /// Weight of all covered examples (the rule's *support*).
    pub total: f64,
}

impl CovStats {
    /// Builds from the two weights.
    pub fn new(pos: f64, total: f64) -> Self {
        debug_assert!(
            pos >= -1e-9 && total + 1e-9 >= pos,
            "pos={pos} total={total}"
        );
        CovStats { pos, total }
    }

    /// Weight of covered non-target examples.
    pub fn neg(&self) -> f64 {
        self.total - self.pos
    }

    /// The rule's accuracy `pos / total` (0 on empty coverage).
    pub fn accuracy(&self) -> f64 {
        if approx::is_zero(self.total) {
            0.0
        } else {
            self.pos / self.total
        }
    }
}

/// The statistic used to rank candidate rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalMetric {
    /// The PNrule default (section 2.2): a one-sample z-statistic of the
    /// rule's accuracy against the target prior, scaled by the square root
    /// of the rule's support — high for rules with *both* high support and
    /// accuracy above the prior.
    ZNumber,
    /// FOIL's information gain, the growth metric of RIPPER:
    /// `pos · (log₂ a − log₂ a₀)`.
    FoilGain,
    /// Reduction of binary class entropy when the data is split into
    /// covered / uncovered.
    EntropyGain,
    /// Entropy gain divided by the split information (C4.5's criterion
    /// specialised to the covered/uncovered split).
    GainRatio,
    /// Reduction of Gini impurity when splitting into covered / uncovered.
    GiniGain,
    /// Pearson χ² statistic of the 2×2 coverage-vs-class table.
    ChiSquared,
    /// Laplace-corrected accuracy `(pos + 1) / (total + 2)`.
    Laplace,
}

impl EvalMetric {
    /// Scores a candidate with coverage `c` against a context with
    /// `pos_total` target weight among `n_total` total weight. Larger is
    /// better for every metric. Candidates with zero support score
    /// `f64::NEG_INFINITY` so they are never selected.
    pub fn score(self, c: CovStats, pos_total: f64, n_total: f64) -> f64 {
        if c.total <= 0.0 {
            return f64::NEG_INFINITY;
        }
        match self {
            EvalMetric::ZNumber => z_number(c, pos_total, n_total),
            EvalMetric::FoilGain => foil_gain(c, pos_total, n_total),
            EvalMetric::EntropyGain => entropy_gain(c, pos_total, n_total),
            EvalMetric::GainRatio => gain_ratio(c, pos_total, n_total),
            EvalMetric::GiniGain => gini_gain(c, pos_total, n_total),
            EvalMetric::ChiSquared => chi_squared(c, pos_total, n_total),
            EvalMetric::Laplace => (c.pos + 1.0) / (c.total + 2.0),
        }
    }
}

/// Z-number: `√S · (a − p₀) / √(p₀(1−p₀))` where `S` is the rule's support,
/// `a` its accuracy and `p₀` the prior target fraction. Positive iff the
/// rule beats the prior; grows with support at fixed accuracy.
pub fn z_number(c: CovStats, pos_total: f64, n_total: f64) -> f64 {
    if n_total <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let p0 = pos_total / n_total;
    let sigma0 = (p0 * (1.0 - p0)).sqrt();
    if approx::is_zero(sigma0) {
        // Degenerate prior (all-positive or all-negative data): no
        // candidate can beat or trail it; every rule is equally scored.
        return 0.0;
    }
    c.total.sqrt() * (c.accuracy() - p0) / sigma0
}

/// FOIL gain: `pos · (log₂(pos/total) − log₂(pos₀/total₀))` with the usual
/// +1 smoothing on the accuracy terms to tolerate empty coverage.
pub fn foil_gain(c: CovStats, pos_total: f64, n_total: f64) -> f64 {
    if approx::is_zero(c.pos) {
        // No positives covered: the gain is defined as 0 at best, and we
        // want such candidates ranked below any that covers a positive.
        return f64::NEG_INFINITY;
    }
    let acc1 = (c.pos + 1.0) / (c.total + 1.0);
    let acc0 = (pos_total + 1.0) / (n_total + 1.0);
    c.pos * (acc1.log2() - acc0.log2())
}

fn entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
    }
}

/// Entropy gain of the covered/uncovered split.
pub fn entropy_gain(c: CovStats, pos_total: f64, n_total: f64) -> f64 {
    if n_total <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let p0 = pos_total / n_total;
    let w_in = c.total / n_total;
    let w_out = 1.0 - w_in;
    let pos_out = pos_total - c.pos;
    let total_out = n_total - c.total;
    let h_out = if total_out <= 0.0 {
        0.0
    } else {
        entropy(pos_out / total_out)
    };
    entropy(p0) - w_in * entropy(c.accuracy()) - w_out * h_out
}

/// Gain ratio: entropy gain normalised by the split information of the
/// covered/uncovered partition.
pub fn gain_ratio(c: CovStats, pos_total: f64, n_total: f64) -> f64 {
    if n_total <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let w_in = c.total / n_total;
    let split_info = entropy(w_in);
    if approx::is_zero(split_info) {
        return 0.0;
    }
    entropy_gain(c, pos_total, n_total) / split_info
}

/// Gini gain of the covered/uncovered split.
pub fn gini_gain(c: CovStats, pos_total: f64, n_total: f64) -> f64 {
    if n_total <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let gini = |p: f64| 2.0 * p * (1.0 - p);
    let p0 = pos_total / n_total;
    let w_in = c.total / n_total;
    let w_out = 1.0 - w_in;
    let pos_out = pos_total - c.pos;
    let total_out = n_total - c.total;
    let g_out = if total_out <= 0.0 {
        0.0
    } else {
        gini(pos_out / total_out)
    };
    gini(p0) - w_in * gini(c.accuracy()) - w_out * g_out
}

/// Pearson χ² of the 2×2 (covered?, target?) contingency table, signed by
/// whether the rule's accuracy beats the prior so that anti-correlated
/// candidates rank below uninformative ones.
pub fn chi_squared(c: CovStats, pos_total: f64, n_total: f64) -> f64 {
    if n_total <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let p0 = pos_total / n_total;
    let observed = [
        c.pos,                                     // covered, target
        c.neg(),                                   // covered, non-target
        pos_total - c.pos,                         // uncovered, target
        (n_total - c.total) - (pos_total - c.pos), // uncovered, non-target
    ];
    let expected = [
        c.total * p0,
        c.total * (1.0 - p0),
        (n_total - c.total) * p0,
        (n_total - c.total) * (1.0 - p0),
    ];
    let mut chi2 = 0.0;
    for (o, e) in observed.iter().zip(&expected) {
        if *e > 0.0 {
            // lint:allow(unordered-float-sum) — four cells in fixed array order
            chi2 += (o - e) * (o - e) / e;
        }
    }
    if c.accuracy() >= p0 {
        chi2
    } else {
        -chi2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POS0: f64 = 100.0;
    const N0: f64 = 10_000.0;

    #[test]
    fn cov_stats_basics() {
        let c = CovStats::new(3.0, 10.0);
        assert_eq!(c.neg(), 7.0);
        assert_eq!(c.accuracy(), 0.3);
        assert_eq!(CovStats::new(0.0, 0.0).accuracy(), 0.0);
    }

    #[test]
    fn z_number_sign_tracks_accuracy_vs_prior() {
        // prior is 1%
        let better = CovStats::new(5.0, 10.0);
        let worse = CovStats::new(0.0, 100.0);
        assert!(z_number(better, POS0, N0) > 0.0);
        assert!(z_number(worse, POS0, N0) < 0.0);
        let at_prior = CovStats::new(1.0, 100.0);
        assert!(z_number(at_prior, POS0, N0).abs() < 1e-12);
    }

    #[test]
    fn z_number_grows_with_support_at_fixed_accuracy() {
        let small = CovStats::new(5.0, 10.0);
        let large = CovStats::new(50.0, 100.0);
        assert!(z_number(large, POS0, N0) > z_number(small, POS0, N0));
    }

    #[test]
    fn z_number_prefers_high_support_over_slightly_purer_rule() {
        // The design point of the P-phase: a 90%-accurate rule covering 100
        // examples outranks a 100%-accurate rule covering 4.
        let pure_small = CovStats::new(4.0, 4.0);
        let big = CovStats::new(90.0, 100.0);
        assert!(z_number(big, POS0, N0) > z_number(pure_small, POS0, N0));
    }

    #[test]
    fn z_number_degenerate_prior_is_zero() {
        assert_eq!(z_number(CovStats::new(1.0, 1.0), 10.0, 10.0), 0.0);
        assert_eq!(z_number(CovStats::new(0.0, 1.0), 0.0, 10.0), 0.0);
    }

    #[test]
    fn foil_gain_positive_when_accuracy_improves() {
        let c = CovStats::new(10.0, 20.0);
        assert!(foil_gain(c, POS0, N0) > 0.0);
        assert_eq!(
            foil_gain(CovStats::new(0.0, 50.0), POS0, N0),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn foil_gain_scales_with_positive_coverage() {
        let small = CovStats::new(5.0, 10.0);
        let large = CovStats::new(50.0, 100.0);
        assert!(foil_gain(large, POS0, N0) > foil_gain(small, POS0, N0));
    }

    #[test]
    fn entropy_gain_is_nonnegative_and_bounded() {
        for &(pos, tot) in &[(0.0, 50.0), (50.0, 50.0), (25.0, 400.0), (100.0, 100.0)] {
            let g = entropy_gain(CovStats::new(pos, tot), POS0, N0);
            let h0 = entropy(POS0 / N0);
            assert!(g >= -1e-12, "gain {g} negative for ({pos},{tot})");
            assert!(g <= h0 + 1e-12, "gain {g} exceeds prior entropy {h0}");
        }
    }

    #[test]
    fn perfect_split_recovers_full_entropy() {
        let g = entropy_gain(CovStats::new(POS0, POS0), POS0, N0);
        assert!((g - entropy(POS0 / N0)).abs() < 1e-12);
    }

    #[test]
    fn gain_ratio_normalises_by_split_info() {
        let c = CovStats::new(POS0, POS0);
        let gr = gain_ratio(c, POS0, N0);
        let eg = entropy_gain(c, POS0, N0);
        assert!(gr > eg, "tiny split should be boosted by gain ratio");
        assert_eq!(gain_ratio(CovStats::new(POS0, N0), POS0, N0), 0.0);
    }

    #[test]
    fn gini_gain_perfect_split() {
        let g = gini_gain(CovStats::new(POS0, POS0), POS0, N0);
        let p0 = POS0 / N0;
        assert!((g - 2.0 * p0 * (1.0 - p0)).abs() < 1e-12);
    }

    #[test]
    fn chi_squared_sign_and_magnitude() {
        let good = CovStats::new(50.0, 60.0);
        let bad = CovStats::new(0.0, 5_000.0);
        assert!(chi_squared(good, POS0, N0) > 0.0);
        assert!(chi_squared(bad, POS0, N0) < 0.0);
        // independence → 0
        let indep = CovStats::new(10.0, 1_000.0);
        assert!(chi_squared(indep, POS0, N0).abs() < 1e-9);
    }

    #[test]
    fn laplace_smooths_small_counts() {
        let m = EvalMetric::Laplace;
        assert_eq!(m.score(CovStats::new(1.0, 1.0), POS0, N0), 2.0 / 3.0);
        assert!(
            m.score(CovStats::new(99.0, 100.0), POS0, N0)
                > m.score(CovStats::new(1.0, 1.0), POS0, N0)
        );
    }

    #[test]
    fn zero_support_scores_neg_infinity_for_all_metrics() {
        for m in [
            EvalMetric::ZNumber,
            EvalMetric::FoilGain,
            EvalMetric::EntropyGain,
            EvalMetric::GainRatio,
            EvalMetric::GiniGain,
            EvalMetric::ChiSquared,
            EvalMetric::Laplace,
        ] {
            assert_eq!(
                m.score(CovStats::new(0.0, 0.0), POS0, N0),
                f64::NEG_INFINITY
            );
        }
    }
}
