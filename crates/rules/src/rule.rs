//! Conjunctive rules.

use crate::condition::Condition;
use pnr_data::{Dataset, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A conjunction of [`Condition`]s. The empty rule matches every record (the
/// most general rule, the starting point of general-to-specific induction).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    conditions: Vec<Condition>,
}

impl Rule {
    /// The empty (always-true) rule.
    pub fn empty() -> Self {
        Rule::default()
    }

    /// A rule from a list of conditions.
    pub fn new(conditions: Vec<Condition>) -> Self {
        Rule { conditions }
    }

    /// The rule's conditions in the order they were added.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Number of conditions (the rule's length).
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// True for the empty rule.
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }

    /// Returns a copy of this rule with `cond` appended.
    pub fn refined_with(&self, cond: Condition) -> Rule {
        let mut conditions = Vec::with_capacity(self.conditions.len() + 1);
        conditions.extend_from_slice(&self.conditions);
        conditions.push(cond);
        Rule { conditions }
    }

    /// Appends a condition in place.
    pub fn push(&mut self, cond: Condition) {
        self.conditions.push(cond);
    }

    /// Returns a copy with the condition at `index` removed (used by pruning
    /// procedures that generalise rules).
    pub fn without_condition(&self, index: usize) -> Rule {
        let mut conditions = self.conditions.clone();
        conditions.remove(index);
        Rule { conditions }
    }

    /// Returns a copy truncated to its first `len` conditions (used by
    /// RIPPER's final-sequence pruning).
    pub fn truncated(&self, len: usize) -> Rule {
        Rule {
            conditions: self.conditions[..len.min(self.conditions.len())].to_vec(),
        }
    }

    /// Whether `row` of `data` satisfies every condition.
    #[inline]
    pub fn matches(&self, data: &Dataset, row: usize) -> bool {
        self.conditions.iter().all(|c| c.matches(data, row))
    }

    /// Whether every condition holds against fallible value lookups; an
    /// unknown (`None`) value fails its condition. See
    /// [`Condition::matches_lookup`].
    pub fn matches_lookup<N, C>(&self, num: N, cat: C) -> bool
    where
        N: Fn(usize) -> Option<f64>,
        C: Fn(usize) -> Option<u32>,
    {
        self.conditions.iter().all(|c| c.matches_lookup(&num, &cat))
    }

    /// A displayable form resolving names through `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayRule<'a> {
        DisplayRule { rule: self, schema }
    }
}

/// Pretty-printer for a [`Rule`].
pub struct DisplayRule<'a> {
    rule: &'a Rule,
    schema: &'a Schema,
}

impl fmt::Display for DisplayRule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rule.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, c) in self.rule.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{}", c.display(self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn data() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("y", AttrType::Numeric);
        for (x, y) in [(1.0, 1.0), (1.0, 5.0), (4.0, 1.0), (4.0, 5.0)] {
            b.push_row(&[Value::num(x), Value::num(y)], "c", 1.0)
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn empty_rule_matches_everything() {
        let d = data();
        let r = Rule::empty();
        assert!(r.is_empty());
        for row in 0..d.n_rows() {
            assert!(r.matches(&d, row));
        }
    }

    #[test]
    fn conjunction_requires_all_conditions() {
        let d = data();
        let r = Rule::new(vec![
            Condition::NumLe {
                attr: 0,
                value: 2.0,
            },
            Condition::NumGt {
                attr: 1,
                value: 2.0,
            },
        ]);
        let matched: Vec<usize> = (0..d.n_rows()).filter(|&row| r.matches(&d, row)).collect();
        assert_eq!(matched, vec![1]);
    }

    #[test]
    fn refined_with_appends_without_mutating_original() {
        let r = Rule::empty();
        let r1 = r.refined_with(Condition::NumLe {
            attr: 0,
            value: 2.0,
        });
        assert_eq!(r.len(), 0);
        assert_eq!(r1.len(), 1);
    }

    #[test]
    fn without_condition_removes_by_index() {
        let r = Rule::new(vec![
            Condition::NumLe {
                attr: 0,
                value: 2.0,
            },
            Condition::NumGt {
                attr: 1,
                value: 2.0,
            },
        ]);
        let g = r.without_condition(0);
        assert_eq!(g.len(), 1);
        assert_eq!(g.conditions()[0].attr(), 1);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let r = Rule::new(vec![
            Condition::NumLe {
                attr: 0,
                value: 2.0,
            },
            Condition::NumGt {
                attr: 1,
                value: 2.0,
            },
        ]);
        assert_eq!(r.truncated(1).len(), 1);
        assert_eq!(r.truncated(9).len(), 2);
        assert_eq!(r.truncated(0), Rule::empty());
    }

    #[test]
    fn display_joins_with_and() {
        let d = data();
        let r = Rule::new(vec![
            Condition::NumLe {
                attr: 0,
                value: 2.0,
            },
            Condition::NumGt {
                attr: 1,
                value: 2.0,
            },
        ]);
        assert_eq!(r.display(d.schema()).to_string(), "x <= 2.0 AND y > 2.0");
        assert_eq!(Rule::empty().display(d.schema()).to_string(), "TRUE");
    }
}
