//! Atomic conditions on a single attribute.

use pnr_data::{Dataset, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An atomic test on one attribute of a record.
///
/// Numeric thresholds follow the closed-on-the-right convention used
/// throughout the workspace: `NumLe` is `A ≤ v`, `NumGt` is `A > v`, and
/// `NumRange` is the half-open interval `lo < A ≤ hi` — so a range is
/// exactly the conjunction `NumGt(lo) ∧ NumLe(hi)` and the three forms
/// partition cleanly at sorted-value boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Categorical attribute equals the dictionary code.
    CatEq {
        /// Attribute index.
        attr: usize,
        /// Dictionary code of the value.
        value: u32,
    },
    /// Numeric attribute `≤ v`.
    NumLe {
        /// Attribute index.
        attr: usize,
        /// Threshold.
        value: f64,
    },
    /// Numeric attribute `> v`.
    NumGt {
        /// Attribute index.
        attr: usize,
        /// Threshold.
        value: f64,
    },
    /// Numeric attribute in `(lo, hi]`.
    NumRange {
        /// Attribute index.
        attr: usize,
        /// Exclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl Condition {
    /// The attribute this condition tests.
    pub fn attr(&self) -> usize {
        match *self {
            Condition::CatEq { attr, .. }
            | Condition::NumLe { attr, .. }
            | Condition::NumGt { attr, .. }
            | Condition::NumRange { attr, .. } => attr,
        }
    }

    /// Whether `row` of `data` satisfies the condition.
    ///
    /// # Finite-data invariant
    ///
    /// Numeric cells are read unguarded, so this relies on the dataset
    /// invariant that every numeric value is finite. `DatasetBuilder`
    /// rejects NaN/±∞ at `push_row`; a dataset that bypasses the builder
    /// (serde deserialization can turn a JSON `1e999` into `inf`) must be
    /// re-checked — the `audit` feature's
    /// `pnr_data::audit::check_finite_columns` does exactly that. A NaN
    /// cell would not panic here: it silently fails every numeric
    /// condition (all comparisons against NaN are false), *unlike* the
    /// serving path, which routes non-finite values through the explicit
    /// unknown-value policy.
    #[inline]
    pub fn matches(&self, data: &Dataset, row: usize) -> bool {
        match *self {
            Condition::CatEq { attr, value } => data.cat(attr, row) == value,
            Condition::NumLe { attr, value } => data.num(attr, row) <= value,
            Condition::NumGt { attr, value } => data.num(attr, row) > value,
            Condition::NumRange { attr, lo, hi } => {
                let x = data.num(attr, row);
                lo < x && x <= hi
            }
        }
    }

    /// Whether the condition holds for a record whose values are fetched
    /// through lookups that may fail. A `None` from either lookup means
    /// the value is *unknown* (unseen category, non-finite numeric,
    /// defaulted missing column) and the condition does **not** match —
    /// the paper-consistent serving semantics where rule conditions only
    /// ever fire on values the training data vouched for.
    pub fn matches_lookup<N, C>(&self, num: N, cat: C) -> bool
    where
        N: Fn(usize) -> Option<f64>,
        C: Fn(usize) -> Option<u32>,
    {
        match *self {
            Condition::CatEq { attr, value } => cat(attr) == Some(value),
            Condition::NumLe { attr, value } => num(attr).is_some_and(|x| x <= value),
            Condition::NumGt { attr, value } => num(attr).is_some_and(|x| x > value),
            Condition::NumRange { attr, lo, hi } => num(attr).is_some_and(|x| lo < x && x <= hi),
        }
    }

    /// A displayable form that resolves attribute and value names through
    /// `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayCondition<'a> {
        DisplayCondition { cond: self, schema }
    }
}

/// Pretty-printer for a [`Condition`] with schema-resolved names.
pub struct DisplayCondition<'a> {
    cond: &'a Condition,
    schema: &'a Schema,
}

impl fmt::Display for DisplayCondition<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |attr: usize| &self.schema.attr(attr).name;
        match *self.cond {
            Condition::CatEq { attr, value } => {
                write!(
                    f,
                    "{} = {}",
                    name(attr),
                    self.schema.attr(attr).dict.name(value)
                )
            }
            // {:?} is Rust's shortest *round-trippable* float form: it
            // keeps the ".0" on integral thresholds ("2.0", not "2") and
            // never abbreviates, so two distinct rules can never render
            // identically in `inspect` output.
            Condition::NumLe { attr, value } => write!(f, "{} <= {:?}", name(attr), value),
            Condition::NumGt { attr, value } => write!(f, "{} > {:?}", name(attr), value),
            Condition::NumRange { attr, lo, hi } => {
                write!(f, "{} in ({:?}, {:?}]", name(attr), lo, hi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn data() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.push_row(&[Value::num(1.0), Value::cat("a")], "c", 1.0)
            .unwrap();
        b.push_row(&[Value::num(2.0), Value::cat("b")], "c", 1.0)
            .unwrap();
        b.push_row(&[Value::num(3.0), Value::cat("a")], "c", 1.0)
            .unwrap();
        b.finish()
    }

    #[test]
    fn cat_eq_matches_code() {
        let d = data();
        let a = d.schema().attr(1).dict.code("a").unwrap();
        let c = Condition::CatEq { attr: 1, value: a };
        assert!(c.matches(&d, 0));
        assert!(!c.matches(&d, 1));
        assert!(c.matches(&d, 2));
    }

    #[test]
    fn numeric_thresholds_are_inclusive_exclusive() {
        let d = data();
        let le = Condition::NumLe {
            attr: 0,
            value: 2.0,
        };
        assert!(le.matches(&d, 0) && le.matches(&d, 1) && !le.matches(&d, 2));
        let gt = Condition::NumGt {
            attr: 0,
            value: 2.0,
        };
        assert!(!gt.matches(&d, 0) && !gt.matches(&d, 1) && gt.matches(&d, 2));
    }

    #[test]
    fn range_is_half_open() {
        let d = data();
        let r = Condition::NumRange {
            attr: 0,
            lo: 1.0,
            hi: 2.0,
        };
        assert!(!r.matches(&d, 0), "lo is exclusive");
        assert!(r.matches(&d, 1), "hi is inclusive");
        assert!(!r.matches(&d, 2));
    }

    #[test]
    fn range_equals_conjunction_of_sides() {
        let d = data();
        let r = Condition::NumRange {
            attr: 0,
            lo: 1.0,
            hi: 3.0,
        };
        let gt = Condition::NumGt {
            attr: 0,
            value: 1.0,
        };
        let le = Condition::NumLe {
            attr: 0,
            value: 3.0,
        };
        for row in 0..d.n_rows() {
            assert_eq!(
                r.matches(&d, row),
                gt.matches(&d, row) && le.matches(&d, row)
            );
        }
    }

    #[test]
    fn display_resolves_names() {
        let d = data();
        let a = d.schema().attr(1).dict.code("a").unwrap();
        assert_eq!(
            Condition::CatEq { attr: 1, value: a }
                .display(d.schema())
                .to_string(),
            "k = a"
        );
        assert_eq!(
            Condition::NumRange {
                attr: 0,
                lo: 0.5,
                hi: 1.5
            }
            .display(d.schema())
            .to_string(),
            "x in (0.5, 1.5]"
        );
        assert_eq!(
            Condition::NumLe {
                attr: 0,
                value: 2.0
            }
            .display(d.schema())
            .to_string(),
            "x <= 2.0"
        );
        assert_eq!(
            Condition::NumGt {
                attr: 0,
                value: 2.0
            }
            .display(d.schema())
            .to_string(),
            "x > 2.0"
        );
    }

    #[test]
    fn displayed_thresholds_round_trip_exactly() {
        // Regression: `{}` on f64 printed "2" for 2.0, so `inspect` output
        // could render distinct rules identically and a reader could not
        // recover the exact threshold. The displayed number must parse
        // back to the very same bits.
        let d = data();
        for value in [
            2.0,
            0.1,
            1.0 + f64::EPSILON,
            -0.0,
            1e-300,
            123456789.12345679,
            std::f64::consts::PI,
        ] {
            let text = Condition::NumLe { attr: 0, value }
                .display(d.schema())
                .to_string();
            let rendered = text.strip_prefix("x <= ").expect("display shape");
            let back: f64 = rendered.parse().expect("rendered threshold parses");
            assert_eq!(
                back.to_bits(),
                value.to_bits(),
                "{value} rendered as {rendered}"
            );
        }
        // the old ambiguity: integral thresholds keep their ".0"
        let shown = Condition::NumGt {
            attr: 0,
            value: 2.0,
        }
        .display(d.schema())
        .to_string();
        assert_eq!(shown, "x > 2.0", "integral thresholds must keep .0");
    }

    #[test]
    fn matches_lookup_mirrors_matches_on_known_values() {
        let d = data();
        let conds = [
            Condition::CatEq { attr: 1, value: 0 },
            Condition::NumLe {
                attr: 0,
                value: 2.0,
            },
            Condition::NumGt {
                attr: 0,
                value: 2.0,
            },
            Condition::NumRange {
                attr: 0,
                lo: 1.0,
                hi: 2.5,
            },
        ];
        for cond in &conds {
            for row in 0..d.n_rows() {
                let via_lookup =
                    cond.matches_lookup(|a| Some(d.num(a, row)), |a| Some(d.cat(a, row)));
                assert_eq!(via_lookup, cond.matches(&d, row), "{cond:?} row {row}");
            }
        }
    }

    #[test]
    fn matches_lookup_never_fires_on_unknown_values() {
        let none_num = |_: usize| None;
        let none_cat = |_: usize| None;
        assert!(!Condition::CatEq { attr: 0, value: 0 }.matches_lookup(none_num, none_cat));
        assert!(!Condition::NumLe {
            attr: 0,
            value: f64::INFINITY
        }
        .matches_lookup(none_num, none_cat));
        assert!(!Condition::NumGt {
            attr: 0,
            value: f64::NEG_INFINITY
        }
        .matches_lookup(none_num, none_cat));
        assert!(!Condition::NumRange {
            attr: 0,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY
        }
        .matches_lookup(none_num, none_cat));
    }

    #[test]
    fn attr_accessor() {
        assert_eq!(
            Condition::NumLe {
                attr: 3,
                value: 0.0
            }
            .attr(),
            3
        );
        assert_eq!(Condition::CatEq { attr: 1, value: 0 }.attr(), 1);
    }
}
