//! Property-based bit-identity suite for the compiled rule-evaluation
//! engine: over random rulesets × random datasets × random unknown masks,
//! `CompiledRuleSet` must reproduce the interpreter's `first_match`
//! decisions *exactly* — same `Some`/`None`, same rank, lowest index on
//! ties — on both the dense (`Dataset`) and the lookup (serving) path.

use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_rules::{CompiledRuleSet, Condition, Rule, RuleSet};
use proptest::prelude::*;

const CAT_NAMES: [&str; 3] = ["a", "b", "c"];

/// Two numeric attributes and one categorical attribute with three codes —
/// enough to exercise every dispatch-table shape, including rules that pin
/// a code the dictionary never interned (`value: 3`).
fn dataset(rows: &[(f64, f64, u8)]) -> Dataset {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("y", AttrType::Numeric);
    b.add_attribute("k", AttrType::Categorical);
    // Intern all three codes up front so row order cannot change the
    // dictionary, then the generated rows.
    for name in CAT_NAMES {
        b.push_row(
            &[Value::num(0.0), Value::num(0.0), Value::cat(name)],
            "c",
            1.0,
        )
        .unwrap();
    }
    for &(x, y, k) in rows {
        b.push_row(
            &[
                Value::num(x),
                Value::num(y),
                Value::cat(CAT_NAMES[k as usize % 3]),
            ],
            "c",
            1.0,
        )
        .unwrap();
    }
    b.finish()
}

fn rows() -> impl Strategy<Value = Vec<(f64, f64, u8)>> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0, 0u8..3), 1..40)
}

/// Random atomic condition. Attribute kinds are fixed (0 and 1 numeric,
/// 2 categorical) so every generated ruleset compiles. `CatEq` may pin
/// code 3, which no row carries, and `NumRange` may be empty (`lo >= hi`)
/// or NaN-free contradictory when conjoined — all shapes the compiler must
/// fold identically to the interpreter.
fn condition() -> impl Strategy<Value = Condition> {
    (0u8..4, 0usize..2, -8.0f64..8.0, -2.0f64..6.0, 0u32..4).prop_map(|(kind, attr, v, w, code)| {
        match kind {
            0 => Condition::NumLe { attr, value: v },
            1 => Condition::NumGt { attr, value: v },
            2 => Condition::NumRange {
                attr,
                lo: v,
                hi: v + w,
            },
            _ => Condition::CatEq {
                attr: 2,
                value: code,
            },
        }
    })
}

fn ruleset() -> impl Strategy<Value = RuleSet> {
    prop::collection::vec(prop::collection::vec(condition(), 0..4), 0..8)
        .prop_map(|rules| RuleSet::from_rules(rules.into_iter().map(Rule::new).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_first_match_is_bit_identical(data_rows in rows(), rules in ruleset()) {
        let d = dataset(&data_rows);
        let compiled = CompiledRuleSet::compile(&rules).expect("fixed attr kinds always compile");
        for row in 0..d.n_rows() {
            prop_assert_eq!(
                compiled.first_match(&d, row),
                rules.first_match(&d, row),
                "row {} of {:?}", row, &rules
            );
        }
    }

    #[test]
    fn lookup_first_match_is_bit_identical_under_unknowns(
        data_rows in rows(),
        rules in ruleset(),
        mask in prop::collection::vec(prop::bool::ANY, 3),
    ) {
        // `mask[attr] == true` hides that attribute — the serving path's
        // unknown-value outcome, which must suppress the attribute's whole
        // dispatch table, never fire it.
        let d = dataset(&data_rows);
        let compiled = CompiledRuleSet::compile(&rules).expect("fixed attr kinds always compile");
        for row in 0..d.n_rows() {
            let num = |attr: usize| (!mask[attr]).then(|| d.num(attr, row));
            let cat = |attr: usize| (!mask[attr]).then(|| d.cat(attr, row));
            prop_assert_eq!(
                compiled.first_match_lookup(num, cat),
                rules.first_match_lookup(num, cat),
                "row {} mask {:?} of {:?}", row, &mask, &rules
            );
        }
    }

    #[test]
    fn first_match_takes_the_lowest_ranked_matching_rule(
        data_rows in rows(),
        rules in ruleset(),
        dup_at in 0usize..64,
    ) {
        // Ranked tie-break: duplicating one rule at the end must never
        // change any decision (the lower index always wins), and whatever
        // either engine returns must be the *lowest* index whose rule
        // matches, checked against a brute-force scan.
        let d = dataset(&data_rows);
        let mut with_dup = rules.clone();
        if !rules.is_empty() {
            let i = dup_at % rules.len();
            with_dup.push(rules.rules()[i].clone());
        }
        let compiled = CompiledRuleSet::compile(&with_dup).expect("fixed attr kinds always compile");
        for row in 0..d.n_rows() {
            let brute = with_dup
                .rules()
                .iter()
                .position(|r| r.matches(&d, row));
            prop_assert_eq!(with_dup.first_match(&d, row), brute);
            prop_assert_eq!(compiled.first_match(&d, row), brute);
            if !rules.is_empty() {
                prop_assert_eq!(compiled.first_match(&d, row), rules.first_match(&d, row));
            }
        }
    }

    #[test]
    fn batch_matcher_agrees_with_row_at_a_time(data_rows in rows(), rules in ruleset()) {
        let d = dataset(&data_rows);
        let compiled = CompiledRuleSet::compile(&rules).expect("fixed attr kinds always compile");
        let matcher = compiled.matcher(&d);
        for row in 0..d.n_rows() {
            prop_assert_eq!(matcher.first_match(row), rules.first_match(&d, row));
        }
    }
}
