//! Property-based tests for rule machinery: coverage, search optimality,
//! metric invariants.

use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_rules::search::find_best_condition_sequential;
use pnr_rules::{
    find_best_condition, CandidateCondition, Condition, CovStats, EvalMetric, Rule, SearchOptions,
    TaskView,
};
use proptest::prelude::*;

const ALL_METRICS: [EvalMetric; 7] = [
    EvalMetric::ZNumber,
    EvalMetric::FoilGain,
    EvalMetric::EntropyGain,
    EvalMetric::GainRatio,
    EvalMetric::GiniGain,
    EvalMetric::ChiSquared,
    EvalMetric::Laplace,
];

/// Re-creates the search's candidate ordering by brute force: every
/// condition's coverage is computed row-by-row with [`TaskView::coverage`],
/// candidates are offered in the scan's order (attributes ascending;
/// categorical codes ascending; `≤` cuts left-to-right, then `>` cuts, then
/// the fixed-side range sweep) and ties resolve to the first best — so on
/// unit-weight data the result must be *identical* to the scan's, condition
/// and all.
fn brute_force_best(
    view: &TaskView<'_>,
    metric: EvalMetric,
    opts: &SearchOptions,
) -> Option<CandidateCondition> {
    let (pos_total, n_total) = opts
        .context
        .unwrap_or_else(|| (view.pos_weight(), view.total_weight()));
    let mut best: Option<CandidateCondition> = None;
    let mut offer = |condition: Condition, stats: CovStats, score: f64| {
        if score.is_finite() && best.as_ref().is_none_or(|b| score > b.score) {
            best = Some(CandidateCondition {
                condition,
                stats,
                score,
            });
        }
    };
    for attr in 0..view.data.n_attrs() {
        match view.data.schema().attr(attr).ty {
            AttrType::Categorical => {
                for code in 0..view.data.schema().attr(attr).dict.len() as u32 {
                    let cond = Condition::CatEq { attr, value: code };
                    let stats = view.coverage(&Rule::new(vec![cond.clone()]));
                    if stats.total == 0.0 || stats.total < opts.min_support_weight {
                        continue;
                    }
                    offer(cond, stats, metric.score(stats, pos_total, n_total));
                }
            }
            AttrType::Numeric => {
                // Distinct values present in the view, ascending.
                let mut values: Vec<f64> = view
                    .rows
                    .iter()
                    .map(|r| view.data.num(attr, r as usize))
                    .collect();
                values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                values.dedup();
                if values.len() < 2 {
                    continue;
                }
                let threshold = |i: usize| {
                    if i + 1 < values.len() {
                        (values[i] + values[i + 1]) / 2.0
                    } else {
                        values[i]
                    }
                };
                let eval = |cond: &Condition| {
                    let stats = view.coverage(&Rule::new(vec![cond.clone()]));
                    let score = if stats.total >= opts.min_support_weight {
                        metric.score(stats, pos_total, n_total)
                    } else {
                        f64::NEG_INFINITY
                    };
                    (stats, score)
                };
                // One-sided cuts, each side scanned left to right with
                // first-best-wins, as in the scan.
                let mut best_le: Option<(usize, f64)> = None;
                let mut best_gt: Option<(usize, f64)> = None;
                for i in 0..values.len() - 1 {
                    let (_, s) = eval(&Condition::NumLe {
                        attr,
                        value: threshold(i),
                    });
                    if s.is_finite() && best_le.is_none_or(|(_, bs)| s > bs) {
                        best_le = Some((i, s));
                    }
                    let (_, s) = eval(&Condition::NumGt {
                        attr,
                        value: threshold(i),
                    });
                    if s.is_finite() && best_gt.is_none_or(|(_, bs)| s > bs) {
                        best_gt = Some((i, s));
                    }
                }
                if let Some((i, s)) = best_le {
                    let cond = Condition::NumLe {
                        attr,
                        value: threshold(i),
                    };
                    let (stats, _) = eval(&cond);
                    offer(cond, stats, s);
                }
                if let Some((i, s)) = best_gt {
                    let cond = Condition::NumGt {
                        attr,
                        value: threshold(i),
                    };
                    let (stats, _) = eval(&cond);
                    offer(cond, stats, s);
                }
                if !opts.use_ranges {
                    continue;
                }
                // The paper's range heuristic: fix the better one-sided
                // bound, sweep the other side.
                let (le_s, gt_s) = (
                    best_le.map_or(f64::NEG_INFINITY, |(_, s)| s),
                    best_gt.map_or(f64::NEG_INFINITY, |(_, s)| s),
                );
                if le_s == f64::NEG_INFINITY && gt_s == f64::NEG_INFINITY {
                    continue;
                }
                if gt_s >= le_s {
                    let (lo_idx, _) = best_gt.expect("finite gt implies candidate");
                    for hi_idx in lo_idx + 1..values.len() - 1 {
                        let cond = Condition::NumRange {
                            attr,
                            lo: threshold(lo_idx),
                            hi: threshold(hi_idx),
                        };
                        let (stats, s) = eval(&cond);
                        if stats.total < opts.min_support_weight {
                            continue;
                        }
                        offer(cond, stats, s);
                    }
                } else {
                    let (hi_idx, _) = best_le.expect("finite le implies candidate");
                    for lo_idx in 0..hi_idx {
                        let cond = Condition::NumRange {
                            attr,
                            lo: threshold(lo_idx),
                            hi: threshold(hi_idx),
                        };
                        let (stats, s) = eval(&cond);
                        if stats.total < opts.min_support_weight {
                            continue;
                        }
                        offer(cond, stats, s);
                    }
                }
            }
        }
    }
    best
}

/// A small mixed dataset from generated rows.
fn build(rows: &[(f64, usize, bool)]) -> (Dataset, Vec<bool>) {
    let cats = ["a", "b", "c"];
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("k", AttrType::Categorical);
    b.add_class("pos");
    b.add_class("neg");
    for &(x, k, pos) in rows {
        b.push_row(
            &[Value::num(x), Value::cat(cats[k])],
            if pos { "pos" } else { "neg" },
            1.0,
        )
        .unwrap();
    }
    let d = b.finish();
    let flags: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
    (d, flags)
}

fn rows_strategy() -> impl Strategy<Value = Vec<(f64, usize, bool)>> {
    prop::collection::vec((-50.0f64..50.0, 0usize..3, prop::bool::ANY), 4..80)
}

proptest! {
    #[test]
    fn coverage_matches_brute_force(rows in rows_strategy(), t in -50.0f64..50.0) {
        let (d, flags) = build(&rows);
        let v = TaskView::full(&d, &flags, d.weights());
        let rule = Rule::new(vec![Condition::NumLe { attr: 0, value: t }]);
        let c = v.coverage(&rule);
        let brute_pos = rows.iter().filter(|&&(x, _, p)| x <= t && p).count() as f64;
        let brute_tot = rows.iter().filter(|&&(x, _, _)| x <= t).count() as f64;
        prop_assert!((c.pos - brute_pos).abs() < 1e-9);
        prop_assert!((c.total - brute_tot).abs() < 1e-9);
    }

    #[test]
    fn search_result_is_never_beaten_by_any_single_condition(rows in rows_strategy()) {
        let (d, flags) = build(&rows);
        let v = TaskView::full(&d, &flags, d.weights());
        let metric = EvalMetric::EntropyGain;
        let Some(best) = find_best_condition(&v, metric, &SearchOptions::default()) else {
            return Ok(());
        };
        // brute force every categorical value and every one-sided cut at
        // occurring values (the scan uses midpoints, which give identical
        // train coverage and hence identical scores)
        let mut best_brute = f64::NEG_INFINITY;
        for code in 0..3u32 {
            let c = v.coverage(&Rule::new(vec![Condition::CatEq { attr: 1, value: code }]));
            if c.total > 0.0 {
                best_brute = best_brute.max(metric.score(c, v.pos_weight(), v.total_weight()));
            }
        }
        for &(x, _, _) in &rows {
            for cond in [
                Condition::NumLe { attr: 0, value: x },
                Condition::NumGt { attr: 0, value: x },
            ] {
                let c = v.coverage(&Rule::new(vec![cond]));
                if c.total > 0.0 && c.total < v.total_weight() {
                    best_brute =
                        best_brute.max(metric.score(c, v.pos_weight(), v.total_weight()));
                }
            }
        }
        prop_assert!(
            best.score + 1e-9 >= best_brute,
            "search {} < brute {}",
            best.score,
            best_brute
        );
    }

    #[test]
    fn range_search_dominates_one_sided(rows in rows_strategy()) {
        let (d, flags) = build(&rows);
        let v = TaskView::full(&d, &flags, d.weights());
        let with = find_best_condition(&v, EvalMetric::ZNumber, &SearchOptions::default());
        let without = find_best_condition(
            &v,
            EvalMetric::ZNumber,
            &SearchOptions { use_ranges: false, ..Default::default() },
        );
        match (with, without) {
            (Some(w), Some(wo)) => prop_assert!(w.score + 1e-9 >= wo.score),
            (None, Some(_)) => prop_assert!(false, "ranges lost a candidate"),
            _ => {}
        }
    }

    #[test]
    fn rule_matching_is_conjunction(rows in rows_strategy(), t1 in -50.0f64..50.0, t2 in -50.0f64..50.0) {
        let (d, _) = build(&rows);
        let c1 = Condition::NumGt { attr: 0, value: t1 };
        let c2 = Condition::NumLe { attr: 0, value: t2 };
        let rule = Rule::new(vec![c1.clone(), c2.clone()]);
        for row in 0..d.n_rows() {
            prop_assert_eq!(
                rule.matches(&d, row),
                c1.matches(&d, row) && c2.matches(&d, row)
            );
        }
    }

    #[test]
    fn range_equals_two_sided_conjunction(rows in rows_strategy(), lo in -50.0f64..0.0, width in 0.0f64..50.0) {
        let (d, _) = build(&rows);
        let hi = lo + width;
        let range = Condition::NumRange { attr: 0, lo, hi };
        let pair = Rule::new(vec![
            Condition::NumGt { attr: 0, value: lo },
            Condition::NumLe { attr: 0, value: hi },
        ]);
        for row in 0..d.n_rows() {
            prop_assert_eq!(range.matches(&d, row), pair.matches(&d, row));
        }
    }

    #[test]
    fn z_number_sign_tracks_prior(pos in 0.0f64..100.0, extra in 0.0f64..100.0,
                                  pos_total in 1.0f64..1000.0, extra_total in 1.0f64..10000.0) {
        let c = CovStats::new(pos, pos + extra);
        let n_total = pos_total + extra_total;
        let z = pnr_rules::stats::z_number(c, pos_total, n_total);
        if c.total > 0.0 {
            let prior = pos_total / n_total;
            if c.accuracy() > prior {
                prop_assert!(z > 0.0);
            } else if c.accuracy() < prior {
                prop_assert!(z < 0.0);
            }
        }
    }

    #[test]
    fn entropy_gain_nonnegative(pos in 0.0f64..100.0, extra in 0.0f64..100.0,
                                rest_pos in 0.0f64..100.0, rest_neg in 0.0f64..100.0) {
        let c = CovStats::new(pos, pos + extra);
        let pos_total = pos + rest_pos;
        let n_total = pos + extra + rest_pos + rest_neg;
        if n_total > 0.0 && c.total > 0.0 {
            let g = pnr_rules::stats::entropy_gain(c, pos_total, n_total);
            prop_assert!(g >= -1e-9, "gain {g}");
        }
    }

    #[test]
    fn search_equals_brute_force_on_restricted_views(
        rows in rows_strategy(),
        midx in 0usize..ALL_METRICS.len(),
        mask_seed in proptest::prelude::any::<u64>(),
        use_ranges in proptest::bool::ANY,
    ) {
        let (d, flags) = build(&rows);
        let metric = ALL_METRICS[midx];
        let opts = SearchOptions { use_ranges, ..Default::default() };
        let full = TaskView::full(&d, &flags, d.weights());
        // A pseudo-random restriction plus a second-level restriction, so
        // the view's sorted projections exercise the parent-chain path.
        let keep = |salt: u64, r: u32| {
            (mask_seed ^ salt)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(u64::from(r).wrapping_mul(1442695040888963407))
                .count_ones()
                % 2
                == 0
        };
        let once = full.restricted_to(full.rows.filter(|r| keep(1, r)));
        let twice = once.restricted_to(once.rows.filter(|r| keep(2, r)));
        for view in [&full, &once, &twice] {
            let got = find_best_condition_sequential(view, metric, &opts);
            let want = brute_force_best(view, metric, &opts);
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    prop_assert_eq!(&g.condition, &w.condition,
                        "metric {:?} view {} rows", metric, view.n_rows());
                    prop_assert_eq!(g.stats, w.stats);
                    prop_assert_eq!(g.score.to_bits(), w.score.to_bits(),
                        "scores {} vs {}", g.score, w.score);
                }
                (g, w) => prop_assert!(false, "scan {g:?} vs brute {w:?}"),
            }
        }
    }

    #[test]
    fn parallel_search_is_bit_identical_to_sequential(
        rows in rows_strategy(),
        weights in prop::collection::vec(0.1f64..10.0, 80),
        midx in 0usize..ALL_METRICS.len(),
        mask_seed in proptest::prelude::any::<u64>(),
    ) {
        let (d, flags) = build(&rows);
        let w: Vec<f64> = (0..d.n_rows()).map(|r| weights[r % weights.len()]).collect();
        let metric = ALL_METRICS[midx];
        // parallel_min_cells 0 forces worker threads even on tiny views
        let par = SearchOptions { parallel: true, parallel_min_cells: 0, ..Default::default() };
        let seq = SearchOptions { parallel: false, ..Default::default() };
        let full = TaskView::full(&d, &flags, &w);
        let keep = |r: u32| {
            mask_seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(u64::from(r).wrapping_mul(1442695040888963407))
                .count_ones()
                % 2
                == 0
        };
        let sub = full.restricted_to(full.rows.filter(keep));
        for view in [&full, &sub] {
            let got = find_best_condition(view, metric, &par);
            let want = find_best_condition(view, metric, &seq);
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(s)) => {
                    prop_assert_eq!(&g.condition, &s.condition);
                    prop_assert_eq!(g.stats.pos.to_bits(), s.stats.pos.to_bits());
                    prop_assert_eq!(g.stats.total.to_bits(), s.stats.total.to_bits());
                    prop_assert_eq!(g.score.to_bits(), s.score.to_bits());
                }
                (g, s) => prop_assert!(false, "parallel {g:?} vs sequential {s:?}"),
            }
        }
    }

    #[test]
    fn task_view_without_then_weights_consistent(rows in rows_strategy(), t in -50.0f64..50.0) {
        let (d, flags) = build(&rows);
        let v = TaskView::full(&d, &flags, d.weights());
        let covered = v.rows_matching(&Condition::NumLe { attr: 0, value: t });
        let rest = v.without(&covered);
        prop_assert!((rest.total_weight() + covered.total_weight(d.weights())
            - v.total_weight()).abs() < 1e-9);
        prop_assert_eq!(rest.n_rows() + covered.len(), v.n_rows());
    }
}
