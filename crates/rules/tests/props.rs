//! Property-based tests for rule machinery: coverage, search optimality,
//! metric invariants.

use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_rules::{
    find_best_condition, CovStats, Condition, EvalMetric, Rule, SearchOptions, TaskView,
};
use proptest::prelude::*;

/// A small mixed dataset from generated rows.
fn build(rows: &[(f64, usize, bool)]) -> (Dataset, Vec<bool>) {
    let cats = ["a", "b", "c"];
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("k", AttrType::Categorical);
    b.add_class("pos");
    b.add_class("neg");
    for &(x, k, pos) in rows {
        b.push_row(&[Value::num(x), Value::cat(cats[k])], if pos { "pos" } else { "neg" }, 1.0)
            .unwrap();
    }
    let d = b.finish();
    let flags: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
    (d, flags)
}

fn rows_strategy() -> impl Strategy<Value = Vec<(f64, usize, bool)>> {
    prop::collection::vec((-50.0f64..50.0, 0usize..3, prop::bool::ANY), 4..80)
}

proptest! {
    #[test]
    fn coverage_matches_brute_force(rows in rows_strategy(), t in -50.0f64..50.0) {
        let (d, flags) = build(&rows);
        let v = TaskView::full(&d, &flags, d.weights());
        let rule = Rule::new(vec![Condition::NumLe { attr: 0, value: t }]);
        let c = v.coverage(&rule);
        let brute_pos = rows.iter().filter(|&&(x, _, p)| x <= t && p).count() as f64;
        let brute_tot = rows.iter().filter(|&&(x, _, _)| x <= t).count() as f64;
        prop_assert!((c.pos - brute_pos).abs() < 1e-9);
        prop_assert!((c.total - brute_tot).abs() < 1e-9);
    }

    #[test]
    fn search_result_is_never_beaten_by_any_single_condition(rows in rows_strategy()) {
        let (d, flags) = build(&rows);
        let v = TaskView::full(&d, &flags, d.weights());
        let metric = EvalMetric::EntropyGain;
        let Some(best) = find_best_condition(&v, metric, &SearchOptions::default()) else {
            return Ok(());
        };
        // brute force every categorical value and every one-sided cut at
        // occurring values (the scan uses midpoints, which give identical
        // train coverage and hence identical scores)
        let mut best_brute = f64::NEG_INFINITY;
        for code in 0..3u32 {
            let c = v.coverage(&Rule::new(vec![Condition::CatEq { attr: 1, value: code }]));
            if c.total > 0.0 {
                best_brute = best_brute.max(metric.score(c, v.pos_weight(), v.total_weight()));
            }
        }
        for &(x, _, _) in &rows {
            for cond in [
                Condition::NumLe { attr: 0, value: x },
                Condition::NumGt { attr: 0, value: x },
            ] {
                let c = v.coverage(&Rule::new(vec![cond]));
                if c.total > 0.0 && c.total < v.total_weight() {
                    best_brute =
                        best_brute.max(metric.score(c, v.pos_weight(), v.total_weight()));
                }
            }
        }
        prop_assert!(
            best.score + 1e-9 >= best_brute,
            "search {} < brute {}",
            best.score,
            best_brute
        );
    }

    #[test]
    fn range_search_dominates_one_sided(rows in rows_strategy()) {
        let (d, flags) = build(&rows);
        let v = TaskView::full(&d, &flags, d.weights());
        let with = find_best_condition(&v, EvalMetric::ZNumber, &SearchOptions::default());
        let without = find_best_condition(
            &v,
            EvalMetric::ZNumber,
            &SearchOptions { use_ranges: false, ..Default::default() },
        );
        match (with, without) {
            (Some(w), Some(wo)) => prop_assert!(w.score + 1e-9 >= wo.score),
            (None, Some(_)) => prop_assert!(false, "ranges lost a candidate"),
            _ => {}
        }
    }

    #[test]
    fn rule_matching_is_conjunction(rows in rows_strategy(), t1 in -50.0f64..50.0, t2 in -50.0f64..50.0) {
        let (d, _) = build(&rows);
        let c1 = Condition::NumGt { attr: 0, value: t1 };
        let c2 = Condition::NumLe { attr: 0, value: t2 };
        let rule = Rule::new(vec![c1.clone(), c2.clone()]);
        for row in 0..d.n_rows() {
            prop_assert_eq!(
                rule.matches(&d, row),
                c1.matches(&d, row) && c2.matches(&d, row)
            );
        }
    }

    #[test]
    fn range_equals_two_sided_conjunction(rows in rows_strategy(), lo in -50.0f64..0.0, width in 0.0f64..50.0) {
        let (d, _) = build(&rows);
        let hi = lo + width;
        let range = Condition::NumRange { attr: 0, lo, hi };
        let pair = Rule::new(vec![
            Condition::NumGt { attr: 0, value: lo },
            Condition::NumLe { attr: 0, value: hi },
        ]);
        for row in 0..d.n_rows() {
            prop_assert_eq!(range.matches(&d, row), pair.matches(&d, row));
        }
    }

    #[test]
    fn z_number_sign_tracks_prior(pos in 0.0f64..100.0, extra in 0.0f64..100.0,
                                  pos_total in 1.0f64..1000.0, extra_total in 1.0f64..10000.0) {
        let c = CovStats::new(pos, pos + extra);
        let n_total = pos_total + extra_total;
        let z = pnr_rules::stats::z_number(c, pos_total, n_total);
        if c.total > 0.0 {
            let prior = pos_total / n_total;
            if c.accuracy() > prior {
                prop_assert!(z > 0.0);
            } else if c.accuracy() < prior {
                prop_assert!(z < 0.0);
            }
        }
    }

    #[test]
    fn entropy_gain_nonnegative(pos in 0.0f64..100.0, extra in 0.0f64..100.0,
                                rest_pos in 0.0f64..100.0, rest_neg in 0.0f64..100.0) {
        let c = CovStats::new(pos, pos + extra);
        let pos_total = pos + rest_pos;
        let n_total = pos + extra + rest_pos + rest_neg;
        if n_total > 0.0 && c.total > 0.0 {
            let g = pnr_rules::stats::entropy_gain(c, pos_total, n_total);
            prop_assert!(g >= -1e-9, "gain {g}");
        }
    }

    #[test]
    fn task_view_without_then_weights_consistent(rows in rows_strategy(), t in -50.0f64..50.0) {
        let (d, flags) = build(&rows);
        let v = TaskView::full(&d, &flags, d.weights());
        let covered = v.rows_matching(&Condition::NumLe { attr: 0, value: t });
        let rest = v.without(&covered);
        prop_assert!((rest.total_weight() + covered.total_weight(d.weights())
            - v.total_weight()).abs() < 1e-9);
        prop_assert_eq!(rest.n_rows() + covered.len(), v.n_rows());
    }
}
