//! Property suite pinning bit-identity of the row-sharded condition
//! search: for any shard count, metric, restricted view and weight
//! assignment, the threaded `(attribute × shard)` scan must agree
//! bit-for-bit with `find_best_condition_sequential` run over the *same*
//! shard plan, and a one-shard plan must reproduce the legacy unsharded
//! scan exactly. Mirrors the attribute-parallel property tests in
//! `props.rs`.

use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_rules::search::find_best_condition_sequential;
use pnr_rules::{find_best_condition, EvalMetric, SearchOptions, ShardPlan, TaskView};
use proptest::prelude::*;

const ALL_METRICS: [EvalMetric; 7] = [
    EvalMetric::ZNumber,
    EvalMetric::FoilGain,
    EvalMetric::EntropyGain,
    EvalMetric::GainRatio,
    EvalMetric::GiniGain,
    EvalMetric::ChiSquared,
    EvalMetric::Laplace,
];

/// A small mixed dataset from generated rows.
fn build(rows: &[(f64, usize, bool)]) -> (Dataset, Vec<bool>) {
    let cats = ["a", "b", "c"];
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("k", AttrType::Categorical);
    b.add_class("pos");
    b.add_class("neg");
    for &(x, k, pos) in rows {
        b.push_row(
            &[Value::num(x), Value::cat(cats[k])],
            if pos { "pos" } else { "neg" },
            1.0,
        )
        .unwrap();
    }
    let d = b.finish();
    let flags: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
    (d, flags)
}

fn rows_strategy() -> impl Strategy<Value = Vec<(f64, usize, bool)>> {
    prop::collection::vec((-50.0f64..50.0, 0usize..3, prop::bool::ANY), 4..80)
}

/// The pseudo-random row mask shared with `props.rs`: deterministic in
/// `(seed, row)` so restricted views are reproducible per proptest case.
fn keep(seed: u64, salt: u64, r: u32) -> bool {
    (seed ^ salt)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(u64::from(r).wrapping_mul(1442695040888963407))
        .count_ones()
        % 2
        == 0
}

proptest! {
    /// The headline identity: threaded row-sharded scan ≡ sequential scan
    /// over the same plan, bit for bit, across shard counts × all metrics
    /// × restricted views × random (non-unit) weights.
    #[test]
    fn row_sharded_parallel_is_bit_identical_to_sequential(
        rows in rows_strategy(),
        weights in prop::collection::vec(0.1f64..10.0, 80),
        midx in 0usize..ALL_METRICS.len(),
        shards in 1usize..20,
        mask_seed in proptest::prelude::any::<u64>(),
    ) {
        let (d, flags) = build(&rows);
        let w: Vec<f64> = (0..d.n_rows()).map(|r| weights[r % weights.len()]).collect();
        let metric = ALL_METRICS[midx];
        // parallel_min_cells 0 forces worker threads even on tiny views
        let par = SearchOptions {
            parallel: true,
            parallel_min_cells: 0,
            row_shards: Some(shards),
            ..Default::default()
        };
        let seq = SearchOptions {
            parallel: false,
            row_shards: Some(shards),
            ..Default::default()
        };
        let full = TaskView::full(&d, &flags, &w);
        let once = full.restricted_to(full.rows.filter(|r| keep(mask_seed, 1, r)));
        let twice = once.restricted_to(once.rows.filter(|r| keep(mask_seed, 2, r)));
        for view in [&full, &once, &twice] {
            let got = find_best_condition(view, metric, &par);
            let want = find_best_condition_sequential(view, metric, &seq);
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(s)) => {
                    prop_assert_eq!(&g.condition, &s.condition,
                        "metric {:?} shards {} view {} rows", metric, shards, view.n_rows());
                    prop_assert_eq!(g.stats.pos.to_bits(), s.stats.pos.to_bits());
                    prop_assert_eq!(g.stats.total.to_bits(), s.stats.total.to_bits());
                    prop_assert_eq!(g.score.to_bits(), s.score.to_bits(),
                        "scores {} vs {}", g.score, s.score);
                }
                (g, s) => prop_assert!(false, "parallel {g:?} vs sequential {s:?}"),
            }
        }
    }

    /// A one-shard plan (explicit or default) must reproduce the legacy
    /// unsharded scan bit-for-bit — sharding is strictly opt-in.
    #[test]
    fn one_shard_plan_reproduces_the_unsharded_scan(
        rows in rows_strategy(),
        weights in prop::collection::vec(0.1f64..10.0, 80),
        midx in 0usize..ALL_METRICS.len(),
    ) {
        let (d, flags) = build(&rows);
        let w: Vec<f64> = (0..d.n_rows()).map(|r| weights[r % weights.len()]).collect();
        let metric = ALL_METRICS[midx];
        let v = TaskView::full(&d, &flags, &w);
        let legacy = find_best_condition_sequential(
            &v, metric, &SearchOptions { parallel: false, ..Default::default() });
        let one = find_best_condition_sequential(
            &v, metric,
            &SearchOptions { parallel: false, row_shards: Some(1), ..Default::default() });
        match (legacy, one) {
            (None, None) => {}
            (Some(l), Some(o)) => {
                prop_assert_eq!(&l.condition, &o.condition);
                prop_assert_eq!(l.stats.pos.to_bits(), o.stats.pos.to_bits());
                prop_assert_eq!(l.stats.total.to_bits(), o.stats.total.to_bits());
                prop_assert_eq!(l.score.to_bits(), o.score.to_bits());
            }
            (l, o) => prop_assert!(false, "legacy {l:?} vs one-shard {o:?}"),
        }
    }

    /// With unit weights every partial statistic is a small integer count,
    /// exact in f64 under any grouping — so *different* shard counts must
    /// agree bitwise too. This is the invariant the determinism harness's
    /// shard sweep and the training bench's bit-identity gate rely on.
    #[test]
    fn unit_weights_make_all_shard_counts_agree(
        rows in rows_strategy(),
        midx in 0usize..ALL_METRICS.len(),
        shards in 2usize..40,
        mask_seed in proptest::prelude::any::<u64>(),
    ) {
        let (d, flags) = build(&rows);
        let metric = ALL_METRICS[midx];
        let full = TaskView::full(&d, &flags, d.weights());
        let sub = full.restricted_to(full.rows.filter(|r| keep(mask_seed, 3, r)));
        for view in [&full, &sub] {
            let baseline = find_best_condition_sequential(
                view, metric, &SearchOptions { parallel: false, ..Default::default() });
            let sharded = find_best_condition_sequential(
                view, metric,
                &SearchOptions {
                    parallel: false,
                    row_shards: Some(shards),
                    ..Default::default()
                });
            match (baseline, sharded) {
                (None, None) => {}
                (Some(b), Some(s)) => {
                    prop_assert_eq!(&b.condition, &s.condition, "shards {}", shards);
                    prop_assert_eq!(b.stats.pos.to_bits(), s.stats.pos.to_bits());
                    prop_assert_eq!(b.stats.total.to_bits(), s.stats.total.to_bits());
                    prop_assert_eq!(b.score.to_bits(), s.score.to_bits());
                }
                (b, s) => prop_assert!(false, "unsharded {b:?} vs sharded {s:?}"),
            }
        }
    }

    /// The plan itself: contiguous, exhaustive, balanced, machine-free.
    #[test]
    fn shard_plans_partition_rows(n_rows in 0usize..5000, req in 1usize..64) {
        let p = ShardPlan::new(n_rows, Some(req));
        let mut expect_lo = 0;
        let mut sizes = Vec::new();
        for (lo, hi) in p.ranges() {
            prop_assert_eq!(lo, expect_lo);
            prop_assert!(hi >= lo);
            sizes.push(hi - lo);
            expect_lo = hi;
        }
        prop_assert_eq!(expect_lo, n_rows);
        let min = sizes.iter().min().copied().unwrap_or(0);
        let max = sizes.iter().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "unbalanced: {:?}", sizes);
        if n_rows > 0 {
            prop_assert!(min >= 1, "empty shard in {:?}", sizes);
        }
    }
}
