//! Proof that the `audit` invariant checkers fire end-to-end.
//!
//! Each corruption test violates a documented precondition of a view
//! operation and asserts the compiled-in checker panics with its context
//! string. A companion test runs the same operations *correctly* to show
//! the checkers stay silent on honest call sequences. The checkers
//! themselves have direct unit tests in `pnr_data::audit`.

#![cfg(feature = "audit")]

use pnr_data::{AttrType, Dataset, DatasetBuilder, RowSet, Value};
use pnr_rules::{TaskView, ViewIndex};

fn dataset(n: usize) -> Dataset {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_class("pos");
    b.add_class("neg");
    for i in 0..n {
        let class = if i % 3 == 0 { "pos" } else { "neg" };
        b.push_row(&[Value::num((i % 7) as f64)], class, 1.0 + (i % 4) as f64)
            .unwrap();
    }
    b.finish()
}

fn flags_and_weights(d: &Dataset) -> (Vec<bool>, Vec<f64>) {
    let pos = d.class_code("pos").unwrap();
    let is_pos = (0..d.n_rows()).map(|r| d.label(r) == pos).collect();
    (is_pos, d.weights().to_vec())
}

#[test]
#[should_panic(expected = "audit: TaskView::restricted_to")]
fn restricting_to_foreign_rows_is_caught() {
    let d = dataset(20);
    let (is_pos, w) = flags_and_weights(&d);
    let v = TaskView::over(&d, RowSet::from_vec(vec![0, 2, 4, 6]), &is_pos, &w);
    // row 5 is not in the view: the subset checker must refuse
    let _ = v.restricted_to(RowSet::from_vec(vec![0, 5]));
}

#[test]
#[should_panic(expected = "audit: TaskView::without")]
fn removing_foreign_rows_breaks_conservation() {
    let d = dataset(20);
    let (is_pos, w) = flags_and_weights(&d);
    let v = TaskView::over(&d, RowSet::from_vec(vec![0, 2, 4, 6]), &is_pos, &w);
    // rows 1 and 3 carry weight but are not in the view, so
    // parent ≠ kept + removed and the conservation checker fires
    let _ = v.without(&RowSet::from_vec(vec![0, 1, 3]));
}

#[test]
#[should_panic(expected = "audit: ViewIndex::projection")]
fn deriving_with_foreign_rows_corrupts_the_projection() {
    let d = dataset(20);
    let parent = ViewIndex::root(RowSet::from_vec(vec![0, 2, 4, 6, 8]), d.n_attrs());
    let _ = parent.projection(&d, 0); // materialise the ancestor source
                                      // rows 1 and 3 are not in the parent: the filtered projection silently
                                      // drops them, and the consistency checker catches the length mismatch
    let child = parent.derive(RowSet::from_vec(vec![0, 1, 3, 4]));
    let _ = child.projection(&d, 0);
}

#[test]
fn honest_view_operations_stay_silent_under_audit() {
    let d = dataset(60);
    let (is_pos, w) = flags_and_weights(&d);
    let v = TaskView::full(&d, &is_pos, &w);
    let _ = v.projection(0);
    let sub = v.restricted_to(RowSet::from_vec((0..60).filter(|r| r % 2 == 0).collect()));
    let _ = sub.projection(0);
    let smaller = sub.without(&RowSet::from_vec(vec![0, 4, 8]));
    let _ = smaller.projection(0);
    assert_eq!(smaller.n_rows(), 27);
}
