//! The P-phase: high-support sequential covering for recall.
//!
//! P-rules detect the *presence* of the target class. Unlike classical
//! sequential covering, the grower favours support over accuracy (section
//! 2.1): "if a high accuracy rule cannot be found without sacrificing its
//! support, then we favor a rule that has higher support but lower
//! accuracy". Rules are added until a fraction `rp` of the target class is
//! covered; beyond that point a new rule must clear the `min_accuracy`
//! threshold to enter the model.

use crate::grow::{grow_rule, GrowOptions};
use crate::nphase::StopReason;
use crate::params::PnruleParams;
use pnr_rules::{BudgetTracker, CovStats, Rule, TaskView};
use pnr_telemetry::{Span, SpanKind, TelemetrySink};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One accepted P-rule with its discovery-time statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PRule {
    /// The rule.
    pub rule: Rule,
    /// Coverage over the remaining data at discovery time.
    pub stats: CovStats,
}

/// Outcome of the P-phase.
#[derive(Debug, Clone, Default)]
pub struct PPhaseResult {
    /// Accepted P-rules in rank (discovery) order.
    pub rules: Vec<PRule>,
    /// Fraction of the original target weight covered by the union.
    pub covered_recall: f64,
    /// Why the covering loop stopped adding rules.
    pub stop_reason: StopReason,
}

/// Runs the P-phase over `view` (normally the full training set).
///
/// Starts a fresh tracker for the params' own [`budget`]
/// (`PnruleParams::budget`); the full learner shares one tracker across
/// both phases via [`learn_p_rules_with_budget`].
///
/// [`budget`]: crate::params::PnruleParams::budget
pub fn learn_p_rules(view: &TaskView<'_>, params: &PnruleParams) -> PPhaseResult {
    let tracker = params.budget.start().map(Arc::new);
    learn_p_rules_with_budget(view, params, tracker.as_ref())
}

/// [`learn_p_rules`] charging against an externally owned budget tracker
/// (`None` = unlimited). When the budget runs out mid-phase the rules
/// accepted so far are returned with
/// [`StopReason::BudgetExhausted`].
pub fn learn_p_rules_with_budget(
    view: &TaskView<'_>,
    params: &PnruleParams,
    budget: Option<&Arc<BudgetTracker>>,
) -> PPhaseResult {
    learn_p_rules_with_sink(view, params, budget, &pnr_telemetry::noop())
}

/// [`learn_p_rules_with_budget`] reporting phase/rule spans and search
/// counters to `sink`. Telemetry is write-only: the learned rules are
/// identical whatever sink is attached.
pub fn learn_p_rules_with_sink(
    view: &TaskView<'_>,
    params: &PnruleParams,
    budget: Option<&Arc<BudgetTracker>>,
    sink: &Arc<dyn TelemetrySink>,
) -> PPhaseResult {
    learn_p_rules_resumable(view, params, budget, sink, Vec::new(), &mut |_| {})
}

/// The full P-phase loop with checkpoint/resume hooks: `seed` rules are
/// **replayed** — accepted without re-searching, with the same coverage
/// removal, recall accumulation and budget rule charges the original run
/// performed — before the covering loop continues live, and `on_rule` is
/// invoked with the accepted-so-far rule list after every *new* (non-seed)
/// acceptance.
///
/// Replay is bit-exact: seed statistics are trusted (they were computed on
/// this same view) and folded in the original `+=` order, so a resumed
/// phase reaches the interruption point in the exact float state of the
/// uninterrupted run. Callers resuming under a [`BudgetTracker`] must
/// pre-charge the checkpointed candidate count themselves — replay only
/// charges rules (see [`crate::fit_checkpoint`]).
pub fn learn_p_rules_resumable(
    view: &TaskView<'_>,
    params: &PnruleParams,
    budget: Option<&Arc<BudgetTracker>>,
    sink: &Arc<dyn TelemetrySink>,
    seed: Vec<PRule>,
    on_rule: &mut dyn FnMut(&[PRule]),
) -> PPhaseResult {
    let _phase_span = Span::enter(sink.as_ref(), SpanKind::PPhase, "p_phase");
    params.validate();
    let target_total = view.pos_weight();
    if target_total <= 0.0 {
        return PPhaseResult::default();
    }
    let min_support_weight = params.min_support_frac * target_total;

    let mut result = PPhaseResult::default();
    let mut remaining = view.clone();
    let mut covered_pos = 0.0;

    // --- Replay checkpointed rules (no search, no callback). ---
    let mut replay_stopped = false;
    for seeded in seed {
        let covered_rows = remaining.rows_matching_rule(&seeded.rule);
        covered_pos += seeded.stats.pos; // lint:allow(unordered-float-sum) — sequential rule-order accumulation (replay)
        result.rules.push(seeded);
        remaining = remaining.without(&covered_rows);
        if budget.is_some_and(|b| !b.charge_rule()) {
            // The original run stopped right here too: the replayed rule
            // was its last.
            result.stop_reason = StopReason::BudgetExhausted;
            replay_stopped = true;
            break;
        }
    }

    if replay_stopped {
        result.covered_recall = covered_pos / target_total;
        return result;
    }

    loop {
        if result.rules.len() >= params.max_p_rules {
            result.stop_reason = StopReason::RuleCap;
            break;
        }
        if remaining.pos_weight() <= 0.0 {
            result.stop_reason = StopReason::Exhausted;
            break;
        }
        if budget.is_some_and(|b| b.is_exhausted() || !b.check_deadline()) {
            result.stop_reason = StopReason::BudgetExhausted;
            break;
        }
        let opts = GrowOptions {
            metric: params.metric,
            max_len: params.max_p_rule_len,
            min_support_weight,
            use_ranges: params.use_ranges,
            min_improvement: params.min_improvement,
            recall_guard: None,
            budget: budget.cloned(),
            sink: sink.clone(),
            search_workers: params.search_workers,
            row_shards: params.row_shards,
        };
        let grown = {
            // Label formatting is gated so the disabled path allocates
            // nothing per rule.
            let label = if sink.enabled() {
                format!("p{}", result.rules.len())
            } else {
                String::new()
            };
            let _grow_span = Span::enter(sink.as_ref(), SpanKind::PRuleGrow, &label);
            grow_rule(&remaining, &opts)
        };
        let Some(grown) = grown else {
            // The candidate budget may have fired inside the search, in
            // which case "no rule" means "no budget", not "no signal".
            result.stop_reason = if budget.is_some_and(|b| b.is_exhausted()) {
                StopReason::BudgetExhausted
            } else {
                StopReason::NoRuleGrown
            };
            break;
        };
        if grown.stats.pos <= 0.0 {
            // A rule that covers no remaining target weight adds nothing.
            result.stop_reason = StopReason::NoRuleGrown;
            break;
        }
        // A useful P-rule must beat the remaining prior — otherwise the
        // phase has run out of signal and would start adding noise.
        if grown.stats.accuracy() <= remaining.prior() {
            result.stop_reason = StopReason::LowAccuracy;
            break;
        }
        let recall_so_far = covered_pos / target_total;
        if recall_so_far >= params.rp && grown.stats.accuracy() < params.min_accuracy {
            // Desired coverage reached; only high-accuracy rules may enter.
            result.stop_reason = StopReason::CoverageReached;
            break;
        }
        let covered_rows = remaining.rows_matching_rule(&grown.rule);
        covered_pos += grown.stats.pos; // lint:allow(unordered-float-sum) — sequential rule-order accumulation
        result.rules.push(PRule {
            rule: grown.rule,
            stats: grown.stats,
        });
        remaining = remaining.without(&covered_rows);
        on_rule(&result.rules);
        if budget.is_some_and(|b| !b.charge_rule()) {
            // The rule that crossed the limit is valid and kept; the
            // phase just must not start another.
            result.stop_reason = StopReason::BudgetExhausted;
            break;
        }
    }

    result.covered_recall = covered_pos / target_total;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};

    /// Two disjoint target signatures on one attribute, plus noise rows.
    fn two_peak_data() -> (Dataset, Vec<bool>) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..1000 {
            let x = (i % 100) as f64;
            let target = (10.0..12.0).contains(&x) || (50.0..52.0).contains(&x);
            b.push_row(&[Value::num(x)], if target { "pos" } else { "neg" }, 1.0)
                .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        (d, is_pos)
    }

    #[test]
    fn covers_both_disjoint_signatures() {
        let (d, is_pos) = two_peak_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let params = PnruleParams {
            min_support_frac: 0.0,
            ..Default::default()
        };
        let res = learn_p_rules(&v, &params);
        assert!(res.covered_recall >= 0.95, "recall {}", res.covered_recall);
        assert!(res.rules.len() >= 2, "two peaks need at least two rules");
    }

    #[test]
    fn empty_target_yields_no_rules() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..10 {
            b.push_row(&[Value::num(i as f64)], "neg", 1.0).unwrap();
        }
        let d = b.finish();
        let is_pos = vec![false; d.n_rows()];
        let v = TaskView::full(&d, &is_pos, d.weights());
        let res = learn_p_rules(&v, &PnruleParams::default());
        assert!(res.rules.is_empty());
        assert_eq!(res.covered_recall, 0.0);
    }

    #[test]
    fn max_p_rules_caps_rule_count() {
        let (d, is_pos) = two_peak_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let params = PnruleParams {
            max_p_rules: 1,
            min_support_frac: 0.0,
            ..Default::default()
        };
        let res = learn_p_rules(&v, &params);
        assert_eq!(res.rules.len(), 1);
    }

    #[test]
    fn p1_restriction_produces_single_condition_rules() {
        let (d, is_pos) = two_peak_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let params = PnruleParams {
            max_p_rule_len: Some(1),
            min_support_frac: 0.0,
            ..Default::default()
        };
        let res = learn_p_rules(&v, &params);
        assert!(!res.rules.is_empty());
        for p in &res.rules {
            assert_eq!(p.rule.len(), 1);
        }
    }

    #[test]
    fn support_floor_blocks_tiny_rules() {
        // Each pure peak covers 20 rows (half the 40 positives). A floor of
        // 60% of the target weight (= 24) forbids those pure rules, so every
        // accepted rule must be wider (and hence impure); with a loose floor
        // the pure 20-row peaks are admissible.
        let (d, is_pos) = two_peak_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let loose = learn_p_rules(
            &v,
            &PnruleParams {
                min_support_frac: 0.05,
                ..Default::default()
            },
        );
        let tight = learn_p_rules(
            &v,
            &PnruleParams {
                min_support_frac: 0.6,
                ..Default::default()
            },
        );
        assert!(
            loose.rules.iter().any(|p| p.stats.total < 24.0),
            "loose finds pure peaks"
        );
        for p in &tight.rules {
            assert!(
                p.stats.total >= 24.0 - 1e-9,
                "support {} under floor",
                p.stats.total
            );
        }
    }

    #[test]
    fn rules_are_ranked_by_discovery_order() {
        let (d, is_pos) = two_peak_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let res = learn_p_rules(
            &v,
            &PnruleParams {
                min_support_frac: 0.0,
                ..Default::default()
            },
        );
        // Later rules are discovered on smaller remainders, so their
        // discovery-time positive coverage must not increase.
        for w in res.rules.windows(2) {
            assert!(w[0].stats.pos >= w[1].stats.pos - 1e-9);
        }
    }
}
