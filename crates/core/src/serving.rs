//! Drift-tolerant scoring of new data against a saved model.
//!
//! Training assumes complete, clean records (the data layer rejects
//! missing and non-finite values outright). Serving cannot: data drifts
//! between train and score time — columns get reordered or renamed,
//! extra columns appear, category dictionaries grow, sensors emit NaN.
//! [`ServingModel`] reconciles incoming data against the artifact's
//! stored schema **by attribute name**, tolerating column reordering and
//! extra columns, and handles per-value drift through an explicit
//! [`UnknownPolicy`]:
//!
//! * [`UnknownPolicy::ConditionFalse`] (default) — an unknown value never
//!   satisfies a rule condition. This is the paper-consistent reading of
//!   rule matching: a condition only fires on values the training data
//!   vouched for, so a record with an unseen category simply falls
//!   through to less specific rules (or to the no-P-match score of 0).
//! * [`UnknownPolicy::Abstain`] — any unknown value makes the model
//!   decline to apply rules at all: the record gets the no-P-rule score
//!   with [`ScoredRecord::abstained`] set.
//! * [`UnknownPolicy::Reject`] — any unknown value is a typed per-record
//!   error; the record is quarantined, not scored.
//!
//! Rule evaluation itself runs on the **compiled engine** by default
//! (see [`crate::compiled`]): the model's rule lists are lowered into
//! attribute-indexed dispatch tables at construction, and unknown values
//! mask an attribute's entire dispatch table — the exact compiled form
//! of "a `None` lookup never satisfies a condition". The engines are
//! bit-identical; [`ScoringEngine`] selects one explicitly.
//!
//! Every path reports to telemetry: `rows_scored`, `rows_quarantined`,
//! `unseen_category_hits`, `nan_numeric_hits` (the hit counters count
//! *values*, and are bumped for every fault in a record before the
//! policy decides its fate) and `compiled_dispatch_hits` (records routed
//! through the compiled engine). Nothing in this module panics on any
//! input.

use crate::artifact::{ArtifactError, ModelArtifact};
use crate::compiled::{CompiledModel, ScoringEngine};
use crate::model::RuleTrace;
use pnr_data::{AttrType, Dataset};
use pnr_telemetry::{Counter, TelemetrySink};
use std::fmt;
use std::sync::Arc;

/// How the serving path treats an unknown value (unseen category,
/// non-finite numeric, defaulted missing column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownPolicy {
    /// Unknown values never match conditions; scoring proceeds (default).
    #[default]
    ConditionFalse,
    /// Records holding any unknown value get the no-P-rule score with an
    /// `abstained` trace flag instead of rule-derived scores.
    Abstain,
    /// Records holding any unknown value are rejected with a typed error.
    Reject,
}

impl UnknownPolicy {
    /// Parses the CLI spelling (`condition-false` | `abstain` | `reject`).
    pub fn parse(s: &str) -> Option<UnknownPolicy> {
        match s {
            "condition-false" => Some(UnknownPolicy::ConditionFalse),
            "abstain" => Some(UnknownPolicy::Abstain),
            "reject" => Some(UnknownPolicy::Reject),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            UnknownPolicy::ConditionFalse => "condition-false",
            UnknownPolicy::Abstain => "abstain",
            UnknownPolicy::Reject => "reject",
        }
    }
}

/// How reconciliation treats a stored attribute absent from the incoming
/// data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissingColumnPolicy {
    /// Reconciliation fails with
    /// [`ArtifactError::SchemaMismatch`] (default).
    #[default]
    Reject,
    /// The column is treated as all-unknown: every record behaves as if
    /// it held an unknown value there, routed through the
    /// [`UnknownPolicy`].
    Default,
}

impl MissingColumnPolicy {
    /// Parses the CLI spelling (`reject` | `default`).
    pub fn parse(s: &str) -> Option<MissingColumnPolicy> {
        match s {
            "reject" => Some(MissingColumnPolicy::Reject),
            "default" => Some(MissingColumnPolicy::Default),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            MissingColumnPolicy::Reject => "reject",
            MissingColumnPolicy::Default => "default",
        }
    }
}

/// Why a serving-time value is unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownKind {
    /// Categorical value absent from the training dictionary.
    UnseenCategory,
    /// Numeric value that parsed but is NaN or infinite.
    NonFinite,
    /// The attribute's column is missing from the incoming data and the
    /// missing-column policy defaults it.
    MissingColumn,
}

/// One reconciled attribute value, indexed by *stored* attribute order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServingValue {
    /// A finite numeric value.
    Num(f64),
    /// A categorical value as a *stored-dictionary* code.
    Code(u32),
    /// A value the trained model has no grounding for.
    Unknown(UnknownKind),
}

/// A scored record: the model's output plus serving-path provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredRecord {
    /// The model score (probability-like, in `[0, 1]`).
    pub score: f64,
    /// The thresholded binary decision.
    pub decision: bool,
    /// Which rules fired.
    pub trace: RuleTrace,
    /// True when [`UnknownPolicy::Abstain`] suppressed rule matching; the
    /// score is then the no-P-rule score.
    pub abstained: bool,
    /// Number of unknown values the record carried.
    pub unknown_values: usize,
}

/// Why one record could not be scored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The record is structurally unusable (wrong field count, an
    /// unparsable numeric field); quarantined like the CSV loader does.
    Structural {
        /// What exactly is wrong.
        detail: String,
    },
    /// The record carried unknown values and the policy is
    /// [`UnknownPolicy::Reject`].
    UnknownRejected {
        /// How many values were unknown.
        unknown_values: usize,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Structural { detail } => write!(f, "Structural: {detail}"),
            RecordError::UnknownRejected { unknown_values } => write!(
                f,
                "UnknownRejected: record holds {unknown_values} unknown value(s) \
                 and the unknown-policy is reject"
            ),
        }
    }
}

impl std::error::Error for RecordError {}

/// How incoming columns map onto the stored schema, built once per
/// stream from its header by [`ServingModel::reconcile_header`].
#[derive(Debug, Clone)]
pub struct ColumnMap {
    /// For each stored attribute: position in the incoming record
    /// (`None` = missing, defaulted per policy).
    positions: Vec<Option<usize>>,
    /// Field count of the incoming header; records must match it.
    incoming_width: usize,
}

impl ColumnMap {
    /// Stored attributes whose column is missing from the incoming data.
    pub fn n_missing(&self) -> usize {
        self.positions.iter().filter(|p| p.is_none()).count()
    }

    /// Incoming columns that map to no stored attribute (ignored).
    pub fn n_extra(&self) -> usize {
        self.incoming_width - (self.positions.len() - self.n_missing())
    }
}

/// How an incoming [`Dataset`]'s columns and dictionary codes map onto
/// the stored schema, built once by [`ServingModel::reconcile_dataset`].
#[derive(Debug, Clone)]
pub struct DatasetMap {
    /// For each stored attribute: the incoming attribute index (`None` =
    /// missing, defaulted per policy).
    attrs: Vec<Option<usize>>,
    /// For each stored attribute: incoming dictionary code → stored code
    /// (`None` entries are unseen categories). Empty for numeric or
    /// missing attributes.
    code_maps: Vec<Vec<Option<u32>>>,
}

/// Scores new data against a loaded [`ModelArtifact`], reconciling it
/// with the stored training schema by attribute name.
#[derive(Debug, Clone)]
pub struct ServingModel {
    artifact: ModelArtifact,
    unknown_policy: UnknownPolicy,
    missing_policy: MissingColumnPolicy,
    engine: ScoringEngine,
    /// The compiled engine, built eagerly at construction. `None` only
    /// when the model does not compile (an attribute tested both
    /// categorically and numerically — impossible for artifacts that
    /// passed validation); scoring then falls back to the interpreter.
    compiled: Option<CompiledModel>,
    sink: Arc<dyn TelemetrySink>,
}

impl ServingModel {
    /// Wraps an artifact with the default policies (`ConditionFalse`
    /// unknowns, `Reject` missing columns, `Auto` engine) and no
    /// telemetry.
    pub fn new(artifact: ModelArtifact) -> Self {
        let compiled = CompiledModel::compile(&artifact.model).ok();
        ServingModel {
            artifact,
            unknown_policy: UnknownPolicy::default(),
            missing_policy: MissingColumnPolicy::default(),
            engine: ScoringEngine::default(),
            compiled,
            sink: pnr_telemetry::noop(),
        }
    }

    /// Sets the unknown-value policy.
    pub fn with_unknown_policy(mut self, policy: UnknownPolicy) -> Self {
        self.unknown_policy = policy;
        self
    }

    /// Sets the missing-column policy.
    pub fn with_missing_policy(mut self, policy: MissingColumnPolicy) -> Self {
        self.missing_policy = policy;
        self
    }

    /// Selects the rule-evaluation engine. The engines are bit-identical
    /// (property-tested), so this only trades evaluation cost;
    /// [`ScoringEngine::Interpreter`] exists for cross-checking and
    /// benchmarking.
    pub fn with_engine(mut self, engine: ScoringEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Routes serving counters to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sink = sink;
        self
    }

    /// The wrapped artifact.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The active unknown-value policy.
    pub fn unknown_policy(&self) -> UnknownPolicy {
        self.unknown_policy
    }

    /// The engine that will actually evaluate rules: `"compiled"` unless
    /// the interpreter was forced (or the model failed to compile).
    pub fn active_engine(&self) -> &'static str {
        match (self.engine, &self.compiled) {
            (ScoringEngine::Interpreter, _) | (_, None) => "interpreter",
            (_, Some(_)) => "compiled",
        }
    }

    /// The compiled engine when it is the active one.
    fn active_compiled(&self) -> Option<&CompiledModel> {
        match self.engine {
            ScoringEngine::Interpreter => None,
            ScoringEngine::Auto | ScoringEngine::Compiled => self.compiled.as_ref(),
        }
    }

    /// Maps an incoming CSV header onto the stored schema by name.
    /// Column order is free and extra columns are ignored; a stored
    /// attribute absent from the header is an error under
    /// [`MissingColumnPolicy::Reject`] and an all-unknown column under
    /// [`MissingColumnPolicy::Default`].
    pub fn reconcile_header<S: AsRef<str>>(
        &self,
        header: &[S],
    ) -> Result<ColumnMap, ArtifactError> {
        let mut positions = Vec::with_capacity(self.artifact.schema.n_attrs());
        let mut missing = Vec::new();
        for a in &self.artifact.schema.attributes {
            let pos = header.iter().position(|h| h.as_ref() == a.name);
            if pos.is_none() {
                missing.push(a.name.clone());
            }
            positions.push(pos);
        }
        if !missing.is_empty() && self.missing_policy == MissingColumnPolicy::Reject {
            return Err(ArtifactError::SchemaMismatch {
                detail: format!(
                    "incoming data is missing stored column(s) [{}] and the \
                     missing-column policy is reject",
                    missing.join(", ")
                ),
            });
        }
        Ok(ColumnMap {
            positions,
            incoming_width: header.len(),
        })
    }

    /// Maps an incoming [`Dataset`] onto the stored schema by attribute
    /// name. Beyond presence, types must agree (a name bound to a
    /// different type is a [`ArtifactError::SchemaMismatch`]); for
    /// categorical attributes a code-translation table is built so the
    /// incoming dataset's interning order does not matter.
    pub fn reconcile_dataset(&self, data: &Dataset) -> Result<DatasetMap, ArtifactError> {
        let schema = data.schema();
        let stored = &self.artifact.schema;
        let mut attrs = Vec::with_capacity(stored.n_attrs());
        let mut code_maps = Vec::with_capacity(stored.n_attrs());
        let mut missing = Vec::new();
        for sa in &stored.attributes {
            let found = schema.attr_index(&sa.name);
            match found {
                None => {
                    missing.push(sa.name.clone());
                    attrs.push(None);
                    code_maps.push(Vec::new());
                }
                Some(ia) => {
                    let incoming = schema.attr(ia);
                    if incoming.ty != sa.ty {
                        return Err(ArtifactError::SchemaMismatch {
                            detail: format!(
                                "attribute `{}` is {} in the incoming data but was \
                                 trained as {}",
                                sa.name,
                                type_name(incoming.ty),
                                type_name(sa.ty)
                            ),
                        });
                    }
                    attrs.push(Some(ia));
                    if sa.ty == AttrType::Categorical {
                        let map: Vec<Option<u32>> = incoming
                            .dict
                            .iter()
                            .map(|(_, value)| sa.dict.code(value))
                            .collect();
                        code_maps.push(map);
                    } else {
                        code_maps.push(Vec::new());
                    }
                }
            }
        }
        if !missing.is_empty() && self.missing_policy == MissingColumnPolicy::Reject {
            return Err(ArtifactError::SchemaMismatch {
                detail: format!(
                    "incoming data is missing stored column(s) [{}] and the \
                     missing-column policy is reject",
                    missing.join(", ")
                ),
            });
        }
        Ok(DatasetMap { attrs, code_maps })
    }

    /// Bumps `c` by one when telemetry is recording. Every serving-path
    /// counter goes through here: the `enabled()` gate keeps the default
    /// no-op sink free of dispatch so an un-instrumented scorer pays
    /// nothing per record.
    fn count(&self, c: Counter) {
        if self.sink.enabled() {
            self.sink.add(c, 1);
        }
    }

    /// Scores one record whose values are already reconciled into stored
    /// attribute order. The core serving primitive; the `score_fields` /
    /// `score_dataset_row` fronts feed it.
    pub fn score_values(&self, values: &[ServingValue]) -> Result<ScoredRecord, RecordError> {
        if values.len() != self.artifact.schema.n_attrs() {
            self.count(Counter::RowsQuarantined);
            return Err(RecordError::Structural {
                detail: format!(
                    "expected {} reconciled values, got {}",
                    self.artifact.schema.n_attrs(),
                    values.len()
                ),
            });
        }
        // Detect and count every fault first, before the policy decides.
        let mut unknown_values = 0usize;
        for v in values {
            let kind = match *v {
                ServingValue::Unknown(kind) => Some(kind),
                ServingValue::Num(x) if !x.is_finite() => Some(UnknownKind::NonFinite),
                _ => None,
            };
            if let Some(kind) = kind {
                unknown_values += 1;
                match kind {
                    UnknownKind::UnseenCategory => {
                        self.count(Counter::UnseenCategoryHits);
                    }
                    UnknownKind::NonFinite => {
                        self.count(Counter::NanNumericHits);
                    }
                    UnknownKind::MissingColumn => {}
                }
            }
        }
        if unknown_values > 0 {
            match self.unknown_policy {
                UnknownPolicy::Reject => {
                    self.count(Counter::RowsQuarantined);
                    return Err(RecordError::UnknownRejected { unknown_values });
                }
                UnknownPolicy::Abstain => {
                    self.count(Counter::RowsScored);
                    return Ok(ScoredRecord {
                        score: 0.0,
                        decision: false,
                        trace: RuleTrace {
                            p_rule: None,
                            n_rule: None,
                        },
                        abstained: true,
                        unknown_values,
                    });
                }
                UnknownPolicy::ConditionFalse => {}
            }
        }
        let num = |attr: usize| match values.get(attr) {
            Some(ServingValue::Num(x)) if x.is_finite() => Some(*x),
            _ => None,
        };
        let cat = |attr: usize| match values.get(attr) {
            Some(ServingValue::Code(c)) => Some(*c),
            _ => None,
        };
        let model = &self.artifact.model;
        let (score, trace) = match self.active_compiled() {
            Some(compiled) => {
                self.count(Counter::CompiledDispatchHits);
                compiled.score_with_trace_lookup(num, cat)
            }
            None => match model.p_rules.first_match_lookup(num, cat) {
                None => (
                    0.0,
                    RuleTrace {
                        p_rule: None,
                        n_rule: None,
                    },
                ),
                Some(pi) => {
                    let nj = model.n_rules.first_match_lookup(num, cat);
                    (
                        model.score_matrix.score(pi, nj),
                        RuleTrace {
                            p_rule: Some(pi),
                            n_rule: nj,
                        },
                    )
                }
            },
        };
        self.count(Counter::RowsScored);
        Ok(ScoredRecord {
            score,
            decision: score > model.threshold,
            trace,
            abstained: false,
            unknown_values,
        })
    }

    /// Scores one raw CSV record (already split into fields) through a
    /// header-derived [`ColumnMap`]. Wrong field counts and unparsable
    /// numeric fields are structural errors (the CSV loader's quarantine
    /// semantics); parseable-but-non-finite numerics (`NaN`, `inf`) are
    /// *unknown values* routed through the [`UnknownPolicy`].
    pub fn score_fields<S: AsRef<str>>(
        &self,
        fields: &[S],
        map: &ColumnMap,
    ) -> Result<ScoredRecord, RecordError> {
        if fields.len() != map.incoming_width {
            self.count(Counter::RowsQuarantined);
            return Err(RecordError::Structural {
                detail: format!(
                    "expected {} field(s) per the header, got {}",
                    map.incoming_width,
                    fields.len()
                ),
            });
        }
        let mut values = Vec::with_capacity(self.artifact.schema.n_attrs());
        for (attr, pos) in map.positions.iter().enumerate() {
            let a = self.artifact.schema.attr(attr);
            let value = match pos.and_then(|p| fields.get(p)) {
                None => ServingValue::Unknown(UnknownKind::MissingColumn),
                Some(raw) => {
                    let raw = raw.as_ref().trim();
                    match a.ty {
                        AttrType::Numeric => match raw.parse::<f64>() {
                            Err(_) => {
                                self.count(Counter::RowsQuarantined);
                                return Err(RecordError::Structural {
                                    detail: format!(
                                        "field `{raw}` of numeric attribute `{}` is \
                                         not a number",
                                        a.name
                                    ),
                                });
                            }
                            Ok(x) if x.is_finite() => ServingValue::Num(x),
                            Ok(_) => ServingValue::Unknown(UnknownKind::NonFinite),
                        },
                        AttrType::Categorical => match a.dict.code(raw) {
                            Some(code) => ServingValue::Code(code),
                            None => ServingValue::Unknown(UnknownKind::UnseenCategory),
                        },
                    }
                }
            };
            values.push(value);
        }
        self.score_values(&values)
    }

    /// Scores one row of a reconciled [`Dataset`]. Dataset construction
    /// already rejects non-finite numerics, so the drift handled here is
    /// column/category drift via the [`DatasetMap`].
    pub fn score_dataset_row(
        &self,
        data: &Dataset,
        map: &DatasetMap,
        row: usize,
    ) -> Result<ScoredRecord, RecordError> {
        let stored = &self.artifact.schema;
        let mut values = Vec::with_capacity(stored.n_attrs());
        for (attr, ia) in map.attrs.iter().enumerate() {
            let value = match *ia {
                None => ServingValue::Unknown(UnknownKind::MissingColumn),
                Some(ia) => match stored.attr(attr).ty {
                    AttrType::Numeric => {
                        let x = data.num(ia, row);
                        if x.is_finite() {
                            ServingValue::Num(x)
                        } else {
                            ServingValue::Unknown(UnknownKind::NonFinite)
                        }
                    }
                    AttrType::Categorical => {
                        let incoming_code = data.cat(ia, row);
                        match map
                            .code_maps
                            .get(attr)
                            .and_then(|m| m.get(usize::try_from(incoming_code).ok()?))
                        {
                            Some(Some(stored_code)) => ServingValue::Code(*stored_code),
                            _ => ServingValue::Unknown(UnknownKind::UnseenCategory),
                        }
                    }
                },
            };
            values.push(value);
        }
        self.score_values(&values)
    }

    /// Notes one structurally quarantined record the caller filtered out
    /// before scoring (e.g. the CSV stream's own row quarantine), so the
    /// `rows_quarantined` counter covers the whole stream.
    pub fn record_structural_quarantine(&self) {
        self.count(Counter::RowsQuarantined);
    }
}

fn type_name(ty: AttrType) -> &'static str {
    match ty {
        AttrType::Numeric => "numeric",
        AttrType::Categorical => "categorical",
    }
}
