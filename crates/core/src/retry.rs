//! Reusable bounded retry with deterministic, seeded backoff jitter.
//!
//! This is the one retry loop the workspace shares: artifact loading
//! ([`crate::artifact::load_with_retry`]), the sentinel's daemon
//! reconnects, and refit artifact publication all run through
//! [`run`]. Delays grow exponentially (`base_delay * 2^i`, capped at
//! `max_delay`) and are optionally jittered by a seeded LCG — **never**
//! by wall-clock randomness — so two runs with the same seed sleep the
//! same schedule and a retry trace is reproducible bit for bit.

use std::time::Duration;

/// Knuth's MMIX LCG multiplier/increment; full-period over `u64`.
const LCG_MULT: u64 = 6364136223846793005;
const LCG_INC: u64 = 1442695040888963407;

/// One LCG step: deterministic, allocation-free pseudo-randomness for
/// backoff jitter. Not a statistical RNG and not meant to be one.
fn lcg_step(state: u64) -> u64 {
    state.wrapping_mul(LCG_MULT).wrapping_add(LCG_INC)
}

/// Bounded exponential backoff schedule. `jitter_seed == 0` means no
/// jitter (the artifact loader's historical behaviour); a non-zero seed
/// adds a deterministic extra delay in `[0, delay/2]` derived from
/// `(seed, attempt)` only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Total attempts (including the first); at least 1 is always made.
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single un-jittered delay.
    pub max_delay: Duration,
    /// Seed for the LCG jitter; 0 disables jitter.
    pub jitter_seed: u64,
}

impl Backoff {
    /// An un-jittered schedule.
    pub fn new(attempts: u32, base_delay: Duration, max_delay: Duration) -> Self {
        Backoff {
            attempts,
            base_delay,
            max_delay,
            jitter_seed: 0,
        }
    }

    /// Enables deterministic jitter keyed on `seed` (0 keeps it off).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The delay before retry number `i` (0-based): saturating
    /// exponential growth capped at `max_delay`, plus the seeded jitter.
    pub fn delay(&self, i: u32) -> Duration {
        let factor = 1u32.checked_shl(i).unwrap_or(u32::MAX);
        let base = self.base_delay.saturating_mul(factor).min(self.max_delay);
        if self.jitter_seed == 0 || base.is_zero() {
            return base;
        }
        // Jitter in [0, base/2], a pure function of (seed, attempt) — no
        // wall clock, no thread-local RNG, so schedules replay exactly.
        let word = lcg_step(lcg_step(self.jitter_seed).wrapping_add(u64::from(i)));
        let half_ns = u64::try_from((base / 2).as_nanos()).unwrap_or(u64::MAX);
        if half_ns == 0 {
            return base;
        }
        base.saturating_add(Duration::from_nanos(word % (half_ns + 1)))
    }
}

/// Why a [`run`] call gave up.
#[derive(Debug)]
pub enum RetryError<E> {
    /// The operation failed with a non-transient error; retrying would
    /// only repeat it. Returned after however many attempts had run.
    Fatal(E),
    /// Every attempt failed transiently; `last` is the final error.
    Exhausted {
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The error of the last attempt.
        last: E,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Fatal(e) => write!(f, "Fatal: {e}"),
            RetryError::Exhausted { attempts, last } => write!(
                f,
                "Exhausted: gave up after {attempts} attempt(s); last error: {last}"
            ),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for RetryError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetryError::Fatal(e) | RetryError::Exhausted { last: e, .. } => Some(e),
        }
    }
}

/// Runs `op` under `backoff`: transient failures (per `transient`) are
/// retried after [`Backoff::delay`]; the first non-transient failure
/// short-circuits as [`RetryError::Fatal`]; exhausting every attempt
/// yields [`RetryError::Exhausted`] with the last error. `op` receives
/// the 0-based attempt index so callers can log or vary behaviour.
pub fn run<T, E>(
    backoff: &Backoff,
    mut transient: impl FnMut(&E) -> bool,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, RetryError<E>> {
    let attempts = backoff.attempts.max(1);
    let mut i = 0u32;
    loop {
        match op(i) {
            Ok(v) => return Ok(v),
            Err(e) => {
                if !transient(&e) {
                    return Err(RetryError::Fatal(e));
                }
                i += 1;
                if i >= attempts {
                    return Err(RetryError::Exhausted { attempts, last: e });
                }
                std::thread::sleep(backoff.delay(i - 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap_without_jitter() {
        let b = Backoff::new(5, Duration::from_millis(10), Duration::from_millis(25));
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(20));
        assert_eq!(b.delay(2), Duration::from_millis(25));
        assert_eq!(b.delay(40), Duration::from_millis(25));
    }

    #[test]
    fn jitter_is_deterministic_in_the_seed_and_bounded() {
        let b = Backoff::new(4, Duration::from_millis(10), Duration::from_millis(80))
            .with_jitter_seed(42);
        let again = Backoff::new(4, Duration::from_millis(10), Duration::from_millis(80))
            .with_jitter_seed(42);
        let other = b.with_jitter_seed(43);
        let mut any_differs = false;
        for i in 0..4 {
            let base = Backoff::new(4, Duration::from_millis(10), Duration::from_millis(80));
            assert_eq!(b.delay(i), again.delay(i), "same seed, same schedule");
            assert!(b.delay(i) >= base.delay(i), "jitter never shortens");
            assert!(
                b.delay(i) <= base.delay(i) + base.delay(i) / 2,
                "jitter bounded by half the base delay"
            );
            any_differs |= b.delay(i) != other.delay(i);
        }
        assert!(any_differs, "different seeds produce different schedules");
    }

    #[test]
    fn fatal_errors_short_circuit() {
        let b = Backoff::new(10, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let r: Result<(), _> = run(
            &b,
            |_e: &&str| false,
            |_| {
                calls += 1;
                Err("boom")
            },
        );
        assert!(matches!(r, Err(RetryError::Fatal("boom"))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_errors_retry_to_exhaustion() {
        let b = Backoff::new(3, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let r: Result<(), _> = run(
            &b,
            |_e: &&str| true,
            |i| {
                assert_eq!(i, calls);
                calls += 1;
                Err("busy")
            },
        );
        match r {
            Err(RetryError::Exhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert_eq!(last, "busy");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(calls, 3);
    }

    #[test]
    fn success_after_transients_is_returned() {
        let b = Backoff::new(5, Duration::ZERO, Duration::ZERO);
        let r = run(
            &b,
            |_e: &&str| true,
            |i| if i < 2 { Err("busy") } else { Ok(i) },
        );
        assert!(matches!(r, Ok(2)));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let b = Backoff::new(0, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let r: Result<(), _> = run(
            &b,
            |_e: &&str| true,
            |_| {
                calls += 1;
                Err("busy")
            },
        );
        assert!(matches!(r, Err(RetryError::Exhausted { attempts: 1, .. })));
        assert_eq!(calls, 1);
    }
}
