//! The end-to-end PNrule learner.

use crate::fit_checkpoint::FitCheckpointStore;
use crate::model::PnruleModel;
use crate::nphase::StopReason;
use crate::params::PnruleParams;
use pnr_data::Dataset;
use pnr_rules::CovStats;
use pnr_telemetry::TelemetrySink;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Diagnostics of one `fit`: what each phase did and why it stopped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitReport {
    /// Recall the P-phase union achieved on the training data.
    pub p_covered_recall: f64,
    /// Discovery-time coverage of each P-rule.
    pub p_rule_stats: Vec<CovStats>,
    /// Size of the pooled set handed to the N-phase.
    pub pool_size: usize,
    /// False-positive weight in the pool.
    pub pool_fp_weight: f64,
    /// Discovery-time coverage of each N-rule (over the pooled N-task:
    /// `pos` = false positives removed, `neg()` = targets sacrificed).
    pub n_rule_stats: Vec<CovStats>,
    /// Retained recall after the N-phase.
    pub retained_recall: f64,
    /// Why the P-phase's covering loop stopped.
    pub p_stop_reason: StopReason,
    /// Why the N-phase's covering loop stopped.
    pub n_stop_reason: StopReason,
    /// Number of accepted N-rules the MDL truncation dropped afterwards.
    pub n_mdl_truncated: usize,
    /// Description length after each accepted N-rule (element 0 = empty
    /// N-theory).
    pub n_dl_trace: Vec<f64>,
    /// Candidate conditions charged against the fit's
    /// [`BudgetTracker`](pnr_rules::BudgetTracker) (`None` = the fit ran
    /// without a budget). While the budget never latches, this equals the
    /// `candidate_charges` telemetry counter exactly.
    pub candidates_charged: Option<u64>,
}

impl FitReport {
    /// True when either phase stopped because the training budget ran
    /// out; the returned model is a valid, scoreable truncation.
    pub fn budget_exhausted(&self) -> bool {
        self.p_stop_reason == StopReason::BudgetExhausted
            || self.n_stop_reason == StopReason::BudgetExhausted
    }
}

/// Learns a [`PnruleModel`] for one target class: P-phase, pooling, N-phase
/// and the scoring step, in that order (section 2.1).
#[derive(Debug, Clone)]
pub struct PnruleLearner {
    params: PnruleParams,
    sink: Arc<dyn TelemetrySink>,
}

impl Default for PnruleLearner {
    fn default() -> Self {
        PnruleLearner {
            params: PnruleParams::default(),
            sink: pnr_telemetry::noop(),
        }
    }
}

impl PnruleLearner {
    /// A learner with the given parameters.
    pub fn new(params: PnruleParams) -> Self {
        params.validate();
        PnruleLearner {
            params,
            sink: pnr_telemetry::noop(),
        }
    }

    /// Attaches a telemetry sink every fit reports spans and counters to.
    /// Write-only: the learned model is bit-identical whatever sink is
    /// attached.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sink = sink;
        self
    }

    /// The learner's parameters.
    pub fn params(&self) -> &PnruleParams {
        &self.params
    }

    /// The attached telemetry sink (crate-internal: the fit pipeline
    /// lives in [`crate::fit_checkpoint`]).
    pub(crate) fn sink_ref(&self) -> &Arc<dyn TelemetrySink> {
        &self.sink
    }

    /// Fits a binary model distinguishing `target` from the rest of `data`.
    /// Record weights are honoured throughout, so stratified training is
    /// just a reweighted dataset.
    pub fn fit(&self, data: &Dataset, target: u32) -> PnruleModel {
        let is_pos: Vec<bool> = (0..data.n_rows())
            .map(|r| data.label(r) == target)
            .collect();
        self.fit_flags(data, target, &is_pos)
    }

    /// Fits with explicit target flags (used by the multi-class reduction
    /// and by tests that need a synthetic labelling).
    pub fn fit_flags(&self, data: &Dataset, target: u32, is_pos: &[bool]) -> PnruleModel {
        self.fit_flags_with_report(data, target, is_pos).0
    }

    /// Like [`Self::fit`], also returning phase diagnostics.
    pub fn fit_with_report(&self, data: &Dataset, target: u32) -> (PnruleModel, FitReport) {
        let is_pos: Vec<bool> = (0..data.n_rows())
            .map(|r| data.label(r) == target)
            .collect();
        self.fit_flags_with_report(data, target, &is_pos)
    }

    /// The full pipeline with diagnostics. Runs through the shared fit
    /// driver in [`crate::fit_checkpoint`] with a disabled checkpoint
    /// store, so the plain and checkpointed paths are the same code.
    pub fn fit_flags_with_report(
        &self,
        data: &Dataset,
        target: u32,
        is_pos: &[bool],
    ) -> (PnruleModel, FitReport) {
        crate::fit_checkpoint::run_fit(self, data, target, is_pos, &FitCheckpointStore::disabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{stratify_weights, AttrType, DatasetBuilder, Value};
    use pnr_metrics::BinaryConfusion;
    use pnr_rules::{evaluate_classifier, BinaryClassifier};

    /// The paper's motivating structure in miniature: the target's presence
    /// signature (x-band) is inherently impure — it also captures records
    /// whose absence signature (k = dos) must be learned separately.
    fn intrusion_like(n: usize) -> pnr_data::Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("r2l");
        b.add_class("rest");
        for i in 0..n {
            let x = (i % 50) as f64;
            // k varies across blocks of 50, independently of x
            let k = match (i / 50) % 5 {
                0 => "dos",
                1 => "web",
                _ => "ok",
            };
            let in_band = (20.0..24.0).contains(&x);
            let target = in_band && k != "dos";
            b.push_row(
                &[Value::num(x), Value::cat(k)],
                if target { "r2l" } else { "rest" },
                1.0,
            )
            .unwrap();
        }
        b.finish()
    }

    fn eval(model: &PnruleModel, data: &pnr_data::Dataset) -> BinaryConfusion {
        evaluate_classifier(model, data, model.target)
    }

    #[test]
    fn learns_presence_and_absence_signatures() {
        let data = intrusion_like(2000);
        let target = data.class_code("r2l").unwrap();
        let model = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
        assert!(!model.p_rules.is_empty(), "needs at least one P-rule");
        assert!(
            !model.n_rules.is_empty(),
            "the dos exclusion needs an N-rule"
        );
        let cm = eval(&model, &data);
        assert!(cm.recall() > 0.9, "recall {}", cm.recall());
        assert!(cm.precision() > 0.9, "precision {}", cm.precision());
    }

    #[test]
    fn disabling_n_phase_costs_precision() {
        let data = intrusion_like(2000);
        let target = data.class_code("r2l").unwrap();
        let full = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
        let ablated = PnruleLearner::new(PnruleParams {
            enable_n_phase: false,
            ..Default::default()
        })
        .fit(&data, target);
        assert!(ablated.n_rules.is_empty());
        let cm_full = eval(&full, &data);
        let cm_abl = eval(&ablated, &data);
        assert!(
            cm_full.precision() >= cm_abl.precision(),
            "full {} vs ablated {}",
            cm_full.precision(),
            cm_abl.precision()
        );
    }

    #[test]
    fn fit_on_weighted_data_matches_stratified_semantics() {
        let data = intrusion_like(1000);
        let target = data.class_code("r2l").unwrap();
        let w = stratify_weights(&data, target);
        let weighted = data.with_weights(w);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&weighted, target);
        // stratification must not break learning on clean data
        let cm = eval(&model, &data);
        assert!(cm.f_measure() > 0.8, "F {}", cm.f_measure());
    }

    #[test]
    fn no_target_examples_yields_reject_all_model() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("ghost");
        b.add_class("real");
        for i in 0..50 {
            b.push_row(&[Value::num(i as f64)], "real", 1.0).unwrap();
        }
        let data = b.finish();
        let model = PnruleLearner::default().fit(&data, 0);
        assert!(model.p_rules.is_empty());
        for row in 0..data.n_rows() {
            assert!(!model.predict(&data, row));
        }
    }

    #[test]
    fn fit_report_describes_the_phases() {
        let data = intrusion_like(2000);
        let target = data.class_code("r2l").unwrap();
        let (model, report) =
            PnruleLearner::new(PnruleParams::default()).fit_with_report(&data, target);
        assert_eq!(report.p_rule_stats.len(), model.p_rules.len());
        assert_eq!(report.n_rule_stats.len(), model.n_rules.len());
        assert!(
            report.p_covered_recall > 0.9,
            "P recall {}",
            report.p_covered_recall
        );
        assert!(report.pool_size > 0);
        assert!(
            report.pool_fp_weight > 0.0,
            "the dos overlap plants FPs in the pool"
        );
        assert!(report.retained_recall <= report.p_covered_recall + 1e-9);
    }

    #[test]
    fn generalisation_to_fresh_sample() {
        let train = intrusion_like(2000);
        let test = intrusion_like(500);
        let target = train.class_code("r2l").unwrap();
        let model = PnruleLearner::new(PnruleParams::default()).fit(&train, target);
        let cm = eval(&model, &test);
        assert!(cm.f_measure() > 0.9, "test F {}", cm.f_measure());
    }

    #[test]
    fn budgeted_fit_returns_scoreable_truncated_model() {
        use pnr_rules::FitBudget;
        let data = intrusion_like(2000);
        let target = data.class_code("r2l").unwrap();
        // A candidate budget far below what a full fit needs: the learner
        // must truncate gracefully, not hang or panic.
        let params = PnruleParams {
            budget: FitBudget {
                max_candidates: Some(50),
                ..FitBudget::default()
            },
            ..Default::default()
        };
        let (model, report) = PnruleLearner::new(params).fit_with_report(&data, target);
        assert!(
            report.budget_exhausted(),
            "p={:?} n={:?}",
            report.p_stop_reason,
            report.n_stop_reason
        );
        // The truncated model is still scoreable end to end.
        for row in 0..data.n_rows() {
            let _ = model.predict(&data, row);
        }
    }

    #[test]
    fn rule_budget_caps_total_rule_count() {
        use pnr_rules::FitBudget;
        let data = intrusion_like(2000);
        let target = data.class_code("r2l").unwrap();
        let params = PnruleParams {
            budget: FitBudget {
                max_rules: Some(1),
                ..FitBudget::default()
            },
            ..Default::default()
        };
        let (model, report) = PnruleLearner::new(params).fit_with_report(&data, target);
        assert!(model.p_rules.len() + model.n_rules.len() <= 1);
        assert!(report.budget_exhausted());
    }

    #[test]
    fn zero_wall_clock_stops_immediately_and_gracefully() {
        use pnr_rules::FitBudget;
        let data = intrusion_like(500);
        let target = data.class_code("r2l").unwrap();
        let params = PnruleParams {
            budget: FitBudget {
                wall_clock_secs: Some(0.0),
                ..FitBudget::default()
            },
            ..Default::default()
        };
        let (model, report) = PnruleLearner::new(params).fit_with_report(&data, target);
        assert_eq!(report.p_stop_reason, StopReason::BudgetExhausted);
        assert!(model.p_rules.is_empty());
        // An empty model predicts (rejects) without panicking.
        assert!(!model.predict(&data, 0));
    }

    #[test]
    fn unlimited_budget_matches_default_fit() {
        use pnr_rules::FitBudget;
        let data = intrusion_like(1000);
        let target = data.class_code("r2l").unwrap();
        let free = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
        let generous = PnruleLearner::new(PnruleParams {
            budget: FitBudget {
                max_rules: Some(10_000),
                max_candidates: Some(1_000_000_000),
                wall_clock_secs: None,
            },
            ..Default::default()
        })
        .fit(&data, target);
        assert_eq!(free.p_rules.len(), generous.p_rules.len());
        assert_eq!(free.n_rules.len(), generous.n_rules.len());
        for row in 0..data.n_rows() {
            assert_eq!(free.predict(&data, row), generous.predict(&data, row));
        }
    }

    #[test]
    fn fit_flags_allows_custom_targets() {
        let data = intrusion_like(500);
        // custom labelling independent of the class column: x < 25
        let flags: Vec<bool> = (0..data.n_rows()).map(|r| data.num(0, r) < 25.0).collect();
        let model = PnruleLearner::default().fit_flags(&data, 0, &flags);
        let correct = (0..data.n_rows())
            .filter(|&r| model.predict(&data, r) == flags[r])
            .count();
        assert!(
            correct as f64 > 0.95 * data.n_rows() as f64,
            "correct={correct}"
        );
    }
}
