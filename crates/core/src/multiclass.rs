//! Multi-class classification via per-class binary PNrule models.
//!
//! The PNrule framework reduces a k-class problem to k binary problems —
//! one model per class, scored records assigned to the highest-scoring
//! class (the reduction the companion paper [1] describes; this paper's
//! footnote 3 notes the framework's applicability "to the multi-class
//! problem with different costs of misclassification"). Per-class
//! misclassification costs scale the scores before the argmax.
//!
//! # Tie-breaking
//!
//! When two classes end up with exactly equal cost-scaled scores, the class
//! with the **higher misclassification cost** wins (misclassifying it is
//! dearer, so the tie resolves toward caution); if the costs tie too, the
//! **lower class code** wins. The rule is deliberate and pinned by tests —
//! a bare `Iterator::max_by` would silently favour the highest class code,
//! an accident of enumeration order.

use crate::learn::PnruleLearner;
use crate::model::PnruleModel;
use crate::params::PnruleParams;
use pnr_data::Dataset;
use pnr_rules::BinaryClassifier;
use serde::{Deserialize, Serialize};

/// A k-class classifier made of one binary PNrule model per class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiClassPnrule {
    models: Vec<PnruleModel>,
    /// Per-class score multipliers (misclassification costs); 1.0 = none.
    costs: Vec<f64>,
    /// Fallback class when every model scores 0 (majority class at fit
    /// time).
    default_class: u32,
}

impl MultiClassPnrule {
    /// Fits one binary model per class of `data` with shared `params`.
    pub fn fit(data: &Dataset, params: &PnruleParams) -> Self {
        Self::fit_with_costs(data, params, &vec![1.0; data.n_classes()])
    }

    /// Fits with per-class score multipliers.
    ///
    /// # Panics
    /// Panics if `costs.len() != data.n_classes()` or any cost is
    /// non-positive.
    pub fn fit_with_costs(data: &Dataset, params: &PnruleParams, costs: &[f64]) -> Self {
        assert_eq!(costs.len(), data.n_classes(), "one cost per class");
        assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
        let learner = PnruleLearner::new(params.clone());
        let models = (0..pnr_data::index::to_u32(data.n_classes(), "class count"))
            .map(|c| learner.fit(data, c))
            .collect();
        let class_weights = data.class_weights();
        // total_cmp: class weights are finite sums of builder-validated
        // weights, so the ordering matches partial_cmp without a panic arm.
        let default_class = class_weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| pnr_data::index::to_u32(i, "class code"))
            .unwrap_or(0);
        MultiClassPnrule {
            models,
            costs: costs.to_vec(),
            default_class,
        }
    }

    /// The per-class binary models, indexed by class code.
    pub fn models(&self) -> &[PnruleModel] {
        &self.models
    }

    /// Cost-scaled score of `row` for every class.
    pub fn class_scores(&self, data: &Dataset, row: usize) -> Vec<f64> {
        self.models
            .iter()
            .zip(&self.costs)
            .map(|(m, &c)| m.score(data, row) * c)
            .collect()
    }

    /// Predicted class: the highest-scoring model, or the default class
    /// when no model fires at all.
    ///
    /// Exact score ties break toward the class with the higher
    /// misclassification cost, then toward the lower class code (see the
    /// [module docs](self#tie-breaking)).
    pub fn classify(&self, data: &Dataset, row: usize) -> u32 {
        use std::cmp::Ordering;
        let scores = self.class_scores(data, row);
        let mut best: Option<usize> = None;
        // total_cmp: scores are products of ScoreMatrix probabilities and
        // positive costs, always finite. Iterating in ascending class code
        // and keeping the incumbent on full ties makes the lower class code
        // the final tie-breaker.
        for (i, s) in scores.iter().enumerate() {
            let challenger_wins = match best {
                None => true,
                Some(b) => match s.total_cmp(&scores[b]) {
                    Ordering::Greater => true,
                    Ordering::Less => false,
                    Ordering::Equal => self.costs[i].total_cmp(&self.costs[b]) == Ordering::Greater,
                },
            };
            if challenger_wins {
                best = Some(i);
            }
        }
        let Some(best) = best else {
            return self.default_class;
        };
        if scores[best] <= 0.0 {
            self.default_class
        } else {
            pnr_data::index::to_u32(best, "class code")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};
    use pnr_metrics::MulticlassConfusion;

    fn three_class_data(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("low");
        b.add_class("high");
        b.add_class("special");
        for i in 0..n {
            let x = (i % 100) as f64;
            let k = if (i / 100) % 4 == 0 { "s" } else { "t" };
            let class = if k == "s" && x < 50.0 {
                "special"
            } else if x < 50.0 {
                "low"
            } else {
                "high"
            };
            b.push_row(&[Value::num(x), Value::cat(k)], class, 1.0)
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn learns_three_way_structure() {
        let d = three_class_data(2_000);
        let mc = MultiClassPnrule::fit(&d, &PnruleParams::default());
        let mut cm = MulticlassConfusion::new(d.n_classes());
        for row in 0..d.n_rows() {
            cm.record(d.label(row) as usize, mc.classify(&d, row) as usize, 1.0);
        }
        assert!(cm.accuracy() > 0.95, "accuracy {}", cm.accuracy());
        assert!(cm.macro_f() > 0.9, "macro F {}", cm.macro_f());
    }

    #[test]
    fn one_model_per_class() {
        let d = three_class_data(400);
        let mc = MultiClassPnrule::fit(&d, &PnruleParams::default());
        assert_eq!(mc.models().len(), 3);
    }

    #[test]
    fn costs_bias_predictions_toward_expensive_class() {
        let d = three_class_data(2_000);
        let special = d.class_code("special").unwrap() as usize;
        let uniform = MultiClassPnrule::fit(&d, &PnruleParams::default());
        let mut costs = vec![1.0; 3];
        costs[special] = 50.0;
        let biased = MultiClassPnrule::fit_with_costs(&d, &PnruleParams::default(), &costs);
        let count = |mc: &MultiClassPnrule| {
            (0..d.n_rows())
                .filter(|&r| mc.classify(&d, r) == special as u32)
                .count()
        };
        assert!(
            count(&biased) >= count(&uniform),
            "raising a class's cost must not shrink its predictions"
        );
    }

    /// A model whose single catch-all P-rule gives every record the given
    /// score (ScoreMatrix fields are private; serde is the construction
    /// seam for synthetic matrices).
    fn flat_model(score: f64) -> crate::model::PnruleModel {
        use pnr_rules::{Condition, Rule, RuleSet};
        let sm: crate::scoring::ScoreMatrix =
            serde_json::from_str(&format!(r#"{{"n_p":1,"n_n":0,"scores":[{score}]}}"#)).unwrap();
        crate::model::PnruleModel {
            target: 0,
            threshold: 0.5,
            p_rules: RuleSet::from_rules(vec![Rule::new(vec![Condition::NumGt {
                attr: 0,
                value: -1.0,
            }])]),
            n_rules: RuleSet::new(),
            score_matrix: sm,
        }
    }

    fn one_row_data() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("a");
        b.add_class("b");
        b.push_row(&[Value::num(0.0)], "a", 1.0).unwrap();
        b.finish()
    }

    #[test]
    fn exact_score_tie_breaks_to_lower_class_code() {
        // Two identical models, identical costs: every class scores the
        // same. A bare max_by would return the *last* maximum (class 1);
        // the documented tie-break demands the lower class code. The
        // default class is set to 1 so a fallback can't mask the bug.
        let d = one_row_data();
        let mc = MultiClassPnrule {
            models: vec![flat_model(0.8), flat_model(0.8)],
            costs: vec![1.0, 1.0],
            default_class: 1,
        };
        assert_eq!(mc.classify(&d, 0), 0);
    }

    #[test]
    fn exact_score_tie_breaks_to_higher_cost_first() {
        // Raw scores 0.5 and 1.0 scaled by costs 2.0 and 1.0 tie at 1.0;
        // the costlier class (0) must win over the lower-code-last
        // accident a bare max_by produces.
        let d = one_row_data();
        let mc = MultiClassPnrule {
            models: vec![flat_model(0.5), flat_model(1.0)],
            costs: vec![2.0, 1.0],
            default_class: 1,
        };
        assert_eq!(mc.classify(&d, 0), 0);
    }

    #[test]
    #[should_panic(expected = "one cost per class")]
    fn wrong_cost_arity_panics() {
        let d = three_class_data(100);
        MultiClassPnrule::fit_with_costs(&d, &PnruleParams::default(), &[1.0]);
    }

    #[test]
    fn unmatched_records_get_default_class() {
        let d = three_class_data(400);
        let mc = MultiClassPnrule::fit(&d, &PnruleParams::default());
        // craft a query dataset far outside the training distribution
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_cat_value(1, "s");
        b.add_cat_value(1, "t");
        b.add_class("low");
        b.add_class("high");
        b.add_class("special");
        b.push_row(&[Value::num(1e6), Value::cat("t")], "low", 1.0)
            .unwrap();
        let q = b.finish();
        let c = mc.classify(&q, 0);
        assert!((c as usize) < 3);
    }

    #[test]
    fn serde_round_trip() {
        let d = three_class_data(400);
        let mc = MultiClassPnrule::fit(&d, &PnruleParams::default());
        let back: MultiClassPnrule =
            serde_json::from_str(&serde_json::to_string(&mc).unwrap()).unwrap();
        for row in (0..d.n_rows()).step_by(37) {
            assert_eq!(back.classify(&d, row), mc.classify(&d, row));
        }
    }
}
