//! Multi-class classification via per-class binary PNrule models.
//!
//! The PNrule framework reduces a k-class problem to k binary problems —
//! one model per class, scored records assigned to the highest-scoring
//! class (the reduction the companion paper [1] describes; this paper's
//! footnote 3 notes the framework's applicability "to the multi-class
//! problem with different costs of misclassification"). Per-class
//! misclassification costs scale the scores before the argmax.

use crate::learn::PnruleLearner;
use crate::model::PnruleModel;
use crate::params::PnruleParams;
use pnr_data::Dataset;
use pnr_rules::BinaryClassifier;
use serde::{Deserialize, Serialize};

/// A k-class classifier made of one binary PNrule model per class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiClassPnrule {
    models: Vec<PnruleModel>,
    /// Per-class score multipliers (misclassification costs); 1.0 = none.
    costs: Vec<f64>,
    /// Fallback class when every model scores 0 (majority class at fit
    /// time).
    default_class: u32,
}

impl MultiClassPnrule {
    /// Fits one binary model per class of `data` with shared `params`.
    pub fn fit(data: &Dataset, params: &PnruleParams) -> Self {
        Self::fit_with_costs(data, params, &vec![1.0; data.n_classes()])
    }

    /// Fits with per-class score multipliers.
    ///
    /// # Panics
    /// Panics if `costs.len() != data.n_classes()` or any cost is
    /// non-positive.
    pub fn fit_with_costs(data: &Dataset, params: &PnruleParams, costs: &[f64]) -> Self {
        assert_eq!(costs.len(), data.n_classes(), "one cost per class");
        assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
        let learner = PnruleLearner::new(params.clone());
        let models = (0..pnr_data::index::to_u32(data.n_classes(), "class count"))
            .map(|c| learner.fit(data, c))
            .collect();
        let class_weights = data.class_weights();
        // total_cmp: class weights are finite sums of builder-validated
        // weights, so the ordering matches partial_cmp without a panic arm.
        let default_class = class_weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| pnr_data::index::to_u32(i, "class code"))
            .unwrap_or(0);
        MultiClassPnrule {
            models,
            costs: costs.to_vec(),
            default_class,
        }
    }

    /// The per-class binary models, indexed by class code.
    pub fn models(&self) -> &[PnruleModel] {
        &self.models
    }

    /// Cost-scaled score of `row` for every class.
    pub fn class_scores(&self, data: &Dataset, row: usize) -> Vec<f64> {
        self.models
            .iter()
            .zip(&self.costs)
            .map(|(m, &c)| m.score(data, row) * c)
            .collect()
    }

    /// Predicted class: the highest-scoring model, or the default class
    /// when no model fires at all.
    pub fn classify(&self, data: &Dataset, row: usize) -> u32 {
        let scores = self.class_scores(data, row);
        // total_cmp: scores are products of ScoreMatrix probabilities and
        // positive costs, always finite.
        let Some((best, &best_score)) = scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))
        else {
            return self.default_class;
        };
        if best_score <= 0.0 {
            self.default_class
        } else {
            pnr_data::index::to_u32(best, "class code")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};
    use pnr_metrics::MulticlassConfusion;

    fn three_class_data(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("low");
        b.add_class("high");
        b.add_class("special");
        for i in 0..n {
            let x = (i % 100) as f64;
            let k = if (i / 100) % 4 == 0 { "s" } else { "t" };
            let class = if k == "s" && x < 50.0 {
                "special"
            } else if x < 50.0 {
                "low"
            } else {
                "high"
            };
            b.push_row(&[Value::num(x), Value::cat(k)], class, 1.0)
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn learns_three_way_structure() {
        let d = three_class_data(2_000);
        let mc = MultiClassPnrule::fit(&d, &PnruleParams::default());
        let mut cm = MulticlassConfusion::new(d.n_classes());
        for row in 0..d.n_rows() {
            cm.record(d.label(row) as usize, mc.classify(&d, row) as usize, 1.0);
        }
        assert!(cm.accuracy() > 0.95, "accuracy {}", cm.accuracy());
        assert!(cm.macro_f() > 0.9, "macro F {}", cm.macro_f());
    }

    #[test]
    fn one_model_per_class() {
        let d = three_class_data(400);
        let mc = MultiClassPnrule::fit(&d, &PnruleParams::default());
        assert_eq!(mc.models().len(), 3);
    }

    #[test]
    fn costs_bias_predictions_toward_expensive_class() {
        let d = three_class_data(2_000);
        let special = d.class_code("special").unwrap() as usize;
        let uniform = MultiClassPnrule::fit(&d, &PnruleParams::default());
        let mut costs = vec![1.0; 3];
        costs[special] = 50.0;
        let biased = MultiClassPnrule::fit_with_costs(&d, &PnruleParams::default(), &costs);
        let count = |mc: &MultiClassPnrule| {
            (0..d.n_rows())
                .filter(|&r| mc.classify(&d, r) == special as u32)
                .count()
        };
        assert!(
            count(&biased) >= count(&uniform),
            "raising a class's cost must not shrink its predictions"
        );
    }

    #[test]
    #[should_panic(expected = "one cost per class")]
    fn wrong_cost_arity_panics() {
        let d = three_class_data(100);
        MultiClassPnrule::fit_with_costs(&d, &PnruleParams::default(), &[1.0]);
    }

    #[test]
    fn unmatched_records_get_default_class() {
        let d = three_class_data(400);
        let mc = MultiClassPnrule::fit(&d, &PnruleParams::default());
        // craft a query dataset far outside the training distribution
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_cat_value(1, "s");
        b.add_cat_value(1, "t");
        b.add_class("low");
        b.add_class("high");
        b.add_class("special");
        b.push_row(&[Value::num(1e6), Value::cat("t")], "low", 1.0)
            .unwrap();
        let q = b.finish();
        let c = mc.classify(&q, 0);
        assert!((c as usize) < 3);
    }

    #[test]
    fn serde_round_trip() {
        let d = three_class_data(400);
        let mc = MultiClassPnrule::fit(&d, &PnruleParams::default());
        let back: MultiClassPnrule =
            serde_json::from_str(&serde_json::to_string(&mc).unwrap()).unwrap();
        for row in (0..d.n_rows()).step_by(37) {
            assert_eq!(back.classify(&d, row), mc.classify(&d, row));
        }
    }
}
