//! PNrule: two-phase rule induction for rare classes.
//!
//! This crate implements the SIGMOD 2001 paper's contribution: a binary
//! classifier that *separately conquers* recall and precision.
//!
//! * The **P-phase** ([`pphase`]) runs sequential covering over the whole
//!   training set, favouring rules with high support even at reduced
//!   accuracy, until a user-specified fraction `rp` of the target class is
//!   covered. These P-rules detect the *presence* of the target class.
//! * The **N-phase** ([`nphase`]) pools every record covered by the union
//!   of P-rules — true positives and false positives together — and learns
//!   rules for the *absence* of the target class on that pooled set,
//!   guarded by a lower recall limit `rn` and an MDL stopping criterion.
//!   Pooling is what defeats the *splintered false positives* problem.
//! * The **scoring mechanism** ([`scoring`]) estimates, for every
//!   (P-rule, N-rule) combination, the probability that a matching record
//!   is truly a target, and selectively neutralises an N-rule for a given
//!   P-rule when its effect on that P-rule is statistically insignificant.
//!
//! # Quickstart
//!
//! ```
//! use pnr_data::{DatasetBuilder, AttrType, Value};
//! use pnr_core::{PnruleLearner, PnruleParams};
//! use pnr_rules::BinaryClassifier;
//!
//! // target records hide at x ∈ (40, 60] but only when k = "ftp"
//! let mut b = DatasetBuilder::new();
//! b.add_attribute("x", AttrType::Numeric);
//! b.add_attribute("k", AttrType::Categorical);
//! for i in 0..400 {
//!     let x = (i % 100) as f64;
//!     let k = if i % 4 == 0 { "ftp" } else { "http" };
//!     let target = (40.0..60.0).contains(&x) && k == "ftp";
//!     b.push_row(&[Value::num(x), Value::cat(k)], if target { "rare" } else { "rest" }, 1.0)
//!         .unwrap();
//! }
//! let data = b.finish();
//! let target = data.class_code("rare").unwrap();
//! let model = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
//! let correct = (0..data.n_rows())
//!     .filter(|&r| model.predict(&data, r) == (data.label(r) == target))
//!     .count();
//! assert!(correct as f64 / data.n_rows() as f64 > 0.95);
//! ```

pub mod artifact;
pub mod compiled;
pub mod exit;
pub mod fit_checkpoint;
pub mod grow;
pub mod learn;
pub mod model;
pub mod multiclass;
pub mod nphase;
pub mod params;
pub mod pphase;
pub mod retry;
pub mod scoring;
pub mod serving;
pub mod tune;
pub mod windowed;

pub use artifact::{
    file_checksum, is_transient_io, load_with_retry, retry_transient, ArtifactError,
    ArtifactLineage, ModelArtifact, RetryPolicy, FORMAT_VERSION,
};
pub use compiled::{CompiledModel, CompiledScorer, ScoringEngine};
pub use fit_checkpoint::{FitCheckpoint, FitCheckpointStore, FitKey};
pub use grow::{grow_rule, GrowOptions, GrownRule, RecallGuard};
pub use learn::{FitReport, PnruleLearner};
pub use model::{PnruleModel, RuleTrace};
pub use multiclass::MultiClassPnrule;
pub use nphase::{
    learn_n_rules, learn_n_rules_resumable, learn_n_rules_with_budget, learn_n_rules_with_sink,
    NPhaseResult, NRule, StopReason,
};
pub use params::PnruleParams;
pub use pnr_rules::{BudgetTracker, FitBudget};
pub use pphase::{
    learn_p_rules, learn_p_rules_resumable, learn_p_rules_with_budget, learn_p_rules_with_sink,
    PPhaseResult, PRule,
};
pub use retry::{Backoff, RetryError};
pub use scoring::ScoreMatrix;
pub use serving::{
    ColumnMap, DatasetMap, MissingColumnPolicy, RecordError, ScoredRecord, ServingModel,
    ServingValue, UnknownKind, UnknownPolicy,
};
pub use tune::{fit_auto, prune_n_rules, AutoTuneOptions};
pub use windowed::{recall_on, refit_window, RefitError, RefitEval, RefitOptions};
