//! The ScoreMatrix: probabilistic scoring of P-rule/N-rule combinations.
//!
//! N-rules are learned on the records covered by *all* P-rules together, so
//! "a given N-rule may be effective in removing false positives of only a
//! subset of P-rules" (section 2.3). The scoring step judges the
//! significance of each N-rule for each P-rule: the training data is pushed
//! through the ranked P-rules then the ranked N-rules, the target fraction
//! of every (first-P, first-N) combination is estimated with Laplace
//! smoothing, and a combination whose accuracy does not differ
//! *significantly* (one-sample z-test) from its P-rule's overall accuracy
//! falls back to that P-rule's estimate — i.e. the N-rule's effect on that
//! P-rule is ignored.
//!
//! The resulting matrix "reflects an approximate probability that a record
//! belongs to the target class, given that a particular P-rule, N-rule
//! combination applied to it".

use pnr_data::weights::approx;
use pnr_data::Dataset;
use pnr_rules::RuleSet;
use pnr_telemetry::{Counter, Span, SpanKind, TelemetrySink};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-(P-rule, N-rule) probability estimates. Column `n_n` (one past the
/// last N-rule) is the **default N-rule** — "we always have a default last
/// N-rule that applies when none of the discovered N-rules apply".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreMatrix {
    n_p: usize,
    n_n: usize,
    scores: Vec<f64>, // row-major, n_p × (n_n + 1)
}

impl ScoreMatrix {
    /// Builds the matrix from training data.
    ///
    /// * `is_pos[row]` — original target flags;
    /// * `z_threshold` — |z| below which a cell is deemed insignificant and
    ///   the P-rule's own estimate is used instead.
    pub fn build(
        data: &Dataset,
        is_pos: &[bool],
        p_rules: &RuleSet,
        n_rules: &RuleSet,
        z_threshold: f64,
    ) -> ScoreMatrix {
        Self::build_with_sink(
            data,
            is_pos,
            p_rules,
            n_rules,
            z_threshold,
            &pnr_telemetry::noop(),
        )
    }

    /// [`Self::build`] reporting a build span and the rows swept by the
    /// `first_match` pass to `sink`. Telemetry is write-only: the matrix is
    /// identical whatever sink is attached.
    pub fn build_with_sink(
        data: &Dataset,
        is_pos: &[bool],
        p_rules: &RuleSet,
        n_rules: &RuleSet,
        z_threshold: f64,
        sink: &Arc<dyn TelemetrySink>,
    ) -> ScoreMatrix {
        let _build_span = Span::enter(sink.as_ref(), SpanKind::ScoreMatrix, "score_matrix");
        if sink.enabled() {
            // One P→N routing sweep over every training row.
            sink.add(Counter::FirstMatchRows, is_pos.len() as u64);
        }
        let n_p = p_rules.len();
        let n_n = n_rules.len();
        let width = n_n + 1;
        let mut cell_pos = vec![0.0f64; n_p * width];
        let mut cell_tot = vec![0.0f64; n_p * width];

        for (row, &row_is_pos) in is_pos.iter().enumerate() {
            let Some(pi) = p_rules.first_match(data, row) else {
                continue;
            };
            let nj = n_rules.first_match(data, row).unwrap_or(n_n);
            let w = data.weight(row);
            cell_tot[pi * width + nj] += w;
            if row_is_pos {
                cell_pos[pi * width + nj] += w;
            }
        }

        let mut scores = vec![0.5f64; n_p * width];
        for pi in 0..n_p {
            let row_pos = pnr_data::ordered_sum((0..width).map(|j| cell_pos[pi * width + j]));
            let row_tot = pnr_data::ordered_sum((0..width).map(|j| cell_tot[pi * width + j]));
            let row_acc = if row_tot > 0.0 {
                row_pos / row_tot
            } else {
                0.5
            };
            let row_score = (row_pos + 1.0) / (row_tot + 2.0);
            for j in 0..width {
                let tot = cell_tot[pi * width + j];
                let pos = cell_pos[pi * width + j];
                let raw = (pos + 1.0) / (tot + 2.0);
                let use_raw = if j == n_n {
                    // The default column is the P-rule's own evidence when
                    // no N-rule fires; always use it.
                    true
                } else if approx::is_zero(tot) {
                    false
                } else {
                    // One-sample z-test of the cell accuracy against the
                    // P-rule row accuracy. Accuracies are quotients of
                    // weight sums accumulated in different orders, so a
                    // mathematically identical cell can differ from the row
                    // by a few ulps — compare against the workspace epsilon,
                    // never exactly.
                    let sigma = (row_acc * (1.0 - row_acc) / tot).sqrt();
                    if sigma < approx::WEIGHT_EPS {
                        // Pure row (accuracy 0 or 1): any genuine deviation
                        // in the cell is significant by itself.
                        (pos / tot - row_acc).abs() > approx::WEIGHT_EPS
                    } else {
                        ((pos / tot - row_acc) / sigma).abs() >= z_threshold
                    }
                };
                scores[pi * width + j] = if use_raw { raw } else { row_score };
            }
        }
        // Every cell is a Laplace-smoothed fraction or the 0.5 prior; a
        // value outside [0,1] means the estimate arithmetic regressed.
        #[cfg(feature = "audit")]
        for &s in &scores {
            pnr_data::audit::check_probability("ScoreMatrix cell", s);
        }
        ScoreMatrix { n_p, n_n, scores }
    }

    /// Number of P-rules (rows).
    pub fn n_p(&self) -> usize {
        self.n_p
    }

    /// Number of learned N-rules (the matrix has one extra default column).
    pub fn n_n(&self) -> usize {
        self.n_n
    }

    /// Score of the combination: first-matching P-rule `p`, first-matching
    /// N-rule `n` (`None` = no N-rule applied → default column).
    pub fn score(&self, p: usize, n: Option<usize>) -> f64 {
        assert!(p < self.n_p, "P-rule index out of range");
        let j = match n {
            Some(j) => {
                assert!(j < self.n_n, "N-rule index out of range");
                j
            }
            None => self.n_n,
        };
        self.scores[p * (self.n_n + 1) + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};
    use pnr_rules::{Condition, Rule};

    /// x identifies the P-rule, y the N-rule.
    fn build_case(rows: &[(f64, f64, bool)], z: f64) -> ScoreMatrix {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("y", AttrType::Numeric);
        for &(x, y, _) in rows {
            b.push_row(&[Value::num(x), Value::num(y)], "c", 1.0)
                .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = rows.iter().map(|&(_, _, p)| p).collect();
        let p_rules = RuleSet::from_rules(vec![
            Rule::new(vec![Condition::NumLe {
                attr: 0,
                value: 0.0,
            }]),
            Rule::new(vec![Condition::NumGt {
                attr: 0,
                value: 0.0,
            }]),
        ]);
        let n_rules = RuleSet::from_rules(vec![Rule::new(vec![Condition::NumGt {
            attr: 1,
            value: 0.0,
        }])]);
        ScoreMatrix::build(&d, &is_pos, &p_rules, &n_rules, z)
    }

    #[test]
    fn significant_n_rule_lowers_score() {
        // P-rule 0 (x ≤ 0): records with y > 0 are overwhelmingly negative.
        let mut rows: Vec<(f64, f64, bool)> = Vec::new();
        for _ in 0..30 {
            rows.push((0.0, 0.0, true)); // P0, no N: targets
            rows.push((0.0, 1.0, false)); // P0, N0: false positives
        }
        let m = build_case(&rows, 1.0);
        assert!(m.score(0, Some(0)) < 0.1, "N-rule should kill the cell");
        assert!(m.score(0, None) > 0.9, "default column keeps the P-rule");
    }

    #[test]
    fn insignificant_cell_falls_back_to_row_estimate() {
        // P-rule 1 (x > 0) has 60% accuracy overall; its single y>0 record
        // is far too little evidence, so the cell reverts to the row score.
        let mut rows: Vec<(f64, f64, bool)> = Vec::new();
        for i in 0..30 {
            rows.push((1.0, 0.0, i % 5 < 3)); // 60% positive
        }
        rows.push((1.0, 1.0, false)); // one lonely N-covered record
        let m = build_case(&rows, 2.0);
        let row_score = m.score(1, None);
        assert!(
            (m.score(1, Some(0)) - row_score).abs() < 0.1,
            "cell {} should be near row {}",
            m.score(1, Some(0)),
            row_score
        );
    }

    #[test]
    fn n_rule_ignored_for_one_p_rule_but_not_another() {
        // The headline behaviour: the same N-rule removes P0's false
        // positives but would only hurt P1 (its N-cell is mostly true
        // positives with plenty of evidence).
        let mut rows: Vec<(f64, f64, bool)> = Vec::new();
        for _ in 0..25 {
            rows.push((0.0, 0.0, true));
            rows.push((0.0, 1.0, false)); // N fires on P0's FPs
            rows.push((1.0, 0.0, true));
            rows.push((1.0, 1.0, true)); // N fires on P1's TPs!
        }
        let m = build_case(&rows, 1.0);
        assert!(m.score(0, Some(0)) < 0.5, "N effective for P0");
        assert!(m.score(1, Some(0)) > 0.5, "N neutralised for P1");
    }

    #[test]
    fn empty_cell_uses_row_fallback() {
        let rows: Vec<(f64, f64, bool)> = (0..20).map(|_| (0.0, 0.0, true)).collect();
        let m = build_case(&rows, 1.0);
        // P1 never fires: its default cell is the uninformed prior 0.5
        // (predicted false at the usual threshold).
        assert_eq!(m.score(1, None), 0.5);
        // P0's N-cell never fires either → row fallback (high).
        assert!(m.score(0, Some(0)) > 0.5);
    }

    #[test]
    fn laplace_smoothing_keeps_scores_off_the_walls() {
        let rows: Vec<(f64, f64, bool)> = (0..5).map(|_| (0.0, 0.0, true)).collect();
        let m = build_case(&rows, 1.0);
        let s = m.score(0, None);
        assert!(s > 0.5 && s < 1.0, "smoothed score {s}");
    }

    /// Like [`build_case`] but with fractional row weights, so accuracies
    /// are quotients of rounded weight sums.
    fn build_weighted_case(rows: &[(f64, f64, bool)], w: f64, z: f64) -> ScoreMatrix {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("y", AttrType::Numeric);
        for &(x, y, _) in rows {
            b.push_row(&[Value::num(x), Value::num(y)], "c", w).unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = rows.iter().map(|&(_, _, p)| p).collect();
        let p_rules = RuleSet::from_rules(vec![
            Rule::new(vec![Condition::NumLe {
                attr: 0,
                value: 0.0,
            }]),
            Rule::new(vec![Condition::NumGt {
                attr: 0,
                value: 0.0,
            }]),
        ]);
        let n_rules = RuleSet::from_rules(vec![Rule::new(vec![Condition::NumGt {
            attr: 1,
            value: 0.0,
        }])]);
        ScoreMatrix::build(&d, &is_pos, &p_rules, &n_rules, z)
    }

    #[test]
    fn pure_row_cell_matching_row_accuracy_falls_back() {
        // P-rule 0's coverage is entirely positive (row accuracy exactly 1,
        // sigma 0). Its N-cell is also pure, so the cell accuracy equals
        // the row accuracy and the N-rule must be judged insignificant for
        // this P-rule: the cell reverts to the row estimate. Fractional
        // weights make the accuracies quotients of accumulated sums — the
        // regime where an exact float comparison can spuriously flag the
        // cell as significant.
        let mut rows: Vec<(f64, f64, bool)> = Vec::new();
        for _ in 0..20 {
            rows.push((0.0, 0.0, true)); // P0, default column
            rows.push((0.0, 1.0, true)); // P0, N0 — still positive
        }
        let m = build_weighted_case(&rows, 0.1, 1.0);
        let row_score = (40.0 * 0.1 + 1.0) / (40.0 * 0.1 + 2.0);
        assert!(
            (m.score(0, Some(0)) - row_score).abs() < 1e-12,
            "pure cell should fall back to the row estimate: {} vs {row_score}",
            m.score(0, Some(0))
        );
    }

    #[test]
    fn pure_negative_row_keeps_sigma_zero_well_defined() {
        // A pure-negative P-rule row (accuracy exactly 0, sigma 0). The
        // empty N-cell falls back to the row estimate and the default cell
        // keeps its own low estimate — no NaN or division blow-up from the
        // zero-sigma path.
        let mut rows: Vec<(f64, f64, bool)> = Vec::new();
        for _ in 0..20 {
            rows.push((0.0, 0.0, false)); // P0, default column, all negative
        }
        let m = build_weighted_case(&rows, 0.1, 1.0);
        let row_score = (0.0 + 1.0) / (20.0 * 0.1 + 2.0);
        assert!(
            (m.score(0, Some(0)) - row_score).abs() < 1e-12,
            "empty cell falls back: {}",
            m.score(0, Some(0))
        );
        assert!(
            m.score(0, None) < 0.5,
            "pure-negative default cell stays low"
        );
    }

    #[test]
    #[should_panic(expected = "N-rule index")]
    fn out_of_range_n_index_panics() {
        let rows = vec![(0.0, 0.0, true)];
        let m = build_case(&rows, 1.0);
        m.score(0, Some(5));
    }

    #[test]
    fn dimensions_reported() {
        let rows = vec![(0.0, 0.0, true)];
        let m = build_case(&rows, 1.0);
        assert_eq!(m.n_p(), 2);
        assert_eq!(m.n_n(), 1);
    }
}
