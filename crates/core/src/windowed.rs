//! Windowed refit: the core entry point the drift-refit loop calls.
//!
//! Given a labelled window of recent traffic and the currently-serving
//! (last-known-good) artifact, [`refit_window`] fits a candidate model on
//! the window through the checkpointed [`run_fit`](crate::fit_checkpoint)
//! pipeline — under whatever [`FitBudget`](pnr_rules::FitBudget) the
//! caller put in its params — then **validates** it: target-class recall
//! on a held-back slice of the window must not regress more than
//! `recall_tolerance` below the baseline artifact's recall on the same
//! slice. Only a validated candidate is returned; every failure mode
//! (no target rows, fit panic, recall regression) is a typed
//! [`RefitError`] so the supervisor can log it and keep the
//! last-known-good model serving.
//!
//! The split is deterministic: every `holdout_stride`-th row of the
//! window is held back for validation and never shown to the fit, so a
//! refit is reproducible from the window alone — no RNG, no wall clock.

use crate::artifact::{ArtifactError, ModelArtifact};
use crate::fit_checkpoint::FitCheckpointStore;
use crate::learn::PnruleLearner;
use crate::params::PnruleParams;
use crate::serving::ServingModel;
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_telemetry::{Span, SpanKind, TelemetrySink};
use std::fmt;
use std::sync::Arc;

/// How a windowed refit splits and judges its window.
#[derive(Debug, Clone)]
pub struct RefitOptions {
    /// Learner parameters for the candidate fit (including its
    /// `FitBudget`). Defaults to the baseline artifact's own params when
    /// `None`.
    pub params: Option<PnruleParams>,
    /// Every `holdout_stride`-th window row is held back for validation
    /// (never trained on). Must be ≥ 2.
    pub holdout_stride: usize,
    /// How far candidate recall may fall below baseline recall on the
    /// held-back slice before the candidate is rejected.
    pub recall_tolerance: f64,
    /// Minimum target-class rows the *training* slice must hold; a
    /// thinner window cannot support a rare-class fit.
    pub min_target_rows: usize,
}

impl Default for RefitOptions {
    fn default() -> Self {
        RefitOptions {
            params: None,
            holdout_stride: 5,
            recall_tolerance: 0.05,
            min_target_rows: 10,
        }
    }
}

/// Validation outcome of a refit candidate, reported alongside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitEval {
    /// Candidate target-class recall on the held-back slice.
    pub candidate_recall: f64,
    /// Baseline (last-known-good) recall on the same slice.
    pub baseline_recall: f64,
    /// Rows the candidate trained on.
    pub train_rows: usize,
    /// Rows held back for validation.
    pub holdout_rows: usize,
    /// Target-class rows among the held-back slice.
    pub holdout_targets: usize,
}

/// Why a windowed refit produced no candidate. Display strings start
/// with the variant name (the workspace's grep-able convention).
#[derive(Debug)]
pub enum RefitError {
    /// The window's schema has no class of the requested name.
    TargetMissing {
        /// The class that was asked for.
        target: String,
    },
    /// The training slice holds too few target rows to fit from.
    TooFewTargetRows {
        /// Target rows present in the training slice.
        have: usize,
        /// The configured minimum.
        need: usize,
    },
    /// `holdout_stride` < 2 — no rows would be held back (or none
    /// trained on), so validation would be vacuous.
    BadHoldoutStride {
        /// The stride that was passed.
        stride: usize,
    },
    /// The fit panicked; the panic was contained here.
    FitPanicked {
        /// The panic payload, stringified.
        detail: String,
    },
    /// The candidate regressed target-class recall on the held-back
    /// slice beyond the configured tolerance.
    RecallRegression {
        /// Candidate recall on the holdout.
        candidate: f64,
        /// Baseline recall on the holdout.
        baseline: f64,
        /// The tolerance that was exceeded.
        tolerance: f64,
    },
    /// Artifact assembly or schema reconciliation failed.
    Artifact(ArtifactError),
}

impl fmt::Display for RefitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefitError::TargetMissing { target } => {
                write!(f, "TargetMissing: window has no class named `{target}`")
            }
            RefitError::TooFewTargetRows { have, need } => write!(
                f,
                "TooFewTargetRows: training slice holds {have} target row(s), need {need}"
            ),
            RefitError::BadHoldoutStride { stride } => write!(
                f,
                "BadHoldoutStride: holdout stride {stride} leaves nothing to train or validate on"
            ),
            RefitError::FitPanicked { detail } => write!(f, "FitPanicked: {detail}"),
            RefitError::RecallRegression {
                candidate,
                baseline,
                tolerance,
            } => write!(
                f,
                "RecallRegression: candidate recall {candidate:.4} vs baseline {baseline:.4} \
                 exceeds tolerance {tolerance:.4}"
            ),
            RefitError::Artifact(e) => write!(f, "Artifact: {e}"),
        }
    }
}

impl std::error::Error for RefitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RefitError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtifactError> for RefitError {
    fn from(e: ArtifactError) -> Self {
        RefitError::Artifact(e)
    }
}

/// Copies the rows of `data` selected by `keep(row)` into a fresh
/// dataset with byte-identical schema (attribute order, dictionary
/// codes and class codes all pre-registered from the source), so rule
/// conditions learned on a slice are meaningful on the whole.
fn select_rows(data: &Dataset, mut keep: impl FnMut(usize) -> bool) -> Result<Dataset, RefitError> {
    let schema = data.schema();
    let mut b = DatasetBuilder::new();
    for a in &schema.attributes {
        b.add_attribute(a.name.clone(), a.ty);
    }
    for (ai, a) in schema.attributes.iter().enumerate() {
        if a.ty == AttrType::Categorical {
            for code in 0..a.dict.len() {
                let code = u32::try_from(code).map_err(|_| {
                    RefitError::Artifact(ArtifactError::Malformed {
                        detail: "dictionary code does not fit u32".to_string(),
                    })
                })?;
                b.add_cat_value(ai, a.dict.name(code));
            }
        }
    }
    for class in 0..schema.n_classes() {
        let class = u32::try_from(class).map_err(|_| {
            RefitError::Artifact(ArtifactError::Malformed {
                detail: "class code does not fit u32".to_string(),
            })
        })?;
        b.add_class(schema.classes.name(class));
    }
    let mut values = Vec::with_capacity(schema.n_attrs());
    for row in 0..data.n_rows() {
        if !keep(row) {
            continue;
        }
        values.clear();
        for (ai, a) in schema.attributes.iter().enumerate() {
            values.push(match a.ty {
                AttrType::Numeric => Value::num(data.num(ai, row)),
                AttrType::Categorical => Value::cat(data.cat_name(ai, row)),
            });
        }
        b.push_row(
            &values,
            schema.classes.name(data.label(row)),
            data.weight(row),
        )
        .map_err(|e| {
            RefitError::Artifact(ArtifactError::Malformed {
                detail: format!("window row {row} failed to copy: {e}"),
            })
        })?;
    }
    Ok(b.finish())
}

/// Target-class recall of `model` over every row of `data`: the fraction
/// of target-labelled rows the model decided positive. Rows the serving
/// layer refuses to score count as misses — a model that quarantines the
/// target class has not recalled it.
pub fn recall_on(model: &ServingModel, data: &Dataset, target: u32) -> Result<f64, ArtifactError> {
    let map = model.reconcile_dataset(data)?;
    let mut targets = 0usize;
    let mut hits = 0usize;
    for row in 0..data.n_rows() {
        if data.label(row) != target {
            continue;
        }
        targets += 1;
        if let Ok(rec) = model.score_dataset_row(data, &map, row) {
            if rec.decision {
                hits += 1;
            }
        }
    }
    if targets == 0 {
        return Ok(0.0);
    }
    let targets_f = u32::try_from(targets).map(f64::from).unwrap_or(f64::MAX);
    let hits_f = u32::try_from(hits).map(f64::from).unwrap_or(f64::MAX);
    Ok(hits_f / targets_f)
}

/// Fits a refit candidate on `window` and validates it against the
/// baseline. See the module docs for the contract; on success the
/// returned artifact carries **no lineage yet** — the caller stamps
/// lineage (parent checksum, window id, verdict) before saving, because
/// only the caller knows which on-disk file is the parent.
pub fn refit_window(
    window: &Dataset,
    target_class: &str,
    baseline: &ServingModel,
    opts: &RefitOptions,
    store: &FitCheckpointStore,
    sink: &Arc<dyn TelemetrySink>,
) -> Result<(ModelArtifact, RefitEval), RefitError> {
    if opts.holdout_stride < 2 {
        return Err(RefitError::BadHoldoutStride {
            stride: opts.holdout_stride,
        });
    }
    let target = window
        .class_code(target_class)
        .ok_or_else(|| RefitError::TargetMissing {
            target: target_class.to_string(),
        })?;
    let stride = opts.holdout_stride;
    let is_holdout = |row: usize| row % stride == stride - 1;
    let train = select_rows(window, |r| !is_holdout(r))?;
    let holdout = select_rows(window, is_holdout)?;
    let train_targets = train.labels().iter().filter(|&&l| l == target).count();
    if train_targets < opts.min_target_rows {
        return Err(RefitError::TooFewTargetRows {
            have: train_targets,
            need: opts.min_target_rows,
        });
    }

    let params = opts
        .params
        .clone()
        .unwrap_or_else(|| baseline.artifact().params.clone());
    let learner = PnruleLearner::new(params.clone()).with_sink(Arc::clone(sink));
    let fitted = {
        let _span = Span::enter(sink.as_ref(), SpanKind::RefitFit, target_class);
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            learner.fit_checkpointed(&train, target, store)
        }))
    };
    let (model, report) = match fitted {
        Ok(v) => v,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            return Err(RefitError::FitPanicked { detail });
        }
    };
    let candidate = ModelArtifact::new(model, params, report, window.schema().clone())?;

    let eval = {
        let _span = Span::enter(sink.as_ref(), SpanKind::RefitValidate, target_class);
        let candidate_serving = ServingModel::new(candidate.clone());
        let candidate_recall = recall_on(&candidate_serving, &holdout, target)?;
        let holdout_target_code = holdout.class_code(target_class).unwrap_or(target);
        let baseline_recall = recall_on(baseline, &holdout, holdout_target_code)?;
        RefitEval {
            candidate_recall,
            baseline_recall,
            train_rows: train.n_rows(),
            holdout_rows: holdout.n_rows(),
            holdout_targets: holdout
                .labels()
                .iter()
                .filter(|&&l| l == holdout_target_code)
                .count(),
        }
    };
    if eval.candidate_recall + opts.recall_tolerance < eval.baseline_recall {
        return Err(RefitError::RecallRegression {
            candidate: eval.candidate_recall,
            baseline: eval.baseline_recall,
            tolerance: opts.recall_tolerance,
        });
    }
    Ok((candidate, eval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    /// A window where the target hides at x > 50 under k = "ftp".
    fn window(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        for i in 0..n {
            let x = f64::from(u32::try_from(i % 100).unwrap_or(0));
            let k = if i % 3 == 0 { "ftp" } else { "http" };
            let target = x > 50.0 && k == "ftp";
            b.push_row(
                &[Value::num(x), Value::cat(k)],
                if target { "rare" } else { "rest" },
                1.0,
            )
            .unwrap();
        }
        b.finish()
    }

    fn baseline_artifact(data: &Dataset) -> ModelArtifact {
        let target = data.class_code("rare").unwrap();
        let learner = PnruleLearner::new(PnruleParams::default());
        let (model, report) =
            learner.fit_checkpointed(data, target, &FitCheckpointStore::disabled());
        ModelArtifact::new(
            model,
            PnruleParams::default(),
            report,
            data.schema().clone(),
        )
        .unwrap()
    }

    #[test]
    fn select_rows_preserves_schema_and_codes() {
        let data = window(90);
        let every_third = select_rows(&data, |r| r % 3 == 0).unwrap();
        assert_eq!(every_third.n_rows(), 30);
        assert_eq!(
            every_third.schema().fingerprint(),
            data.schema().fingerprint(),
            "pre-registered schema must be byte-identical to the source"
        );
        assert_eq!(every_third.label(0), data.label(0));
        assert_eq!(every_third.num(0, 1), data.num(0, 3));
    }

    #[test]
    fn refit_on_the_same_distribution_validates() {
        let data = window(600);
        let baseline = ServingModel::new(baseline_artifact(&data));
        let (candidate, eval) = refit_window(
            &data,
            "rare",
            &baseline,
            &RefitOptions::default(),
            &FitCheckpointStore::disabled(),
            &pnr_telemetry::noop(),
        )
        .unwrap();
        assert!(eval.candidate_recall >= eval.baseline_recall - 0.05);
        assert!(eval.holdout_rows > 0 && eval.train_rows > 0);
        assert_eq!(eval.holdout_rows + eval.train_rows, 600);
        assert!(candidate.lineage.is_none(), "lineage is the caller's job");
        assert_eq!(candidate.target_class(), "rare");
    }

    #[test]
    fn thin_windows_are_refused() {
        let data = window(90);
        let baseline = ServingModel::new(baseline_artifact(&data));
        let opts = RefitOptions {
            min_target_rows: 1000,
            ..RefitOptions::default()
        };
        let err = refit_window(
            &data,
            "rare",
            &baseline,
            &opts,
            &FitCheckpointStore::disabled(),
            &pnr_telemetry::noop(),
        )
        .unwrap_err();
        assert!(matches!(err, RefitError::TooFewTargetRows { .. }), "{err}");
    }

    #[test]
    fn missing_target_class_is_typed() {
        let data = window(60);
        let baseline = ServingModel::new(baseline_artifact(&data));
        let err = refit_window(
            &data,
            "no-such-class",
            &baseline,
            &RefitOptions::default(),
            &FitCheckpointStore::disabled(),
            &pnr_telemetry::noop(),
        )
        .unwrap_err();
        assert!(matches!(err, RefitError::TargetMissing { .. }), "{err}");
    }

    #[test]
    fn bad_stride_is_refused() {
        let data = window(60);
        let baseline = ServingModel::new(baseline_artifact(&data));
        let err = refit_window(
            &data,
            "rare",
            &baseline,
            &RefitOptions {
                holdout_stride: 1,
                ..RefitOptions::default()
            },
            &FitCheckpointStore::disabled(),
            &pnr_telemetry::noop(),
        )
        .unwrap_err();
        assert!(matches!(err, RefitError::BadHoldoutStride { .. }), "{err}");
    }
}
