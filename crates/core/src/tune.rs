//! Validation-based tuning: automatic recall-limit selection and N-stage
//! pruning.
//!
//! Both are items from the paper's future-work list (section 5):
//! "automating or guiding the selection of recall limits in each stage" and
//! "adding some pruning mechanisms to further protect the N-stage from
//! running into overfitting". The implementations here use a stratified
//! internal validation split — the idiomatic way to realise either without
//! touching the test set.

use crate::learn::PnruleLearner;
use crate::model::PnruleModel;
use crate::params::PnruleParams;
use crate::scoring::ScoreMatrix;
use pnr_data::{stratified_split, Dataset};
use pnr_metrics::BinaryConfusion;
use pnr_rules::{evaluate_classifier, RuleSet};
use pnr_telemetry::{Span, SpanKind, TelemetrySink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Configuration of [`fit_auto`].
#[derive(Debug, Clone)]
pub struct AutoTuneOptions {
    /// Candidate `rp` values. Default: the paper's synthetic-study grid.
    pub rp_grid: Vec<f64>,
    /// Candidate `rn` values.
    pub rn_grid: Vec<f64>,
    /// Also try the `P1` restriction (single-condition P-rules), which the
    /// paper found decisive on the KDD classes.
    pub try_p1: bool,
    /// Fraction of the training data held out for validation.
    pub validation_frac: f64,
    /// Split seed.
    pub seed: u64,
    /// Base parameters every candidate inherits.
    pub base: PnruleParams,
    /// Telemetry sink grid-cell spans and nested fits report to.
    /// Write-only: the chosen parameters and final model are identical
    /// whatever sink is attached.
    pub sink: Arc<dyn TelemetrySink>,
}

impl Default for AutoTuneOptions {
    fn default() -> Self {
        AutoTuneOptions {
            rp_grid: vec![0.95, 0.99],
            rn_grid: vec![0.7, 0.9, 0.95],
            try_p1: true,
            validation_frac: 0.33,
            seed: 0x7E57,
            base: PnruleParams::default(),
            sink: pnr_telemetry::noop(),
        }
    }
}

fn validation_f(
    params: &PnruleParams,
    train: &Dataset,
    valid: &Dataset,
    target: u32,
    sink: &Arc<dyn TelemetrySink>,
) -> f64 {
    let model = PnruleLearner::new(params.clone())
        .with_sink(sink.clone())
        .fit(train, target);
    evaluate_classifier(&model, valid, target).f_measure()
}

/// Fits PNrule with recall limits chosen on an internal validation split.
///
/// Every `(rp, rn[, P1])` combination is trained on the sub-train part and
/// scored on the held-out part by F-measure; the winner is refit on the
/// full training data. Returns the model and the chosen parameters.
pub fn fit_auto(
    data: &Dataset,
    target: u32,
    opts: &AutoTuneOptions,
) -> (PnruleModel, PnruleParams) {
    assert!(
        opts.validation_frac > 0.0 && opts.validation_frac < 1.0,
        "validation_frac must be in (0,1)"
    );
    assert!(
        !opts.rp_grid.is_empty() && !opts.rn_grid.is_empty(),
        "grids must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (sub_train, valid) = stratified_split(data, 1.0 - opts.validation_frac, &mut rng);

    let mut best: Option<(f64, PnruleParams)> = None;
    for &rp in &opts.rp_grid {
        for &rn in &opts.rn_grid {
            let mut variants = vec![PnruleParams {
                rp,
                rn,
                ..opts.base.clone()
            }];
            if opts.try_p1 {
                variants.push(PnruleParams {
                    rp,
                    rn,
                    max_p_rule_len: Some(1),
                    ..opts.base.clone()
                });
            }
            for params in variants {
                let f = {
                    // Label formatting is gated so the disabled path
                    // allocates nothing per cell.
                    let label = if opts.sink.enabled() {
                        let p1 = if params.max_p_rule_len == Some(1) {
                            "_p1"
                        } else {
                            ""
                        };
                        format!("rp{rp}_rn{rn}{p1}")
                    } else {
                        String::new()
                    };
                    let _cell_span = Span::enter(opts.sink.as_ref(), SpanKind::TuneCell, &label);
                    validation_f(&params, &sub_train, &valid, target, &opts.sink)
                };
                if best.as_ref().is_none_or(|(bf, _)| f > *bf) {
                    best = Some((f, params));
                }
            }
        }
    }
    let Some((_, winner)) = best else {
        unreachable!("non-empty grids (asserted above) always produce a candidate")
    };
    let model = PnruleLearner::new(winner.clone())
        .with_sink(opts.sink.clone())
        .fit(data, target);
    (model, winner)
}

/// N-stage pruning: greedily deletes N-rules whose removal does not hurt
/// (or improves) the F-measure on `valid`, rebuilding the ScoreMatrix on
/// `train` after each deletion. Returns the pruned model.
///
/// This protects the N-stage from overfitting when `rn` was set too high
/// ("lot of highly refined, low support rules might be discovered, leading
/// to overfitting in N-phase").
pub fn prune_n_rules(
    model: &PnruleModel,
    train: &Dataset,
    valid: &Dataset,
    z_threshold: f64,
) -> PnruleModel {
    let is_pos: Vec<bool> = (0..train.n_rows())
        .map(|r| train.label(r) == model.target)
        .collect();
    let rebuild = |n_rules: &RuleSet| -> PnruleModel {
        let sm = ScoreMatrix::build(train, &is_pos, &model.p_rules, n_rules, z_threshold);
        PnruleModel {
            target: model.target,
            threshold: model.threshold,
            p_rules: model.p_rules.clone(),
            n_rules: n_rules.clone(),
            score_matrix: sm,
        }
    };
    let f_of = |m: &PnruleModel| -> f64 {
        let cm: BinaryConfusion = evaluate_classifier(m, valid, m.target);
        cm.f_measure()
    };

    let mut current = model.clone();
    let mut current_f = f_of(&current);
    loop {
        let mut best: Option<(usize, PnruleModel, f64)> = None;
        for i in 0..current.n_rules.len() {
            let mut trial_rules = current.n_rules.clone();
            trial_rules.remove(i);
            let trial = rebuild(&trial_rules);
            let f = f_of(&trial);
            if f >= current_f && best.as_ref().is_none_or(|(_, _, bf)| f > *bf) {
                best = Some((i, trial, f));
            }
        }
        match best {
            Some((_, trial, f)) => {
                current = trial;
                current_f = f;
            }
            None => break,
        }
        if current.n_rules.is_empty() {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};
    use pnr_rules::BinaryClassifier;

    fn band_data(n: usize, seed_shift: u64) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("y", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..n {
            let x = ((i as u64 * 7 + seed_shift) % 100) as f64;
            let y = ((i as u64 * 13 + seed_shift) % 10) as f64;
            let target = (40.0..48.0).contains(&x) && y < 7.0;
            b.push_row(
                &[Value::num(x), Value::num(y)],
                if target { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn auto_tuning_picks_a_grid_member_and_learns() {
        let data = band_data(4_000, 0);
        let target = data.class_code("pos").unwrap();
        let opts = AutoTuneOptions::default();
        let (model, chosen) = fit_auto(&data, target, &opts);
        assert!(opts.rp_grid.contains(&chosen.rp));
        assert!(opts.rn_grid.contains(&chosen.rn));
        let cm = evaluate_classifier(&model, &data, target);
        assert!(cm.f_measure() > 0.9, "auto-tuned F {}", cm.f_measure());
    }

    #[test]
    fn auto_tuning_is_deterministic_in_seed() {
        let data = band_data(2_000, 0);
        let target = data.class_code("pos").unwrap();
        let opts = AutoTuneOptions::default();
        let (_, p1) = fit_auto(&data, target, &opts);
        let (_, p2) = fit_auto(&data, target, &opts);
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "grids must be non-empty")]
    fn empty_grid_rejected() {
        let data = band_data(200, 0);
        let opts = AutoTuneOptions {
            rp_grid: vec![],
            ..Default::default()
        };
        fit_auto(&data, 0, &opts);
    }

    #[test]
    fn pruning_never_hurts_validation_f() {
        let train = band_data(3_000, 0);
        let valid = band_data(1_000, 17);
        let target = train.class_code("pos").unwrap();
        // deliberately overfit the N-stage with a very high rn
        let params = PnruleParams {
            rn: 0.999,
            ..Default::default()
        };
        let model = PnruleLearner::new(params).fit(&train, target);
        let before = evaluate_classifier(&model, &valid, target).f_measure();
        let pruned = prune_n_rules(&model, &train, &valid, 1.0);
        let after = evaluate_classifier(&pruned, &valid, target).f_measure();
        assert!(after + 1e-12 >= before, "pruning hurt: {before} -> {after}");
        assert!(pruned.n_rules.len() <= model.n_rules.len());
    }

    #[test]
    fn pruned_model_still_scores_probabilities() {
        let train = band_data(2_000, 0);
        let valid = band_data(600, 5);
        let target = train.class_code("pos").unwrap();
        let model = PnruleLearner::default().fit(&train, target);
        let pruned = prune_n_rules(&model, &train, &valid, 1.0);
        for row in (0..valid.n_rows()).step_by(41) {
            let s = pruned.score(&valid, row);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
