//! The compiled two-phase scoring engine.
//!
//! [`CompiledModel`] lowers a [`PnruleModel`]'s two rule lists into
//! [`CompiledRuleSet`] predicate programs (see `pnr_rules::compiled` for
//! the scheme) and fuses P-routing, N-routing and the ScoreMatrix lookup
//! into one pass: route the record through the compiled P-program; on a
//! hit, route it through the compiled N-program and read the score out of
//! the matrix. Decisions — score, trace and thresholded prediction — are
//! bit-identical to [`PnruleModel::score_with_trace`]: the compiled rule
//! engines return the interpreter's exact first-match ranks, and the
//! matrix lookup and threshold comparison are the same code path.
//!
//! For batch scoring, [`CompiledModel::scorer`] binds both programs to a
//! dataset's columns once ([`CompiledMatcher`]) so the per-row loop is
//! pure dispatch — this is the engine behind the serving layer's batch
//! path and the `BENCH_score.json` baseline.

use crate::model::{PnruleModel, RuleTrace};
use crate::scoring::ScoreMatrix;
use pnr_data::Dataset;
use pnr_rules::compiled::{CompileError, CompiledMatcher, CompiledRuleSet};

/// A [`PnruleModel`] lowered into compiled P- and N-phase predicate
/// programs plus the scoring mechanism. Compile once per model; score
/// per row (or per batch through [`Self::scorer`]).
#[derive(Debug, Clone)]
pub struct CompiledModel {
    threshold: f64,
    p: CompiledRuleSet,
    n: CompiledRuleSet,
    score_matrix: ScoreMatrix,
}

impl CompiledModel {
    /// Lowers `model` into a compiled engine. Fails only when a rule list
    /// is malformed (one attribute tested both categorically and
    /// numerically — see [`CompileError`]); artifacts that pass
    /// validation always compile.
    pub fn compile(model: &PnruleModel) -> Result<CompiledModel, CompileError> {
        Ok(CompiledModel {
            threshold: model.threshold,
            p: CompiledRuleSet::compile(&model.p_rules)?,
            n: CompiledRuleSet::compile(&model.n_rules)?,
            score_matrix: model.score_matrix.clone(),
        })
    }

    /// The decision threshold carried over from the source model.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Score and explanation of `row`, bit-identical to
    /// [`PnruleModel::score_with_trace`].
    pub fn score_with_trace(&self, data: &Dataset, row: usize) -> (f64, RuleTrace) {
        match self.p.first_match(data, row) {
            None => NO_P_MATCH,
            Some(pi) => {
                let nj = self.n.first_match(data, row);
                (
                    self.score_matrix.score(pi, nj),
                    RuleTrace {
                        p_rule: Some(pi),
                        n_rule: nj,
                    },
                )
            }
        }
    }

    /// Score and explanation against fallible value lookups (the serving
    /// path's drift-tolerant access), bit-identical to routing
    /// `RuleSet::first_match_lookup` through the ScoreMatrix. An unknown
    /// (`None`) value satisfies no condition.
    pub fn score_with_trace_lookup<N, C>(&self, num: N, cat: C) -> (f64, RuleTrace)
    where
        N: Fn(usize) -> Option<f64>,
        C: Fn(usize) -> Option<u32>,
    {
        match self.p.first_match_lookup(&num, &cat) {
            None => NO_P_MATCH,
            Some(pi) => {
                let nj = self.n.first_match_lookup(&num, &cat);
                (
                    self.score_matrix.score(pi, nj),
                    RuleTrace {
                        p_rule: Some(pi),
                        n_rule: nj,
                    },
                )
            }
        }
    }

    /// The thresholded decision for `row`.
    pub fn predict(&self, data: &Dataset, row: usize) -> bool {
        self.score_with_trace(data, row).0 > self.threshold
    }

    /// A batch scorer over `data` with both rule programs bound to the
    /// dataset's columns once.
    ///
    /// # Panics
    /// Panics (like the interpreter's first data access would) when a
    /// tested attribute's column type contradicts its conditions.
    pub fn scorer<'a>(&'a self, data: &'a Dataset) -> CompiledScorer<'a> {
        CompiledScorer {
            threshold: self.threshold,
            data,
            p: self.p.matcher(data),
            n: &self.n,
            score_matrix: &self.score_matrix,
        }
    }
}

/// The no-P-rule outcome: score 0 and an empty trace.
const NO_P_MATCH: (f64, RuleTrace) = (
    0.0,
    RuleTrace {
        p_rule: None,
        n_rule: None,
    },
);

/// A [`CompiledModel`] bound to one dataset's columns for batch scoring.
#[derive(Debug, Clone)]
pub struct CompiledScorer<'a> {
    threshold: f64,
    data: &'a Dataset,
    p: CompiledMatcher<'a>,
    /// The N-phase runs on the per-row dense path, not a batch matcher:
    /// it is consulted only for the (rare, in the rare-class serving
    /// shape) rows some P-rule matched, so paying the matcher's
    /// bind-time segment precompute for every row would cost more than
    /// the per-row dispatch it saves.
    n: &'a CompiledRuleSet,
    score_matrix: &'a ScoreMatrix,
}

impl CompiledScorer<'_> {
    /// Score and explanation of `row`, bit-identical to
    /// [`PnruleModel::score_with_trace`].
    #[inline]
    pub fn score_with_trace(&self, row: usize) -> (f64, RuleTrace) {
        match self.p.first_match(row) {
            None => NO_P_MATCH,
            Some(pi) => {
                let nj = self.n.first_match(self.data, row);
                (
                    self.score_matrix.score(pi, nj),
                    RuleTrace {
                        p_rule: Some(pi),
                        n_rule: nj,
                    },
                )
            }
        }
    }

    /// The model score of `row`.
    #[inline]
    pub fn score(&self, row: usize) -> f64 {
        self.score_with_trace(row).0
    }

    /// The thresholded decision for `row`.
    #[inline]
    pub fn predict(&self, row: usize) -> bool {
        self.score(row) > self.threshold
    }
}

/// Which rule-evaluation engine the serving layer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringEngine {
    /// Compiled engine when the model compiles, interpreter otherwise
    /// (default).
    #[default]
    Auto,
    /// Always the compiled engine; falls back to the interpreter only if
    /// the model does not compile.
    Compiled,
    /// Always the per-rule interpreter.
    Interpreter,
}

impl ScoringEngine {
    /// Parses the CLI spelling (`auto` | `compiled` | `interpreter`).
    pub fn parse(s: &str) -> Option<ScoringEngine> {
        match s {
            "auto" => Some(ScoringEngine::Auto),
            "compiled" => Some(ScoringEngine::Compiled),
            "interpreter" => Some(ScoringEngine::Interpreter),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ScoringEngine::Auto => "auto",
            ScoringEngine::Compiled => "compiled",
            ScoringEngine::Interpreter => "interpreter",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};
    use pnr_rules::{Condition, Rule, RuleSet};

    fn model_and_data() -> (PnruleModel, Dataset) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("pos");
        b.add_class("neg");
        b.add_cat_value(1, "ftp");
        b.add_cat_value(1, "http");
        for i in 0..60 {
            let x = (i % 10) as f64;
            let k = if i % 3 == 0 { "ftp" } else { "http" };
            let target = x <= 5.0 && i % 3 == 0;
            b.push_row(
                &[Value::num(x), Value::cat(k)],
                if target { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        let p_rules = RuleSet::from_rules(vec![Rule::new(vec![Condition::NumLe {
            attr: 0,
            value: 5.0,
        }])]);
        let n_rules = RuleSet::from_rules(vec![Rule::new(vec![Condition::CatEq {
            attr: 1,
            value: 1,
        }])]);
        let sm = ScoreMatrix::build(&d, &is_pos, &p_rules, &n_rules, 1.0);
        let model = PnruleModel {
            target: 0,
            threshold: 0.5,
            p_rules,
            n_rules,
            score_matrix: sm,
        };
        (model, d)
    }

    #[test]
    fn compiled_scores_are_bit_identical_to_the_interpreter() {
        let (model, d) = model_and_data();
        let compiled = CompiledModel::compile(&model).expect("compiles");
        let scorer = compiled.scorer(&d);
        for row in 0..d.n_rows() {
            let (want_score, want_trace) = model.score_with_trace(&d, row);
            let (got_score, got_trace) = compiled.score_with_trace(&d, row);
            assert_eq!(got_score.to_bits(), want_score.to_bits(), "row {row}");
            assert_eq!(got_trace, want_trace, "row {row}");
            let (bs, bt) = scorer.score_with_trace(row);
            assert_eq!(bs.to_bits(), want_score.to_bits(), "batch row {row}");
            assert_eq!(bt, want_trace, "batch row {row}");
            assert_eq!(
                compiled.predict(&d, row),
                want_score > model.threshold,
                "row {row}"
            );
            assert_eq!(scorer.predict(row), want_score > model.threshold);
        }
    }

    #[test]
    fn lookup_path_matches_interpreter_with_unknowns() {
        let (model, d) = model_and_data();
        let compiled = CompiledModel::compile(&model).expect("compiles");
        // all values known
        for row in 0..d.n_rows() {
            let num = |a: usize| Some(d.num(a, row));
            let cat = |a: usize| Some(d.cat(a, row));
            let (score, trace) = compiled.score_with_trace_lookup(num, cat);
            let want = model.score_with_trace(&d, row);
            assert_eq!(score.to_bits(), want.0.to_bits());
            assert_eq!(trace, want.1);
        }
        // everything unknown: no P-rule fires, no-P score
        let (score, trace) = compiled.score_with_trace_lookup(|_| None, |_| None);
        assert_eq!(score.to_bits(), 0.0f64.to_bits());
        assert_eq!(
            trace,
            RuleTrace {
                p_rule: None,
                n_rule: None
            }
        );
    }

    #[test]
    fn engine_spellings_round_trip() {
        for engine in [
            ScoringEngine::Auto,
            ScoringEngine::Compiled,
            ScoringEngine::Interpreter,
        ] {
            assert_eq!(ScoringEngine::parse(engine.name()), Some(engine));
        }
        assert_eq!(ScoringEngine::parse("turbo"), None);
        assert_eq!(ScoringEngine::default(), ScoringEngine::Auto);
    }

    #[test]
    fn threshold_carries_over() {
        let (model, _) = model_and_data();
        let compiled = CompiledModel::compile(&model).expect("compiles");
        assert_eq!(compiled.threshold().to_bits(), model.threshold.to_bits());
    }
}
