//! Tunable parameters of the PNrule learner.

use pnr_rules::{EvalMetric, FitBudget};
use serde::{Deserialize, Serialize};

/// Control parameters of the two-phase learner.
///
/// The two headline knobs the paper exposes (section 2.2, section 4):
///
/// * [`rp`](Self::rp) — the minimum fraction of the target class the
///   P-phase must cover before accuracy gating kicks in. It acts as an
///   *upper limit on recall*: nothing the N-phase does can recover target
///   examples no P-rule covers.
/// * [`rn`](Self::rn) — the *lower limit on recall* guarding N-rule
///   refinement: an N-rule is forced to grow more specific whenever
///   accepting it as-is would push retained recall below `rn`.
///
/// Together they give the user implicit control over the classifier's
/// recall/precision balance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PnruleParams {
    /// Minimum target-class coverage of the P-phase (upper recall limit).
    /// Paper values: 0.95, 0.99, 0.995.
    pub rp: f64,
    /// Lower recall limit guarding N-rule refinement. Paper values: 0.7 to
    /// 0.995.
    pub rn: f64,
    /// A P-rule's support (total covered weight) must stay above this
    /// fraction of the original target-class weight.
    pub min_support_frac: f64,
    /// After coverage reaches `rp`, a new P-rule is added only if its
    /// accuracy is at least this.
    pub min_accuracy: f64,
    /// Cap on P-rule length; `Some(1)` reproduces the paper's `probe.P1` /
    /// `r2l.P1` configurations where "restricting P-rule length to 1 allows
    /// P-rules to be very general".
    pub max_p_rule_len: Option<usize>,
    /// Cap on N-rule length (`None` = grow until the criteria stop it).
    pub max_n_rule_len: Option<usize>,
    /// Evaluation metric for candidate rules in both phases. The paper's
    /// default is the Z-number; its section-4 experiments also use RIPPER's
    /// information gain ([`EvalMetric::FoilGain`]).
    pub metric: EvalMetric,
    /// Evaluate explicit range conditions on numeric attributes (section
    /// 2.2). Disable only for the range-ablation experiment.
    pub use_ranges: bool,
    /// Relative metric improvement a refinement must deliver to be
    /// accepted during rule growth (overfitting guard; see
    /// [`crate::grow::GrowOptions::min_improvement`]).
    pub min_improvement: f64,
    /// Disable the N-phase entirely (ablation): the model degenerates to a
    /// relaxed-accuracy sequential coverer.
    pub enable_n_phase: bool,
    /// MDL slack in bits for the N-stage stopping rule: stop adding N-rules
    /// when the set's description length exceeds the minimum seen so far by
    /// more than this. 64 bits is RIPPER's convention.
    pub mdl_slack_bits: f64,
    /// |z| threshold below which an N-rule's effect on a P-rule is deemed
    /// insignificant and ignored by the scoring mechanism.
    pub scoring_z_threshold: f64,
    /// Decision threshold on the ScoreMatrix probability ("usually 50%").
    pub decision_threshold: f64,
    /// Hard cap on the number of P-rules (safety valve; generous default).
    pub max_p_rules: usize,
    /// Hard cap on the number of N-rules.
    pub max_n_rules: usize,
    /// Training budget (rules, candidate evaluations, wall clock). When a
    /// limit is exhausted the fit stops growing and returns the valid
    /// model learned so far, recording
    /// [`StopReason::BudgetExhausted`](crate::nphase::StopReason) in the
    /// [`FitReport`](crate::learn::FitReport). Unlimited by default.
    #[serde(default)]
    pub budget: FitBudget,
    /// Worker-thread cap for the condition search in both phases:
    /// `None` (default) lets the size-based heuristic decide, `Some(1)`
    /// forces the sequential reference scan, `Some(k)` forces the
    /// threaded path with at most `k` workers even on small fits. The
    /// learned model is bit-identical for every setting (the `cargo
    /// xtask determinism` harness sweeps {1, 2, max} to prove it), so
    /// this is a performance/verification knob, never a model knob.
    #[serde(default)]
    pub search_workers: Option<usize>,
    /// Row-shard count for the condition search's statistics
    /// accumulation: `None` (default) keeps one shard, reproducing the
    /// unsharded scan's float arithmetic exactly; `Some(k)` splits each
    /// view into `k` contiguous row chunks whose partial statistics merge
    /// in shard-index order. Unlike `search_workers` this *is* a model
    /// knob for non-unit weights (a different shard plan groups float
    /// additions differently), but a fixed setting is machine-independent
    /// and bit-reproducible — and with unit weights every plan agrees
    /// bitwise. Must be ≥ 1 when set.
    #[serde(default)]
    pub row_shards: Option<usize>,
}

impl Default for PnruleParams {
    fn default() -> Self {
        PnruleParams {
            rp: 0.95,
            rn: 0.9,
            min_support_frac: 0.02,
            min_accuracy: 0.9,
            max_p_rule_len: None,
            max_n_rule_len: None,
            metric: EvalMetric::ZNumber,
            use_ranges: true,
            min_improvement: 0.02,
            enable_n_phase: true,
            mdl_slack_bits: 64.0,
            scoring_z_threshold: 1.0,
            decision_threshold: 0.5,
            max_p_rules: 200,
            max_n_rules: 200,
            budget: FitBudget::unlimited(),
            search_workers: None,
            row_shards: None,
        }
    }
}

impl PnruleParams {
    /// Convenience constructor for the paper's section-4 parameter grids:
    /// set `rp` and `rn`, keep everything else at the defaults.
    pub fn with_recall_limits(rp: f64, rn: f64) -> Self {
        PnruleParams {
            rp,
            rn,
            ..Default::default()
        }
    }

    /// Panics with a descriptive message if any parameter is out of range.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.rp),
            "rp must be in [0,1], got {}",
            self.rp
        );
        assert!(
            (0.0..=1.0).contains(&self.rn),
            "rn must be in [0,1], got {}",
            self.rn
        );
        assert!(
            (0.0..=1.0).contains(&self.min_support_frac),
            "min_support_frac must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.min_accuracy),
            "min_accuracy must be in [0,1]"
        );
        assert!(
            (0.0..1.0).contains(&self.decision_threshold),
            "decision_threshold must be in [0,1)"
        );
        assert!(
            self.mdl_slack_bits >= 0.0,
            "mdl_slack_bits must be non-negative"
        );
        assert!(
            self.min_improvement >= 0.0,
            "min_improvement must be non-negative"
        );
        assert!(
            self.scoring_z_threshold >= 0.0,
            "scoring_z_threshold must be non-negative"
        );
        assert!(
            self.max_p_rule_len != Some(0),
            "max_p_rule_len of 0 would forbid any rule"
        );
        assert!(
            self.max_n_rule_len != Some(0),
            "max_n_rule_len of 0 would forbid any rule"
        );
        assert!(
            self.search_workers != Some(0),
            "search_workers of 0 would leave no worker to scan; use Some(1) \
             for the sequential path or None for the heuristic"
        );
        assert!(
            self.row_shards != Some(0),
            "row_shards of 0 would leave no shard to accumulate; use Some(1) \
             for the unsharded plan or None for the default"
        );
        if let Some(problem) = self.budget.validation_error() {
            panic!("{problem}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        PnruleParams::default().validate();
    }

    #[test]
    fn with_recall_limits_sets_both() {
        let p = PnruleParams::with_recall_limits(0.995, 0.8);
        assert_eq!(p.rp, 0.995);
        assert_eq!(p.rn, 0.8);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "rp")]
    fn invalid_rp_rejected() {
        PnruleParams {
            rp: 1.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "max_p_rule_len")]
    fn zero_rule_length_rejected() {
        PnruleParams {
            max_p_rule_len: Some(0),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn serde_round_trip() {
        let p = PnruleParams::with_recall_limits(0.99, 0.7);
        let json = serde_json::to_string(&p).unwrap();
        let back: PnruleParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn params_without_budget_field_deserialize_as_unlimited() {
        // JSON written before the budget field existed must still load.
        let p = PnruleParams::default();
        let json = serde_json::to_string(&p).unwrap();
        let legacy = json.replacen(
            ",\"budget\":{\"max_rules\":null,\"max_candidates\":null,\"wall_clock_secs\":null}",
            "",
            1,
        );
        assert_ne!(legacy, json, "budget field not found in serialized form");
        let back: PnruleParams = serde_json::from_str(&legacy).unwrap();
        assert!(back.budget.is_unlimited());
        assert_eq!(back, p);
    }

    #[test]
    fn params_without_row_shards_field_deserialize_as_default() {
        // JSON written before the row_shards field existed must still load.
        let p = PnruleParams::default();
        let json = serde_json::to_string(&p).unwrap();
        let legacy = json.replacen(",\"row_shards\":null", "", 1);
        assert_ne!(
            legacy, json,
            "row_shards field not found in serialized form"
        );
        let back: PnruleParams = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.row_shards, None);
        assert_eq!(back, p);
    }

    #[test]
    #[should_panic(expected = "row_shards")]
    fn zero_row_shards_rejected() {
        PnruleParams {
            row_shards: Some(0),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "max_rules")]
    fn zero_budget_rule_cap_rejected() {
        PnruleParams {
            budget: FitBudget {
                max_rules: Some(0),
                ..FitBudget::default()
            },
            ..Default::default()
        }
        .validate();
    }
}
