//! The N-phase: collective false-positive removal for precision.
//!
//! Before this phase starts, *all* records covered by the union of P-rules
//! — true positives and false positives alike — are pooled (section 2.1).
//! The N-task then flips the target: its positive class is "false positive
//! of the P-union", and sequential covering learns N-rules that detect the
//! *absence* of the original target class. Pooling is the antidote to the
//! splintered-false-positives problem: every P-rule's mistakes contribute
//! evidence to the same learner.
//!
//! Two guards shape the phase:
//! * the **lower recall limit `rn`** forces a too-greedy N-rule to keep
//!   refining rather than sacrifice retained recall (see
//!   [`crate::grow::RecallGuard`]);
//! * an **MDL stopping rule**: N-rules are added until the rule set's
//!   description length exceeds the minimum seen so far by
//!   `mdl_slack_bits` (the RIPPER convention, cited as [5] by the paper).

use crate::grow::{grow_rule, GrowOptions, RecallGuard};
use crate::params::PnruleParams;
use pnr_data::weights::approx;
use pnr_rules::mdl::{count_possible_conditions, total_dl};
use pnr_rules::{BudgetTracker, CovStats, Rule, TaskView};
use pnr_telemetry::{Counter, Span, SpanKind, TelemetrySink};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One accepted N-rule with its discovery-time statistics over the N-view
/// (`stats.pos` = false-positive weight removed, `stats.neg()` =
/// original-target weight sacrificed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NRule {
    /// The rule.
    pub rule: Rule,
    /// Coverage over the remaining pooled view at discovery time.
    pub stats: CovStats,
}

/// Why a covering phase stopped adding rules (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StopReason {
    /// No positive weight left to cover.
    #[default]
    Exhausted,
    /// The grower produced no rule.
    NoRuleGrown,
    /// The best grown rule's accuracy did not beat the remaining prior.
    LowAccuracy,
    /// Accepting the rule would violate the recall floor `rn`.
    RecallFloor,
    /// The MDL stopping criterion fired.
    MdlStop,
    /// The hard rule-count cap was reached.
    RuleCap,
    /// The desired coverage (`rp`) was reached and the next rule fell
    /// short of the accuracy gate (P-phase only).
    CoverageReached,
    /// The training budget ran out (rule, candidate, or wall-clock limit
    /// of [`FitBudget`](pnr_rules::FitBudget)); the rules accepted before
    /// the stop form a valid truncated model.
    BudgetExhausted,
}

/// Outcome of the N-phase.
#[derive(Debug, Clone, Default)]
pub struct NPhaseResult {
    /// Accepted N-rules in rank (discovery) order.
    pub rules: Vec<NRule>,
    /// Retained recall of the original target class (w.r.t. the whole
    /// training set) after all N-rules are applied.
    pub retained_recall: f64,
    /// Why the covering loop stopped adding rules. MDL truncation can
    /// *additionally* drop accepted rules afterwards — see
    /// [`mdl_truncated`](Self::mdl_truncated); the reason only reads
    /// [`MdlStop`](StopReason::MdlStop) when the loop itself ran to
    /// exhaustion, so a `RuleCap`/`LowAccuracy`/`RecallFloor` stop is not
    /// silently rewritten.
    pub stop_reason: StopReason,
    /// Number of accepted rules the MDL truncation dropped again (0 = the
    /// whole discovered list survived).
    pub mdl_truncated: usize,
    /// Description length after each accepted rule (diagnostics; element 0
    /// is the DL of the empty N-theory).
    pub dl_trace: Vec<f64>,
}

/// Runs the N-phase.
///
/// * `pooled` — a view over the union of P-rule coverage whose `is_pos`
///   marks **false positives** (records the P-union covers that are *not*
///   original targets);
/// * `orig_pos_total` — weight of the original target class in the whole
///   training set (the denominator of the recall guard);
/// * `covered_pos` — original-target weight inside the pool (the recall the
///   P-phase achieved, in weight terms).
pub fn learn_n_rules(
    pooled: &TaskView<'_>,
    orig_pos_total: f64,
    covered_pos: f64,
    params: &PnruleParams,
) -> NPhaseResult {
    let tracker = params.budget.start().map(Arc::new);
    learn_n_rules_with_budget(
        pooled,
        orig_pos_total,
        covered_pos,
        params,
        tracker.as_ref(),
    )
}

/// [`learn_n_rules`] charging against an externally owned budget tracker
/// (`None` = unlimited), so a full fit can share one budget across both
/// phases. When the budget runs out mid-phase the rules accepted so far
/// are returned with [`StopReason::BudgetExhausted`].
pub fn learn_n_rules_with_budget(
    pooled: &TaskView<'_>,
    orig_pos_total: f64,
    covered_pos: f64,
    params: &PnruleParams,
    budget: Option<&Arc<BudgetTracker>>,
) -> NPhaseResult {
    learn_n_rules_with_sink(
        pooled,
        orig_pos_total,
        covered_pos,
        params,
        budget,
        &pnr_telemetry::noop(),
    )
}

/// [`learn_n_rules_with_budget`] reporting phase/rule spans, search
/// counters and MDL prunes to `sink`. Telemetry is write-only: the learned
/// rules are identical whatever sink is attached.
pub fn learn_n_rules_with_sink(
    pooled: &TaskView<'_>,
    orig_pos_total: f64,
    covered_pos: f64,
    params: &PnruleParams,
    budget: Option<&Arc<BudgetTracker>>,
    sink: &Arc<dyn TelemetrySink>,
) -> NPhaseResult {
    learn_n_rules_resumable(
        pooled,
        orig_pos_total,
        covered_pos,
        params,
        budget,
        sink,
        Vec::new(),
        &mut |_| {},
    )
}

/// The full N-phase loop with checkpoint/resume hooks: `seed` rules are
/// **replayed** — their DL bookkeeping, recall sacrifice and coverage
/// removal folded in the original `+=` order without re-searching, plus one
/// budget rule charge each — before the covering loop continues live, and
/// `on_rule` is invoked with the accepted-so-far rule list after every
/// *new* (non-seed) acceptance.
///
/// Seed rules are the **pre-MDL-truncation** accepted list (checkpoints
/// are written inside the loop, before truncation runs); replay rebuilds
/// the DL trace bit-exactly, so the final truncation of a resumed phase
/// matches the uninterrupted run. Callers resuming under a
/// [`BudgetTracker`] must pre-charge the checkpointed candidate count
/// themselves (see [`crate::fit_checkpoint`]).
#[allow(clippy::too_many_arguments)]
pub fn learn_n_rules_resumable(
    pooled: &TaskView<'_>,
    orig_pos_total: f64,
    covered_pos: f64,
    params: &PnruleParams,
    budget: Option<&Arc<BudgetTracker>>,
    sink: &Arc<dyn TelemetrySink>,
    seed: Vec<NRule>,
    on_rule: &mut dyn FnMut(&[NRule]),
) -> NPhaseResult {
    let _phase_span = Span::enter(sink.as_ref(), SpanKind::NPhase, "n_phase");
    params.validate();
    let mut result = NPhaseResult::default();
    let mut retained_pos = covered_pos;
    if pooled.is_empty() || pooled.pos_weight() <= 0.0 {
        result.retained_recall = if orig_pos_total > 0.0 {
            retained_pos / orig_pos_total
        } else {
            0.0
        };
        return result;
    }

    let n_possible = count_possible_conditions(pooled.data);
    let n_view_total = pooled.total_weight();
    let fp_total = pooled.pos_weight();
    // The DL prices the N-rule set over *its own learning task* — the pool
    // (the same convention RIPPER applies to its task): the N-union covers
    // `covered` weight of which `covered_orig` is original targets (the
    // theory's false positives), and leaves the not-yet-removed pool FPs
    // uncovered (its false negatives). Pricing over the whole training set
    // instead would code each sacrificed target at the global
    // false-negative frequency (10+ bits against ~1 bit per removed FP on
    // a majority-FP pool), making the DL rise through every good N-rule
    // and the truncation below erase the phase's work.
    let mut lens: Vec<usize> = Vec::new();
    let mut dl = total_dl(n_possible, &lens, 0.0, n_view_total, 0.0, fp_total);
    let mut min_dl = dl;
    result.dl_trace.push(dl);

    let mut remaining = pooled.clone();
    // Aggregate exception bookkeeping for the DL of the growing rule set.
    let mut covered = 0.0; // total weight covered by accepted N-rules
    let mut covered_orig = 0.0; // original-target weight they sacrifice
    let mut removed_fp = 0.0; // false-positive weight they remove

    result.stop_reason = if params.max_n_rules == 0 {
        StopReason::RuleCap
    } else {
        StopReason::Exhausted
    };

    // --- Replay checkpointed rules (no search, no callback): identical
    // float operations in identical order rebuild the DL trace and recall
    // state bit-exactly. ---
    let mut replay_stopped = false;
    for seeded in seed {
        lens.push(seeded.rule.len());
        covered += seeded.stats.total; // lint:allow(unordered-float-sum) — sequential rule-order accumulation (replay)
        covered_orig += seeded.stats.neg(); // lint:allow(unordered-float-sum) — sequential rule-order accumulation (replay)
        removed_fp += seeded.stats.pos; // lint:allow(unordered-float-sum) — sequential rule-order accumulation (replay)
        dl = total_dl(
            n_possible,
            &lens,
            covered,
            approx::clamp_mass(n_view_total - covered),
            approx::clamp_mass(covered_orig),
            approx::clamp_mass(fp_total - removed_fp),
        );
        result.dl_trace.push(dl);
        min_dl = min_dl.min(dl);
        retained_pos -= seeded.stats.neg();
        let covered_rows = remaining.rows_matching_rule(&seeded.rule);
        result.rules.push(seeded);
        remaining = remaining.without(&covered_rows);
        if budget.is_some_and(|b| !b.charge_rule()) {
            // The original run stopped right here too: the replayed rule
            // was its last.
            result.stop_reason = StopReason::BudgetExhausted;
            replay_stopped = true;
            break;
        }
    }

    while !replay_stopped && remaining.pos_weight() > 0.0 {
        if result.rules.len() >= params.max_n_rules {
            result.stop_reason = StopReason::RuleCap;
            break;
        }
        if budget.is_some_and(|b| b.is_exhausted() || !b.check_deadline()) {
            // Covers a budget already spent by the P-phase as well as one
            // that runs out between N-rules.
            result.stop_reason = StopReason::BudgetExhausted;
            break;
        }
        // The floor binds the N-phase's *sacrifice*, not the recall the
        // P-phase never achieved: when coverage already sits below `rn`,
        // the effective floor is the achieved recall (only zero-sacrifice
        // rules may enter).
        let achieved = if orig_pos_total > 0.0 {
            covered_pos / orig_pos_total
        } else {
            1.0
        };
        let guard = RecallGuard {
            retained_pos,
            orig_pos_total,
            min_recall: params.rn.min(achieved),
        };
        let opts = GrowOptions {
            metric: params.metric,
            max_len: params.max_n_rule_len,
            min_support_weight: 0.0,
            use_ranges: params.use_ranges,
            min_improvement: params.min_improvement,
            recall_guard: Some(guard),
            budget: budget.cloned(),
            sink: sink.clone(),
            search_workers: params.search_workers,
            row_shards: params.row_shards,
        };
        // Label formatting is gated so the disabled path allocates nothing
        // per rule.
        let label = if sink.enabled() {
            format!("n{}", result.rules.len())
        } else {
            String::new()
        };
        let grown = {
            let _grow_span = Span::enter(sink.as_ref(), SpanKind::NRuleGrow, &label);
            grow_rule(&remaining, &opts)
        };
        let Some(mut grown) = grown else {
            result.stop_reason = if budget.is_some_and(|b| b.is_exhausted()) {
                StopReason::BudgetExhausted
            } else {
                StopReason::NoRuleGrown
            };
            break;
        };
        if grown.stats.neg() > 0.0 {
            // The metric's rule spends recall budget. Also grow a
            // precision-first candidate (Laplace accuracy, no improvement
            // tolerance — it refines towards the narrow pure rules the
            // recall floor favours) and keep whichever removes more false
            // positives per sacrificed target: the floor caps the phase's
            // *total* sacrifice, so budget efficiency — not the per-rule
            // metric — decides how many false positives the phase can
            // remove before the floor ends it. Without this a single
            // irredeemably broad candidate would end the phase with false
            // positives left on the table.
            let fallback = GrowOptions {
                metric: pnr_rules::EvalMetric::Laplace,
                min_improvement: 0.0,
                ..opts
            };
            let alt = {
                let fallback_label = if sink.enabled() {
                    format!("{label}.fallback")
                } else {
                    String::new()
                };
                let _grow_span = Span::enter(sink.as_ref(), SpanKind::NRuleGrow, &fallback_label);
                grow_rule(&remaining, &fallback)
            };
            if let Some(alt) = alt {
                // FPs removed per unit of recall budget, with a +1 prior so
                // a tiny pure rule does not dominate a broad near-pure one.
                let efficiency = |g: &crate::grow::GrownRule| g.stats.pos / (g.stats.neg() + 1.0);
                let alt_ok = !guard.violated_by(alt.stats.neg());
                let grown_ok = !guard.violated_by(grown.stats.neg());
                if alt_ok && (!grown_ok || efficiency(&alt) > efficiency(&grown)) {
                    grown = alt;
                }
            }
            if guard.violated_by(grown.stats.neg()) {
                result.stop_reason = StopReason::RecallFloor;
                break;
            }
        }
        if grown.stats.pos <= 0.0 || grown.stats.accuracy() <= remaining.prior() {
            result.stop_reason = StopReason::LowAccuracy;
            break;
        }
        // Price the final classifier with this rule added. The phase keeps
        // growing past local DL increases — a single weak rule must not end
        // it while good rules remain — and the rule list is truncated to
        // the DL-optimal prefix (within the slack) afterwards.
        lens.push(grown.rule.len());
        covered += grown.stats.total; // lint:allow(unordered-float-sum) — sequential rule-order accumulation
        covered_orig += grown.stats.neg(); // lint:allow(unordered-float-sum) — sequential rule-order accumulation
        removed_fp += grown.stats.pos; // lint:allow(unordered-float-sum) — sequential rule-order accumulation
                                       // The exception masses are differences of float weight sums and can
                                       // land a few ulps below zero for pure rules; clamp before coding.
        dl = total_dl(
            n_possible,
            &lens,
            covered,
            approx::clamp_mass(n_view_total - covered),
            approx::clamp_mass(covered_orig), // sacrificed targets the N-union covers
            approx::clamp_mass(fp_total - removed_fp), // surviving false positives
        );
        result.dl_trace.push(dl);
        min_dl = min_dl.min(dl);
        retained_pos -= grown.stats.neg();
        let covered_rows = remaining.rows_matching_rule(&grown.rule);
        result.rules.push(NRule {
            rule: grown.rule,
            stats: grown.stats,
        });
        remaining = remaining.without(&covered_rows);
        on_rule(&result.rules);
        if budget.is_some_and(|b| !b.charge_rule()) {
            // The crossing rule is valid and kept; stop growing more.
            result.stop_reason = StopReason::BudgetExhausted;
            break;
        }
    }

    // MDL truncation: keep the longest prefix whose final DL is within the
    // slack of the minimum along the trace (dl_trace[0] is the empty
    // theory, dl_trace[k] the DL after rule k).
    let keep = result
        .dl_trace
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &d)| d <= min_dl + params.mdl_slack_bits)
        .map(|(i, _)| i)
        .unwrap_or(0);
    if keep < result.rules.len() {
        result.mdl_truncated = result.rules.len() - keep;
        for dropped in &result.rules[keep..] {
            retained_pos += dropped.stats.neg();
        }
        result.rules.truncate(keep);
        result.dl_trace.truncate(keep + 1);
        if result.stop_reason == StopReason::Exhausted {
            result.stop_reason = StopReason::MdlStop;
        }
        if sink.enabled() {
            sink.add(Counter::MdlPrunes, result.mdl_truncated as u64);
        }
    }
    // DL non-increase: the kept prefix must price within the slack of the
    // final (untruncated) theory — `dl` still holds the last traced value.
    #[cfg(feature = "audit")]
    if let Some(&dl_kept) = result.dl_trace.last() {
        pnr_data::audit::check_dl_truncation(
            "N-phase MDL truncation",
            dl,
            dl_kept,
            params.mdl_slack_bits,
        );
    }

    result.retained_recall = if orig_pos_total > 0.0 {
        retained_pos / orig_pos_total
    } else {
        0.0
    };
    result
}

/// Computes the pooled N-view ingredients from P-rule coverage.
///
/// Given the full-data view of the original task and the union of P-rule
/// coverage, returns the flipped positive flags for the N-task (true =
/// false positive of the pool).
pub fn flip_targets(is_pos: &[bool]) -> Vec<bool> {
    is_pos.iter().map(|&p| !p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, Dataset, DatasetBuilder, RowSet, Value};

    /// A pooled set where false positives carry a clean signature (y ≤ 1)
    /// and true positives live elsewhere.
    fn pooled_data() -> (Dataset, Vec<bool>) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("y", AttrType::Numeric);
        b.add_class("fp");
        b.add_class("tp");
        for i in 0..200 {
            let y = (i % 10) as f64;
            let class = if y <= 1.0 { "fp" } else { "tp" };
            b.push_row(&[Value::num(y)], class, 1.0).unwrap();
        }
        let d = b.finish();
        let is_fp: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        (d, is_fp)
    }

    #[test]
    fn removes_clean_false_positive_signature() {
        let (d, is_fp) = pooled_data();
        let v = TaskView::full(&d, &is_fp, d.weights());
        let orig_pos_total = v.total_weight() - v.pos_weight(); // 160 targets
        let res = learn_n_rules(&v, orig_pos_total, orig_pos_total, &PnruleParams::default());
        assert!(!res.rules.is_empty(), "should find the FP signature");
        // the signature is pure: recall must be fully retained
        assert!(
            (res.retained_recall - 1.0).abs() < 1e-9,
            "recall {}",
            res.retained_recall
        );
        let removed: f64 = res.rules.iter().map(|r| r.stats.pos).sum();
        assert_eq!(removed, 40.0, "all FPs removed");
    }

    #[test]
    fn no_false_positives_means_no_rules() {
        let (d, _) = pooled_data();
        let none = vec![false; d.n_rows()];
        let v = TaskView::full(&d, &none, d.weights());
        let res = learn_n_rules(&v, 200.0, 200.0, &PnruleParams::default());
        assert!(res.rules.is_empty());
        assert_eq!(res.retained_recall, 1.0);
    }

    #[test]
    fn empty_pool_returns_empty_result() {
        let (d, is_fp) = pooled_data();
        let v = TaskView::over(&d, RowSet::empty(), &is_fp, d.weights());
        let res = learn_n_rules(&v, 100.0, 0.0, &PnruleParams::default());
        assert!(res.rules.is_empty());
        assert_eq!(res.retained_recall, 0.0);
    }

    #[test]
    fn recall_floor_is_respected() {
        // FPs overlap targets: any single-attribute rule removing FPs also
        // sacrifices targets. With a high rn the phase must hold back.
        let mut b = DatasetBuilder::new();
        b.add_attribute("y", AttrType::Numeric);
        b.add_class("fp");
        b.add_class("tp");
        for i in 0..100 {
            let y = (i % 4) as f64;
            // y==0: 60% fp, 40% tp — impure signature
            let class = if i % 4 == 0 && i % 5 < 3 { "fp" } else { "tp" };
            b.push_row(&[Value::num(y)], class, 1.0).unwrap();
        }
        let d = b.finish();
        let is_fp: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        let v = TaskView::full(&d, &is_fp, d.weights());
        let orig = v.total_weight() - v.pos_weight();
        let strict = PnruleParams {
            rn: 0.99,
            ..Default::default()
        };
        let res = learn_n_rules(&v, orig, orig, &strict);
        assert!(
            res.retained_recall >= 0.99 - 1e-9,
            "retained recall {} under floor",
            res.retained_recall
        );
    }

    #[test]
    fn lax_recall_floor_removes_more() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("y", AttrType::Numeric);
        b.add_class("fp");
        b.add_class("tp");
        for i in 0..100 {
            let y = (i % 4) as f64;
            let class = if i % 4 == 0 && i % 5 < 3 { "fp" } else { "tp" };
            b.push_row(&[Value::num(y)], class, 1.0).unwrap();
        }
        let d = b.finish();
        let is_fp: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        let v = TaskView::full(&d, &is_fp, d.weights());
        let orig = v.total_weight() - v.pos_weight();
        let lax = PnruleParams {
            rn: 0.5,
            ..Default::default()
        };
        let strict = PnruleParams {
            rn: 0.999,
            ..Default::default()
        };
        let res_lax = learn_n_rules(&v, orig, orig, &lax);
        let res_strict = learn_n_rules(&v, orig, orig, &strict);
        let removed = |r: &NPhaseResult| r.rules.iter().map(|n| n.stats.pos).sum::<f64>();
        assert!(
            removed(&res_lax) >= removed(&res_strict),
            "lax {} vs strict {}",
            removed(&res_lax),
            removed(&res_strict)
        );
    }

    #[test]
    fn rule_cap_stop_survives_mdl_truncation() {
        // One broad pure FP block (worth its description length) followed by
        // two near-weightless stragglers whose removal saves almost no data
        // bits: with zero slack the MDL truncation drops the straggler rule,
        // while the rule cap — not exhaustion — ends the loop. The reported
        // stop reason must keep saying RuleCap, with the truncation counted
        // separately in `mdl_truncated`.
        let mut b = DatasetBuilder::new();
        b.add_attribute("y", AttrType::Numeric);
        b.add_class("fp");
        b.add_class("tp");
        for _ in 0..40 {
            b.push_row(&[Value::num(0.0)], "fp", 1.0).unwrap();
        }
        for i in 0..400 {
            b.push_row(&[Value::num(1.0 + (i % 8) as f64)], "tp", 1.0)
                .unwrap();
        }
        // Stragglers isolated from each other by targets at y = 10.
        b.push_row(&[Value::num(9.0)], "fp", 0.01).unwrap();
        for _ in 0..10 {
            b.push_row(&[Value::num(10.0)], "tp", 1.0).unwrap();
        }
        b.push_row(&[Value::num(11.0)], "fp", 0.01).unwrap();
        let d = b.finish();
        let is_fp: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        let v = TaskView::full(&d, &is_fp, d.weights());
        let orig = v.total_weight() - v.pos_weight();
        let params = PnruleParams {
            max_n_rules: 2,
            mdl_slack_bits: 0.0,
            ..Default::default()
        };
        let res = learn_n_rules(&v, orig, orig, &params);
        assert_eq!(
            res.stop_reason,
            StopReason::RuleCap,
            "the loop reason must not be rewritten by truncation"
        );
        assert!(
            res.mdl_truncated >= 1,
            "the straggler rule should be truncated"
        );
        assert_eq!(
            res.rules.len() + res.mdl_truncated,
            2,
            "cap accepted two rules before truncation"
        );
        assert!(
            res.rules.iter().map(|r| r.stats.pos).sum::<f64>() >= 40.0,
            "the broad block rule survives"
        );
    }

    #[test]
    fn flip_targets_inverts_flags() {
        assert_eq!(flip_targets(&[true, false, true]), vec![false, true, false]);
    }
}
