//! The trained PNrule model and its classification strategy.

use crate::scoring::ScoreMatrix;
use pnr_data::{Dataset, Schema};
use pnr_rules::{BinaryClassifier, RuleSet};
use serde::{Deserialize, Serialize};

/// A trained two-phase model (section 2.3).
///
/// Classification of an unseen record: P-rules are applied in rank order;
/// if none applies the prediction is False with score 0. The first P-rule
/// that applies is accepted, then N-rules are applied in rank order (with
/// an implicit default N-rule when none applies), and the record's score is
/// the ScoreMatrix entry for that (P-rule, N-rule) combination. The binary
/// decision thresholds the score (usually at 50%).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PnruleModel {
    /// Class code of the target class in the training schema.
    pub target: u32,
    /// Decision threshold on the score.
    pub threshold: f64,
    /// Ranked P-rules.
    pub p_rules: RuleSet,
    /// Ranked N-rules.
    pub n_rules: RuleSet,
    /// The scoring mechanism.
    pub score_matrix: ScoreMatrix,
}

/// Which rules fired for a record — the model's explanation of a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleTrace {
    /// Index of the first matching P-rule (`None` = no P-rule applied).
    pub p_rule: Option<usize>,
    /// Index of the first matching N-rule (`None` = default N-rule or no
    /// P-rule applied).
    pub n_rule: Option<usize>,
}

impl PnruleModel {
    /// Score *and* explanation of `row` from a single first-match sweep of
    /// the rule lists. Callers that need both the decision and the firing
    /// rules (error analysis, tracing UIs) use this instead of calling
    /// [`score`](BinaryClassifier::score) and [`Self::trace`] separately —
    /// those would each walk the P- and N-rule lists again.
    pub fn score_with_trace(&self, data: &Dataset, row: usize) -> (f64, RuleTrace) {
        match self.p_rules.first_match(data, row) {
            None => (
                0.0,
                RuleTrace {
                    p_rule: None,
                    n_rule: None,
                },
            ),
            Some(pi) => {
                let nj = self.n_rules.first_match(data, row);
                (
                    self.score_matrix.score(pi, nj),
                    RuleTrace {
                        p_rule: Some(pi),
                        n_rule: nj,
                    },
                )
            }
        }
    }

    /// The rules that fire for `row`.
    pub fn trace(&self, data: &Dataset, row: usize) -> RuleTrace {
        self.score_with_trace(data, row).1
    }

    /// Multi-line human-readable rendering of the model.
    pub fn describe(&self, schema: &Schema) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "PNrule model: {} P-rules, {} N-rules, threshold {}\n",
            self.p_rules.len(),
            self.n_rules.len(),
            self.threshold
        ));
        s.push_str("P-rules (presence of target):\n");
        s.push_str(&self.p_rules.display_lines(schema));
        s.push_str("N-rules (absence of target):\n");
        s.push_str(&self.n_rules.display_lines(schema));
        s
    }
}

impl BinaryClassifier for PnruleModel {
    fn score(&self, data: &Dataset, row: usize) -> f64 {
        self.score_with_trace(data, row).0
    }

    fn predict(&self, data: &Dataset, row: usize) -> bool {
        self.score(data, row) > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};
    use pnr_rules::{Condition, Rule};

    fn model_and_data() -> (PnruleModel, Dataset) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("y", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        // P-rule: x <= 5. N-rule: y > 0. Targets: x<=5 && y<=0.
        for i in 0..40 {
            let x = (i % 10) as f64;
            let y = (i % 2) as f64;
            let target = x <= 5.0 && i % 2 == 0;
            b.push_row(
                &[Value::num(x), Value::num(y)],
                if target { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        let p_rules = RuleSet::from_rules(vec![Rule::new(vec![Condition::NumLe {
            attr: 0,
            value: 5.0,
        }])]);
        let n_rules = RuleSet::from_rules(vec![Rule::new(vec![Condition::NumGt {
            attr: 1,
            value: 0.0,
        }])]);
        let sm = ScoreMatrix::build(&d, &is_pos, &p_rules, &n_rules, 1.0);
        let model = PnruleModel {
            target: 0,
            threshold: 0.5,
            p_rules,
            n_rules,
            score_matrix: sm,
        };
        (model, d)
    }

    #[test]
    fn classification_follows_p_and_not_n() {
        let (model, d) = model_and_data();
        for row in 0..d.n_rows() {
            let expected = d.label(row) == 0;
            assert_eq!(model.predict(&d, row), expected, "row {row}");
        }
    }

    #[test]
    fn no_p_match_scores_zero() {
        let (model, d) = model_and_data();
        // find a row with x > 5
        let row = (0..d.n_rows()).find(|&r| d.num(0, r) > 5.0).unwrap();
        assert_eq!(model.score(&d, row), 0.0);
        assert_eq!(
            model.trace(&d, row),
            RuleTrace {
                p_rule: None,
                n_rule: None
            }
        );
    }

    #[test]
    fn trace_reports_first_matches() {
        let (model, d) = model_and_data();
        let pos_row = (0..d.n_rows()).find(|&r| d.label(r) == 0).unwrap();
        let t = model.trace(&d, pos_row);
        assert_eq!(t.p_rule, Some(0));
        assert_eq!(t.n_rule, None, "targets have y=0, the N-rule must not fire");
        let fp_row = (0..d.n_rows())
            .find(|&r| d.num(0, r) <= 5.0 && d.num(1, r) > 0.0)
            .unwrap();
        let t = model.trace(&d, fp_row);
        assert_eq!(t.n_rule, Some(0));
    }

    #[test]
    fn describe_lists_rules() {
        let (model, d) = model_and_data();
        let s = model.describe(d.schema());
        assert!(s.contains("1 P-rules"));
        assert!(s.contains("x <= 5"));
        assert!(s.contains("y > 0"));
    }

    #[test]
    fn score_with_trace_agrees_with_score_and_trace() {
        // Regression: score and trace used to run separate first_match
        // sweeps; the single-pass path must report exactly what the two
        // individual calls report, on every row (matched by P only, by
        // P and N, and by neither).
        let (model, d) = model_and_data();
        for row in 0..d.n_rows() {
            let (s, t) = model.score_with_trace(&d, row);
            assert_eq!(s, model.score(&d, row), "row {row}");
            assert_eq!(t, model.trace(&d, row), "row {row}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let (model, d) = model_and_data();
        let json = serde_json::to_string(&model).unwrap();
        let back: PnruleModel = serde_json::from_str(&json).unwrap();
        for row in 0..d.n_rows() {
            assert_eq!(back.score(&d, row), model.score(&d, row));
        }
    }
}
