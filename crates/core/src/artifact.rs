//! Versioned, checksummed on-disk model artifacts.
//!
//! A [`ModelArtifact`] bundles everything needed to score new data long
//! after the training run is gone: the format version, the learner
//! parameters, the fit diagnostics, the trained model and a full schema
//! descriptor (attribute names, types and every categorical dictionary).
//! The file layout is a plain-text integrity envelope around a JSON
//! payload:
//!
//! ```text
//! <16 lowercase hex digits: FNV-1a 64 of everything after this line>\n
//! pnrule-artifact v<format version>\n
//! <compact JSON of the artifact body>
//! ```
//!
//! The checksum is verified *first* and covers the whole payload,
//! including the magic/version line — so flipping any single byte of a
//! saved artifact surfaces as [`ArtifactError::ChecksumMismatch`], never
//! as a panic, a JSON parse error or a silently different model.
//! [`ArtifactError::UnsupportedVersion`] is only reachable through an
//! intact file whose checksum verifies.
//!
//! Writes are atomic (tmp + rename, the checkpoint-store convention), so
//! a crash mid-save leaves either the old artifact or none at all.

use crate::learn::FitReport;
use crate::model::PnruleModel;
use crate::params::PnruleParams;
use pnr_data::fingerprint::fnv1a_64;
use pnr_data::{AttrType, Schema};
use pnr_rules::Condition;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The artifact format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Magic prefix of the payload's first line.
const MAGIC: &str = "pnrule-artifact v";

/// Why an artifact failed to load. Display strings start with the variant
/// name so scripts can classify failures by grepping stderr.
#[derive(Debug)]
pub enum ArtifactError {
    /// The stored checksum does not match the payload (or the checksum
    /// line itself is damaged): the file was corrupted after writing.
    ChecksumMismatch,
    /// The file is intact but written by an unknown (newer) format
    /// version.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// Incoming data cannot be reconciled against the stored schema.
    SchemaMismatch {
        /// Human-readable description of the incompatibility.
        detail: String,
    },
    /// The file is not a well-formed artifact (bad magic, invalid JSON,
    /// or internally inconsistent content).
    Malformed {
        /// What exactly is wrong.
        detail: String,
    },
    /// The model holds a non-finite numeric threshold (NaN or ±∞). JSON
    /// has no representation for these — serde renders them as `null` —
    /// so a saved artifact would silently fail to reload (or worse,
    /// change meaning); saving is refused instead.
    NonFiniteThreshold {
        /// Which rule list, `"P"` or `"N"`.
        list: &'static str,
        /// Rank of the offending rule.
        rule: usize,
    },
    /// The file could not be read or written.
    Io(io::Error),
    /// A bounded retry loop exhausted its attempts on transient I/O
    /// failures; `last` is the error of the final attempt.
    RetriesExhausted {
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The error of the last attempt.
        last: Box<ArtifactError>,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::ChecksumMismatch => write!(
                f,
                "ChecksumMismatch: artifact checksum does not match its payload \
                 (the file was corrupted after writing)"
            ),
            ArtifactError::UnsupportedVersion { found } => write!(
                f,
                "UnsupportedVersion: artifact format v{found} is newer than the \
                 supported v{FORMAT_VERSION}"
            ),
            ArtifactError::SchemaMismatch { detail } => {
                write!(f, "SchemaMismatch: {detail}")
            }
            ArtifactError::Malformed { detail } => write!(f, "Malformed: {detail}"),
            ArtifactError::NonFiniteThreshold { list, rule } => write!(
                f,
                "NonFiniteThreshold: {list}-rule {rule} holds a NaN or infinite \
                 numeric threshold, which a JSON artifact cannot represent"
            ),
            ArtifactError::Io(e) => write!(f, "Io: {e}"),
            ArtifactError::RetriesExhausted { attempts, last } => write!(
                f,
                "RetriesExhausted: gave up after {attempts} attempt(s); last error: {last}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Provenance of a refit artifact: which artifact it was refit from,
/// which serving-stat window triggered the refit, and the drift verdict
/// that signalled it. Absent (`None`) on artifacts trained from scratch;
/// `#[serde(default)]` keeps every pre-lineage artifact loadable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactLineage {
    /// Envelope checksum (16 lowercase hex digits) of the parent artifact
    /// file this model was refit from. The daemon's hot-swap refuses a
    /// lineaged candidate whose parent is not the artifact it is serving.
    pub parent_checksum: String,
    /// Id of the drift window that triggered the refit.
    pub window_id: u64,
    /// The drift verdict that signalled the refit (normally `"refit"`).
    pub verdict: String,
}

/// The serialized body of an artifact (everything under the envelope).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArtifactBody {
    params: PnruleParams,
    report: FitReport,
    model: PnruleModel,
    schema: Schema,
    /// Fingerprint of `schema` at save time; cross-checked on load so an
    /// internally inconsistent writer cannot slip through the envelope.
    schema_fingerprint: u64,
    /// Name of the target class (`schema.classes` code `model.target`),
    /// stored redundantly for human inspection of the raw file.
    target_class: String,
    /// Refit provenance; absent on from-scratch artifacts and on files
    /// written before lineage existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    lineage: Option<ArtifactLineage>,
}

/// A trained PNrule model plus everything needed to score new data
/// against it: learner parameters, fit diagnostics and the full training
/// schema.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// Learner parameters the model was trained with.
    pub params: PnruleParams,
    /// Diagnostics of the fit that produced the model.
    pub report: FitReport,
    /// The trained model.
    pub model: PnruleModel,
    /// The training schema: attribute names, types, category dictionaries
    /// and class labels. Serving-time reconciliation is driven by this.
    pub schema: Schema,
    /// Refit provenance (parent checksum, window id, verdict); `None` for
    /// models trained from scratch.
    pub lineage: Option<ArtifactLineage>,
}

impl ModelArtifact {
    /// Bundles a trained model with its provenance. The schema must be
    /// the one the model was trained against; this is checked (conditions
    /// must reference valid attributes and dictionary codes) so an
    /// artifact can never be *saved* in a state that would fail to load.
    pub fn new(
        model: PnruleModel,
        params: PnruleParams,
        report: FitReport,
        schema: Schema,
    ) -> Result<Self, ArtifactError> {
        let artifact = ModelArtifact {
            params,
            report,
            model,
            schema,
            lineage: None,
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Attaches refit provenance (builder-style).
    pub fn with_lineage(mut self, lineage: ArtifactLineage) -> Self {
        self.lineage = Some(lineage);
        self
    }

    /// Name of the target class in the stored schema.
    pub fn target_class(&self) -> &str {
        self.schema.classes.name(self.model.target)
    }

    /// The envelope checksum (16 lowercase hex digits) this artifact
    /// would carry on disk — the digest a child refit records as its
    /// `parent_checksum`.
    pub fn checksum(&self) -> Result<String, ArtifactError> {
        let text = self.to_file_string()?;
        match text.split_once('\n') {
            Some((line, _)) => Ok(line.to_string()),
            None => Err(ArtifactError::Malformed {
                detail: "rendered artifact has no envelope line".to_string(),
            }),
        }
    }

    /// Fingerprint of the stored schema (see [`Schema::fingerprint`]).
    pub fn schema_fingerprint(&self) -> u64 {
        self.schema.fingerprint()
    }

    /// Checks internal consistency: every rule condition must reference
    /// an in-range attribute of the right type (with an in-dictionary
    /// code for categorical equalities) and carry only finite numeric
    /// thresholds, the score matrix must be sized for the rule lists,
    /// and the target class must exist.
    fn validate(&self) -> Result<(), ArtifactError> {
        let malformed = |detail: String| ArtifactError::Malformed { detail };
        let target = usize::try_from(self.model.target)
            .map_err(|_| malformed("target class code does not fit usize".to_string()))?;
        if target >= self.schema.n_classes() {
            return Err(malformed(format!(
                "target class code {target} out of range for {} classes",
                self.schema.n_classes()
            )));
        }
        for (list, rules) in [
            ("P", self.model.p_rules.rules()),
            ("N", self.model.n_rules.rules()),
        ] {
            for (ri, rule) in rules.iter().enumerate() {
                for cond in rule.conditions() {
                    let attr = cond.attr();
                    if attr >= self.schema.n_attrs() {
                        return Err(malformed(format!(
                            "{list}-rule {ri} references attribute {attr} but the \
                             schema has {} attributes",
                            self.schema.n_attrs()
                        )));
                    }
                    let a = self.schema.attr(attr);
                    match *cond {
                        Condition::CatEq { value, .. } => {
                            if a.ty != AttrType::Categorical {
                                return Err(malformed(format!(
                                    "{list}-rule {ri} tests category equality on \
                                     numeric attribute `{}`",
                                    a.name
                                )));
                            }
                            let code = usize::try_from(value).map_err(|_| {
                                malformed("dictionary code does not fit usize".to_string())
                            })?;
                            if code >= a.dict.len() {
                                return Err(malformed(format!(
                                    "{list}-rule {ri} references code {code} of \
                                     attribute `{}` but its dictionary has {} values",
                                    a.name,
                                    a.dict.len()
                                )));
                            }
                        }
                        Condition::NumLe { value, .. } | Condition::NumGt { value, .. } => {
                            if a.ty != AttrType::Numeric {
                                return Err(malformed(format!(
                                    "{list}-rule {ri} tests a numeric threshold on \
                                     categorical attribute `{}`",
                                    a.name
                                )));
                            }
                            if !value.is_finite() {
                                return Err(ArtifactError::NonFiniteThreshold { list, rule: ri });
                            }
                        }
                        Condition::NumRange { lo, hi, .. } => {
                            if a.ty != AttrType::Numeric {
                                return Err(malformed(format!(
                                    "{list}-rule {ri} tests a numeric threshold on \
                                     categorical attribute `{}`",
                                    a.name
                                )));
                            }
                            if !(lo.is_finite() && hi.is_finite()) {
                                return Err(ArtifactError::NonFiniteThreshold { list, rule: ri });
                            }
                        }
                    }
                }
            }
        }
        let sm = &self.model.score_matrix;
        if sm.n_p() != self.model.p_rules.len() || sm.n_n() != self.model.n_rules.len() {
            return Err(malformed(format!(
                "score matrix is {}x{} but the model has {} P-rules and {} N-rules",
                sm.n_p(),
                sm.n_n(),
                self.model.p_rules.len(),
                self.model.n_rules.len()
            )));
        }
        Ok(())
    }

    /// Renders the artifact to its on-disk text form: checksum line,
    /// magic/version line, compact JSON body.
    ///
    /// Validates first — the fields are public, so an artifact assembled
    /// without [`Self::new`] could otherwise write a file that fails to
    /// load. In particular a non-finite numeric threshold is refused here
    /// ([`ArtifactError::NonFiniteThreshold`]) because JSON would render
    /// it as `null` and the round-trip would fail only at load time.
    pub fn to_file_string(&self) -> Result<String, ArtifactError> {
        self.validate()?;
        let body = ArtifactBody {
            params: self.params.clone(),
            report: self.report.clone(),
            model: self.model.clone(),
            schema: self.schema.clone(),
            schema_fingerprint: self.schema.fingerprint(),
            target_class: self.target_class().to_string(),
            lineage: self.lineage.clone(),
        };
        let json = serde_json::to_string(&body).map_err(|e| ArtifactError::Malformed {
            detail: format!("artifact body failed to serialize: {e}"),
        })?;
        let payload = format!("{MAGIC}{FORMAT_VERSION}\n{json}");
        Ok(format!("{:016x}\n{payload}", fnv1a_64(payload.as_bytes())))
    }

    /// Parses an artifact from raw file bytes. Corruption that breaks
    /// the UTF-8 encoding is still a checksum question, not an encoding
    /// question: the envelope is verified over the raw payload bytes, so
    /// a flipped high bit reports [`ArtifactError::ChecksumMismatch`]
    /// exactly like any other flipped bit.
    pub fn from_file_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        match std::str::from_utf8(bytes) {
            Ok(text) => Self::from_file_str(text),
            Err(_) => {
                if Self::envelope_verifies(bytes) {
                    // unreachable for files written by `save` (which only
                    // writes UTF-8), but classify it honestly
                    Err(ArtifactError::Malformed {
                        detail: "artifact payload is not valid UTF-8".to_string(),
                    })
                } else {
                    Err(ArtifactError::ChecksumMismatch)
                }
            }
        }
    }

    /// Whether `bytes` carry a well-formed checksum line whose value
    /// matches the digest of the remaining payload bytes.
    fn envelope_verifies(bytes: &[u8]) -> bool {
        let Some(pos) = bytes.iter().position(|&b| b == b'\n') else {
            return false;
        };
        let (line, payload) = (&bytes[..pos], &bytes[pos + 1..]);
        let strict_hex = line.len() == 16
            && line
                .iter()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(b));
        if !strict_hex {
            return false;
        }
        let Ok(line) = std::str::from_utf8(line) else {
            return false;
        };
        matches!(u64::from_str_radix(line, 16), Ok(v) if v == fnv1a_64(payload))
    }

    /// Parses an artifact from its on-disk text form. See the module docs
    /// for the exact error taxonomy; this never panics on any input.
    pub fn from_file_str(text: &str) -> Result<Self, ArtifactError> {
        let malformed = |detail: &str| ArtifactError::Malformed {
            detail: detail.to_string(),
        };
        if text.is_empty() {
            return Err(malformed("artifact file is empty"));
        }
        // 1. Integrity envelope: first line must be 16 hex digits whose
        //    value matches the digest of everything after the newline. A
        //    damaged checksum line is itself a checksum mismatch — the
        //    envelope cannot be verified.
        let (checksum_line, payload) = match text.split_once('\n') {
            Some(parts) => parts,
            None => return Err(ArtifactError::ChecksumMismatch),
        };
        let strict_hex = checksum_line.len() == 16
            && checksum_line
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
        let stored = match u64::from_str_radix(checksum_line, 16) {
            // require exactly the 16 lowercase digits we write, so a case
            // flip inside the checksum line cannot load silently
            Ok(v) if strict_hex => v,
            _ => return Err(ArtifactError::ChecksumMismatch),
        };
        if fnv1a_64(payload.as_bytes()) != stored {
            return Err(ArtifactError::ChecksumMismatch);
        }
        // 2. Magic and version: only reachable with a verified payload.
        let (header, json) = payload
            .split_once('\n')
            .ok_or_else(|| malformed("artifact payload has no body"))?;
        let version_str = header
            .strip_prefix(MAGIC)
            .ok_or_else(|| malformed("artifact payload does not start with the magic line"))?;
        let version: u32 = version_str
            .trim()
            .parse()
            .map_err(|_| malformed("artifact version is not a number"))?;
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion { found: version });
        }
        // 3. Body.
        let mut body: ArtifactBody =
            serde_json::from_str(json).map_err(|e| ArtifactError::Malformed {
                detail: format!("artifact body is not valid JSON: {e}"),
            })?;
        body.schema.rebuild_indexes();
        if body.schema.fingerprint() != body.schema_fingerprint {
            return Err(malformed(
                "stored schema fingerprint does not match the stored schema",
            ));
        }
        let artifact = ModelArtifact {
            params: body.params,
            report: body.report,
            model: body.model,
            schema: body.schema,
            lineage: body.lineage,
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Writes the artifact atomically: the text form goes to
    /// `<path>.tmp`, then a rename makes it visible. Readers never see a
    /// partially written file.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let text = self.to_file_string()?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, text)?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and verifies an artifact from disk.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let bytes = fs::read(path)?;
        Self::from_file_bytes(&bytes)
    }
}

/// Bounded exponential backoff over transient failures (see
/// [`load_with_retry`]). Delays are `base_delay * 2^i`, capped at
/// `max_delay`; the total attempt count is `attempts`. This is a thin
/// un-jittered view over [`crate::retry::Backoff`], kept for the
/// artifact API's stability; new callers wanting jitter should build a
/// `Backoff` directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (including the first); at least 1 is always made.
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_delay: std::time::Duration,
    /// Upper bound on any single delay.
    pub max_delay: std::time::Duration,
}

impl Default for RetryPolicy {
    /// 4 attempts, 10 ms → 20 ms → 40 ms backoff (max 200 ms): long
    /// enough to ride out an editor/publisher replacing the file, short
    /// enough that a hot-swap control command stays interactive.
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: std::time::Duration::from_millis(10),
            max_delay: std::time::Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The equivalent (un-jittered) [`crate::retry::Backoff`] schedule.
    pub fn backoff(&self) -> crate::retry::Backoff {
        crate::retry::Backoff::new(self.attempts, self.base_delay, self.max_delay)
    }

    /// The delay before retry number `i` (0-based), with saturating
    /// exponential growth capped at `max_delay`.
    pub fn delay(&self, i: u32) -> std::time::Duration {
        self.backoff().delay(i)
    }
}

/// Whether an I/O failure is worth retrying: the classes of error that a
/// moment of contention can produce and a moment of patience can cure.
/// Anything else (not found, permission denied, corruption) is
/// deterministic and retried loading would only delay the real report.
pub fn is_transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `op` under `policy`: transient failures (per `transient`) are
/// retried with exponential backoff through [`crate::retry::run`]; the
/// first non-transient failure is returned as-is; exhausting every
/// attempt on transient failures yields
/// [`ArtifactError::RetriesExhausted`] wrapping the last error.
pub fn retry_transient<T>(
    policy: &RetryPolicy,
    transient: impl FnMut(&ArtifactError) -> bool,
    mut op: impl FnMut() -> Result<T, ArtifactError>,
) -> Result<T, ArtifactError> {
    crate::retry::run(&policy.backoff(), transient, |_attempt| op()).map_err(|e| match e {
        crate::retry::RetryError::Fatal(e) => e,
        crate::retry::RetryError::Exhausted { attempts, last } => ArtifactError::RetriesExhausted {
            attempts,
            last: Box::new(last),
        },
    })
}

/// [`ModelArtifact::load`] with bounded retries over *transient* I/O
/// errors ([`is_transient_io`]): interrupted reads, timeouts and
/// would-block conditions back off exponentially per `policy`; a
/// deterministic failure (missing file, corruption, version skew) is
/// reported immediately. This is the load every long-running caller —
/// the serving daemon's hot-swap path and the `predict` binary — goes
/// through, so a busy filesystem cannot fail a swap that one more read
/// would have served.
pub fn load_with_retry(path: &Path, policy: &RetryPolicy) -> Result<ModelArtifact, ArtifactError> {
    retry_transient(
        policy,
        |e| matches!(e, ArtifactError::Io(io) if is_transient_io(io)),
        || ModelArtifact::load(path),
    )
}

/// Reads just the envelope checksum (the first line, 16 lowercase hex
/// digits) of an artifact file, verifying it against the payload first —
/// so the returned digest is a trustworthy identity, not whatever bytes
/// happened to head a corrupt file. This is how swap lineage is checked
/// without deserializing the whole parent artifact.
pub fn file_checksum(path: &Path) -> Result<String, ArtifactError> {
    let bytes = fs::read(path)?;
    if !ModelArtifact::envelope_verifies(&bytes) {
        return Err(ArtifactError::ChecksumMismatch);
    }
    // envelope_verifies guarantees a 16-byte ASCII-hex first line
    match bytes.split(|&b| b == b'\n').next() {
        Some(line) => Ok(String::from_utf8_lossy(line).into_owned()),
        None => Err(ArtifactError::ChecksumMismatch),
    }
}
