//! The serving binaries' process exit-code convention.
//!
//! Every binary that sits between a saved artifact and a caller's data
//! stream (`predict`, `kdd_csv`, `pnr-serve`, `pnr-loadgen`) reports the
//! same three-way outcome, so shell harnesses and CI jobs can classify a
//! failure without scraping stderr:
//!
//! | code | meaning |
//! |------|---------|
//! | [`OK`] (0) | the requested work completed |
//! | [`DATA_FAILURE`] (1) | a well-formed invocation hit unusable data or an unusable model — a corrupt/missing artifact (the typed [`ArtifactError`](crate::ArtifactError) goes to stderr), an unreadable input, a failed write |
//! | [`USAGE`] (2) | the invocation itself is malformed (unknown flag, missing value, out-of-range rate) |
//!
//! The taxonomy mirrors `cargo xtask`'s (0 clean / 1 findings / 2 usage)
//! and is pinned per binary by CLI tests.

/// The requested work completed.
pub const OK: i32 = 0;

/// A well-formed invocation could not be served: unusable artifact,
/// unusable input data, or a failed output write. The typed error is on
/// stderr.
pub const DATA_FAILURE: i32 = 1;

/// The invocation is malformed; usage text is on stderr.
pub const USAGE: i32 = 2;
