//! The shared greedy rule grower used by both phases.
//!
//! A rule starts empty (the most general rule) and gains one conjunctive
//! condition per step. Section 2.2 of the paper specifies the acceptance
//! test for a refinement `R1` of the current rule `R`:
//!
//! * both are scored by the evaluation metric **against the distribution of
//!   the phase's remaining data** (not the shrinking refinement view);
//! * in the P-phase, `R1` is accepted only if its metric beats `R`'s *and*
//!   its support stays above the minimum-support floor;
//! * in the N-phase, a failing `R1` is accepted anyway whenever stopping at
//!   `R` would push retained recall of the original target class below the
//!   user's lower limit `rn` (the [`RecallGuard`]).

use pnr_rules::{
    find_best_condition, BudgetTracker, CovStats, EvalMetric, Rule, SearchOptions, TaskView,
};
use pnr_telemetry::TelemetrySink;
use std::sync::Arc;

/// The N-phase's recall guard (section 2.2): forces further refinement of a
/// rule whose acceptance as-is would cost too much recall.
#[derive(Debug, Clone, Copy)]
pub struct RecallGuard {
    /// Weight of original-target examples still retained (not yet removed
    /// by previously accepted N-rules).
    pub retained_pos: f64,
    /// Weight of the original target class in the whole training set.
    pub orig_pos_total: f64,
    /// The lower recall limit `rn`.
    pub min_recall: f64,
}

impl RecallGuard {
    /// Recall of the original target class if a rule covering
    /// `covered_orig_pos` weight of it were accepted now.
    pub fn recall_after(&self, covered_orig_pos: f64) -> f64 {
        if self.orig_pos_total <= 0.0 {
            return 1.0;
        }
        ((self.retained_pos - covered_orig_pos) / self.orig_pos_total).max(0.0)
    }

    /// Whether accepting such a rule would violate the lower limit.
    pub fn violated_by(&self, covered_orig_pos: f64) -> bool {
        self.recall_after(covered_orig_pos) < self.min_recall
    }
}

/// Options for one call to [`grow_rule`].
#[derive(Debug, Clone)]
pub struct GrowOptions {
    /// Metric scoring candidates and rules.
    pub metric: EvalMetric,
    /// Maximum number of conditions (`None` = unlimited).
    pub max_len: Option<usize>,
    /// Minimum support (total covered weight) every refinement must keep.
    pub min_support_weight: f64,
    /// Search explicit range conditions.
    pub use_ranges: bool,
    /// Relative improvement a refinement must deliver over the current
    /// rule's score to be accepted. The paper accepts any strict
    /// improvement; a small tolerance (default 0.02) suppresses the
    /// overfitting failure mode where growth keeps trimming one or two
    /// stray negatives off an irrelevant attribute for a marginal metric
    /// gain, at the cost of test-time recall.
    pub min_improvement: f64,
    /// When present, the N-phase recall guard. In the N-task the *positive*
    /// class is "false positive of the P-union", so a rule's coverage of
    /// the original target class is its **negative** coverage
    /// (`stats.neg()`).
    pub recall_guard: Option<RecallGuard>,
    /// Optional training-budget tracker: the grow loop stops (keeping the
    /// conditions accepted so far) when the budget's deadline passes or
    /// its candidate limit fires inside the condition search.
    pub budget: Option<Arc<BudgetTracker>>,
    /// Telemetry sink the condition search reports counters to. Write-only:
    /// nothing recorded here ever feeds back into growth decisions.
    pub sink: Arc<dyn TelemetrySink>,
    /// Worker-thread cap forwarded to the condition search (see
    /// [`SearchOptions::max_workers`]): `None` = size-based heuristic,
    /// `Some(1)` = sequential, `Some(k)` = forced threaded path with at
    /// most `k` workers. The learned rule is bit-identical either way.
    pub search_workers: Option<usize>,
    /// Row-shard count forwarded to the condition search (see
    /// [`SearchOptions::row_shards`]): `None` (default) keeps one shard —
    /// the unsharded arithmetic — while `Some(k)` accumulates statistics
    /// over `k` contiguous row chunks merged in shard-index order. The
    /// shard plan, not the worker count, fixes the float grouping, so a
    /// given setting learns the same rule on any machine.
    pub row_shards: Option<usize>,
}

impl GrowOptions {
    /// P-phase style options: improvement-gated growth with a support floor.
    pub fn p_phase(metric: EvalMetric, min_support_weight: f64, use_ranges: bool) -> Self {
        GrowOptions {
            metric,
            max_len: None,
            min_support_weight,
            use_ranges,
            min_improvement: 0.02,
            recall_guard: None,
            budget: None,
            sink: pnr_telemetry::noop(),
            search_workers: None,
            row_shards: None,
        }
    }
}

/// A grown rule with its coverage over the view it was grown on.
#[derive(Debug, Clone)]
pub struct GrownRule {
    /// The rule.
    pub rule: Rule,
    /// Weighted coverage over the growth view.
    pub stats: CovStats,
    /// Metric score against the growth view's distribution.
    pub score: f64,
}

/// Grows one rule over `view`. Returns `None` when not even a first
/// condition satisfying the constraints exists.
pub fn grow_rule(view: &TaskView<'_>, opts: &GrowOptions) -> Option<GrownRule> {
    // The fixed scoring context: the phase's remaining data.
    let ctx = (view.pos_weight(), view.total_weight());
    let search = SearchOptions {
        use_ranges: opts.use_ranges,
        min_support_weight: opts.min_support_weight,
        context: Some(ctx),
        budget: opts.budget.clone(),
        sink: opts.sink.clone(),
        max_workers: opts.search_workers,
        row_shards: opts.row_shards,
        ..Default::default()
    };

    let mut rule = Rule::empty();
    let mut stats = CovStats::new(view.pos_weight(), view.total_weight());
    let mut score = opts.metric.score(stats, ctx.0, ctx.1);
    let mut current = view.clone();

    // Hard backstop far above any meaningful rule length; growth normally
    // stops via the improvement/coverage criteria long before this.
    const ABSOLUTE_MAX_LEN: usize = 64;
    loop {
        if rule.len() >= opts.max_len.unwrap_or(ABSOLUTE_MAX_LEN) {
            break;
        }
        if opts.budget.as_ref().is_some_and(|b| !b.check_deadline()) {
            // Budget exhausted mid-growth: the conditions accepted so far
            // still form a valid (coarser) rule, so keep them.
            break;
        }
        let Some(cand) = find_best_condition(&current, opts.metric, &search) else {
            break;
        };
        // Required margin: relative to the current score's magnitude, with
        // an absolute epsilon so a zero-score empty rule can be refined.
        let margin = (score.abs() * opts.min_improvement).max(1e-9);
        let improves = cand.score > score + margin;
        let forced = opts
            .recall_guard
            .as_ref()
            // `stats.neg()` is the current rule's coverage of the original
            // target class in the N-task (see GrowOptions docs). The empty
            // rule covers everything, so the guard always forces at least
            // one condition when recall matters.
            .is_some_and(|g| !improves && g.violated_by(stats.neg()));
        if !improves && !forced {
            break;
        }
        let matched = current.rows_matching(&cand.condition);
        if matched.len() >= current.n_rows() {
            // The candidate does not shrink coverage: accepting it cannot
            // change the rule's behaviour, and a forced (recall-guard)
            // refinement would loop on it forever.
            break;
        }
        if forced && cand.stats.neg() >= stats.neg() {
            // Forced refinement exists to shed original-target coverage; a
            // candidate that sheds none makes no recall progress.
            break;
        }
        rule.push(cand.condition);
        stats = cand.stats;
        score = cand.score;
        current = current.restricted_to(matched);
        if pnr_data::weights::approx::is_zero(stats.neg()) {
            // Pure rule: nothing left to refine for.
            break;
        }
    }

    if rule.is_empty() {
        None
    } else {
        Some(GrownRule { rule, stats, score })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};

    /// positives at (x in (2,4], k=a); x and k vary independently, so the
    /// impure x-band also holds k=b negatives and only the conjunction is
    /// pure.
    fn two_signal_data() -> (Dataset, Vec<bool>) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..200 {
            let x = (i % 10) as f64;
            let k = if (i / 10) % 2 == 0 { "a" } else { "b" };
            let target = (3.0..=4.0).contains(&x) && k == "a";
            b.push_row(
                &[Value::num(x), Value::cat(k)],
                if target { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        (d, is_pos)
    }

    #[test]
    fn grows_conjunction_until_pure() {
        let (d, is_pos) = two_signal_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let opts = GrowOptions::p_phase(EvalMetric::ZNumber, 0.0, true);
        let g = grow_rule(&v, &opts).expect("rule should be grown");
        assert_eq!(g.stats.neg(), 0.0, "rule should end pure: {:?}", g.rule);
        assert_eq!(g.stats.pos, 20.0, "rule should cover all positives");
        assert!(g.rule.len() >= 2, "needs both the range and the category");
    }

    #[test]
    fn max_len_caps_growth() {
        let (d, is_pos) = two_signal_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let opts = GrowOptions {
            max_len: Some(1),
            ..GrowOptions::p_phase(EvalMetric::ZNumber, 0.0, true)
        };
        let g = grow_rule(&v, &opts).expect("one-condition rule");
        assert_eq!(g.rule.len(), 1);
        // with one condition the x-band is the best single signal and stays impure
        assert!(g.stats.neg() > 0.0);
    }

    #[test]
    fn support_floor_prevents_overrefinement() {
        let (d, is_pos) = two_signal_data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        // Floor above the pure conjunction's support (20): growth must stop
        // at a coarser rule.
        let opts = GrowOptions::p_phase(EvalMetric::ZNumber, 25.0, true);
        if let Some(g) = grow_rule(&v, &opts) {
            assert!(
                g.stats.total >= 25.0,
                "support {} under floor",
                g.stats.total
            );
        }
    }

    #[test]
    fn returns_none_on_constant_data() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..10 {
            b.push_row(
                &[Value::num(1.0)],
                if i % 2 == 0 { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        let v = TaskView::full(&d, &is_pos, d.weights());
        assert!(grow_rule(&v, &GrowOptions::p_phase(EvalMetric::ZNumber, 0.0, true)).is_none());
    }

    #[test]
    fn recall_guard_forces_refinement() {
        // Data where the best single condition for the N-task covers many
        // original-target records; the guard must push growth further.
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("y", AttrType::Numeric);
        b.add_class("fp"); // N-task positive: false positive of P-union
        b.add_class("tp"); // N-task negative: original target
        for i in 0..200 {
            let x = (i % 10) as f64;
            let y = (i / 10 % 2) as f64;
            // false positives live at x<=4; but among x<=4, y==1 rows are
            // true positives that a coarse rule would sacrifice.
            let class = if x <= 4.0 && i / 10 % 2 == 0 {
                "fp"
            } else {
                "tp"
            };
            b.push_row(&[Value::num(x), Value::num(y)], class, 1.0)
                .unwrap();
        }
        let d = b.finish();
        let is_fp: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        let v = TaskView::full(&d, &is_fp, d.weights());
        let orig_pos_total = v.total_weight() - v.pos_weight();

        let lax = GrowOptions {
            recall_guard: Some(RecallGuard {
                retained_pos: orig_pos_total,
                orig_pos_total,
                min_recall: 0.0,
            }),
            ..GrowOptions::p_phase(EvalMetric::ZNumber, 0.0, false)
        };
        let strict = GrowOptions {
            recall_guard: Some(RecallGuard {
                retained_pos: orig_pos_total,
                orig_pos_total,
                min_recall: 1.0,
            }),
            ..lax.clone()
        };
        let g_lax = grow_rule(&v, &lax).unwrap();
        let g_strict = grow_rule(&v, &strict).unwrap();
        assert!(
            g_strict.stats.neg() <= g_lax.stats.neg(),
            "strict guard should sacrifice fewer targets: {} vs {}",
            g_strict.stats.neg(),
            g_lax.stats.neg()
        );
        assert_eq!(g_strict.stats.neg(), 0.0, "rn=1.0 demands a pure N-rule");
        assert!(g_strict.rule.len() >= g_lax.rule.len());
    }

    #[test]
    fn recall_guard_math() {
        let g = RecallGuard {
            retained_pos: 80.0,
            orig_pos_total: 100.0,
            min_recall: 0.7,
        };
        assert_eq!(g.recall_after(10.0), 0.7);
        assert!(!g.violated_by(10.0));
        assert!(g.violated_by(10.1));
        assert_eq!(g.recall_after(1000.0), 0.0);
        let degenerate = RecallGuard {
            retained_pos: 0.0,
            orig_pos_total: 0.0,
            min_recall: 0.9,
        };
        assert_eq!(degenerate.recall_after(5.0), 1.0);
    }
}
