//! Rule-level checkpoint/resume for long fits.
//!
//! A multi-hour out-of-core fit must survive `kill -9`. Progress through a
//! fit is naturally quantised by the covering loops — one accepted rule at
//! a time — so the checkpoint granularity is **per accepted rule**: after
//! every P- or N-rule acceptance the fit persists one small JSON file
//! (atomic temp-file + rename, mirroring the experiment pipeline's cell
//! store), and a restarted fit replays the checkpointed rules instead of
//! re-searching them.
//!
//! # Bit-identical resume
//!
//! Resume is not merely "close": a resumed fit produces the **byte-for-byte
//! same model artifact** as the uninterrupted run. Three things make that
//! hold:
//!
//! 1. **Replay, not re-search.** Checkpointed rules carry their
//!    discovery-time [`CovStats`](pnr_rules::CovStats); the phases fold them
//!    through the exact `+=` sequence of the original loop (recall
//!    accumulation, DL trace, coverage removal), so the float state at the
//!    interruption point is reproduced bitwise.
//! 2. **Budget pre-charging.** The checkpoint records the
//!    [`BudgetTracker`](pnr_rules::BudgetTracker) candidate count at the
//!    last acceptance; the resumed fit charges it up front and replays one
//!    rule charge per seeded rule, so the tracker crosses its limits at the
//!    same points as the uninterrupted run. The **wall-clock** budget is
//!    the exception: it restarts on resume (a dead process's elapsed time
//!    is unrecoverable), so only rule/candidate budgets are replay-exact.
//! 3. **Keyed stores.** Files are named by an FNV-1a fingerprint over the
//!    fit inputs (shape, schema fingerprint, target, canonical params JSON
//!    and a labels/weights/flags/value-sample digest); the full key is
//!    stored inside the file and verified on load, so a stale checkpoint
//!    from different data or parameters falls back to a fresh fit rather
//!    than poisoning the resume.
//!
//! Searches between checkpoints are lost on a kill and simply re-run —
//! deterministically, so the loss is wall-clock time, never reproducibility.

use crate::learn::{FitReport, PnruleLearner};
use crate::model::PnruleModel;
use crate::nphase::{learn_n_rules_resumable, NRule, StopReason};
use crate::params::PnruleParams;
use crate::pphase::{learn_p_rules_resumable, PPhaseResult, PRule};
use crate::scoring::ScoreMatrix;
use pnr_data::fingerprint::Fnv1a;
use pnr_data::{Column, Dataset, RowSet};
use pnr_rules::{BudgetTracker, RuleSet, TaskView};
use pnr_telemetry::{Span, SpanKind};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of one fit: everything the learned model is a function of.
/// Two fits with equal keys produce bit-identical models, so a checkpoint
/// written under this key can seed either of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitKey {
    /// Training rows.
    pub n_rows: usize,
    /// [`Schema::fingerprint`](pnr_data::Schema::fingerprint) of the
    /// training data (attribute names, types, dictionaries, classes).
    pub schema: u64,
    /// Target class code.
    pub target: u32,
    /// Canonical JSON of the learner parameters.
    pub params: String,
    /// FNV-1a digest of every row's label, weight bits and target flag,
    /// plus a bounded stride-sample of attribute values (full value
    /// hashing would cost a pass over all cells; the sample catches data
    /// swaps the label/weight fold would miss).
    pub data_digest: u64,
}

impl FitKey {
    /// The key of a fit over `data` with the given target flags and
    /// parameters.
    pub fn of(data: &Dataset, target: u32, is_pos: &[bool], params: &PnruleParams) -> FitKey {
        assert_eq!(is_pos.len(), data.n_rows());
        // PnruleParams serialization cannot fail in practice; the Debug
        // fallback keeps the key total without a panic path in library code.
        let params_json = serde_json::to_string(params).unwrap_or_else(|_| format!("{params:?}"));
        let weights = data.weights();
        let mut h = Fnv1a::new();
        for r in 0..data.n_rows() {
            h.write(&data.label(r).to_le_bytes());
            h.write(&weights[r].to_bits().to_le_bytes());
            h.write(&[u8::from(is_pos[r])]);
        }
        // Value sample: ~4096 evenly strided rows, all attributes.
        let stride = (data.n_rows() / 4096).max(1);
        for a in 0..data.n_attrs() {
            match data.column(a) {
                Column::Num(vals) => {
                    for r in (0..data.n_rows()).step_by(stride) {
                        h.write(&vals[r].to_bits().to_le_bytes());
                    }
                }
                Column::Cat(codes) => {
                    for r in (0..data.n_rows()).step_by(stride) {
                        h.write(&codes[r].to_le_bytes());
                    }
                }
            }
        }
        FitKey {
            n_rows: data.n_rows(),
            schema: data.schema().fingerprint(),
            target,
            params: params_json,
            data_digest: h.finish(),
        }
    }

    /// FNV-1a fingerprint naming this key's checkpoint file. Field
    /// separators keep adjacent fields from aliasing.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_field(&format!("{}", self.n_rows));
        h.write_field(&format!("{:016x}", self.schema));
        h.write_field(&format!("{}", self.target));
        h.write_field(&self.params);
        h.write_field(&format!("{:016x}", self.data_digest));
        h.finish()
    }
}

/// One persisted fit-in-progress: the key it belongs to plus every rule
/// accepted so far, in acceptance order, **before** any MDL truncation
/// (truncation is recomputed from the replayed DL trace on resume).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitCheckpoint {
    /// The fit this checkpoint belongs to (verified on load).
    pub key: FitKey,
    /// P-rules accepted so far.
    pub p_rules: Vec<PRule>,
    /// True once the P-phase finished; `p_covered_recall` and
    /// `p_stop_reason` are only meaningful then.
    pub p_done: bool,
    /// Recall the finished P-phase achieved (valid when `p_done`).
    pub p_covered_recall: f64,
    /// Why the finished P-phase stopped (valid when `p_done`; it cannot be
    /// recomputed without re-running the phase's final, failed search).
    pub p_stop_reason: StopReason,
    /// N-rules accepted so far (pre-truncation; only non-empty once
    /// `p_done`).
    pub n_rules: Vec<NRule>,
    /// [`BudgetTracker::candidates_charged`] at the moment this
    /// checkpoint was written (0 when the fit runs unbudgeted). Resume
    /// pre-charges this so budget limits latch at the original points.
    pub candidates_charged: u64,
}

/// A directory-backed store of fit checkpoints. A disabled store loads
/// nothing and writes nothing; [`PnruleLearner::fit_flags_with_report`]
/// runs through one, so the plain and checkpointed fit paths are the same
/// code.
#[derive(Debug)]
pub struct FitCheckpointStore {
    dir: PathBuf,
    enabled: bool,
    /// Crash drill: panic after this many successful writes (see
    /// [`Self::with_kill_after`]).
    kill_after: Option<u64>,
    writes: AtomicU64,
}

impl FitCheckpointStore {
    /// A store writing checkpoints under `dir`. With `enabled` false both
    /// [`load`](Self::load) and [`store`](Self::store) are no-ops.
    pub fn new(dir: impl AsRef<Path>, enabled: bool) -> Self {
        FitCheckpointStore {
            dir: dir.as_ref().to_path_buf(),
            enabled,
            kill_after: None,
            writes: AtomicU64::new(0),
        }
    }

    /// A store that neither loads nor writes (the plain-fit path).
    pub fn disabled() -> Self {
        FitCheckpointStore::new(PathBuf::new(), false)
    }

    /// Whether this store persists anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Crash drill: the store panics immediately after its `n`-th
    /// successful write, *after* the file is durably renamed into place —
    /// the closest a test can get to `kill -9` between a checkpoint and
    /// the next unit of work. Kill-tolerance tests sweep `n` over every
    /// write position and assert the resumed model is byte-identical.
    #[must_use]
    pub fn with_kill_after(mut self, n: u64) -> Self {
        self.kill_after = Some(n);
        self
    }

    /// The checkpoint file path for `key`.
    fn path_for(&self, key: &FitKey) -> PathBuf {
        self.dir
            .join(format!("fit-{:016x}.json", key.fingerprint()))
    }

    /// Loads a checkpoint for `key`, or `None` when absent, unreadable,
    /// or stale (stored key differs — fingerprint collision, format drift
    /// or changed inputs). Any problem means "start fresh", never an
    /// error.
    pub fn load(&self, key: &FitKey) -> Option<FitCheckpoint> {
        if !self.enabled {
            return None;
        }
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        let ckpt: FitCheckpoint = serde_json::from_str(&text).ok()?;
        if ckpt.key != *key {
            return None;
        }
        Some(ckpt)
    }

    /// Persists a checkpoint atomically (temp file + rename). IO problems
    /// are reported to stderr but never fail the fit: a checkpoint is an
    /// optimisation, not a correctness requirement.
    pub fn store(&self, ckpt: &FitCheckpoint) {
        if !self.enabled {
            return;
        }
        let json = match serde_json::to_string_pretty(ckpt) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("fit checkpoint serialization failed: {e}");
                return;
            }
        };
        let path = self.path_for(&ckpt.key);
        let tmp = path.with_extension("tmp");
        let write = std::fs::create_dir_all(&self.dir)
            .and_then(|()| std::fs::write(&tmp, json))
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            eprintln!("fit checkpoint write failed for {}: {e}", path.display());
        }
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.kill_after.is_some_and(|k| n >= k) {
            panic!("simulated kill -9: fit aborted after checkpoint write {n}");
        }
    }

    /// Removes the checkpoint for `key` (called when a fit completes; a
    /// finished fit must not seed the next one with an already-final rule
    /// list).
    pub fn clear(&self, key: &FitKey) {
        if self.enabled {
            std::fs::remove_file(self.path_for(key)).ok();
        }
    }
}

fn charged(budget: Option<&Arc<BudgetTracker>>) -> u64 {
    budget.map(|t| t.candidates_charged()).unwrap_or(0)
}

/// The one fit pipeline: P-phase, pooling, N-phase, scoring — shared by
/// the plain fit (disabled store) and the checkpointed fit, so the two
/// can never diverge.
pub(crate) fn run_fit(
    learner: &PnruleLearner,
    data: &Dataset,
    target: u32,
    is_pos: &[bool],
    store: &FitCheckpointStore,
) -> (PnruleModel, FitReport) {
    assert_eq!(is_pos.len(), data.n_rows());
    let params = learner.params();
    let sink = learner.sink_ref();
    let _fit_span = Span::enter(sink.as_ref(), SpanKind::Fit, "fit");

    let key = store
        .is_enabled()
        .then(|| FitKey::of(data, target, is_pos, params));
    let resume = key.as_ref().and_then(|k| store.load(k));

    let weights = data.weights();
    let view = TaskView::full(data, is_pos, weights);
    let orig_pos_total = view.pos_weight();

    // One budget tracker spans the whole fit: P-phase rules and
    // candidates spend from the same pool the N-phase draws on. On
    // resume, the checkpointed candidate spend is replayed up front so
    // limits latch at the same points as the uninterrupted run.
    let budget = params.budget.start().map(Arc::new);
    if let (Some(tracker), Some(ckpt)) = (budget.as_ref(), resume.as_ref()) {
        if ckpt.candidates_charged > 0 {
            tracker.charge_candidates(ckpt.candidates_charged);
        }
    }

    // --- P-phase: presence rules, high support first. ---
    let p_result = match &resume {
        Some(ckpt) if ckpt.p_done => {
            // The checkpoint holds the finished phase: replay its budget
            // rule charges and reuse the recorded outcome.
            if let Some(tracker) = budget.as_ref() {
                for _ in &ckpt.p_rules {
                    tracker.charge_rule();
                }
            }
            PPhaseResult {
                rules: ckpt.p_rules.clone(),
                covered_recall: ckpt.p_covered_recall,
                stop_reason: ckpt.p_stop_reason,
            }
        }
        _ => {
            let seed = resume
                .as_ref()
                .map(|ckpt| ckpt.p_rules.clone())
                .unwrap_or_default();
            let mut on_rule = |rules: &[PRule]| {
                if let Some(k) = &key {
                    store.store(&FitCheckpoint {
                        key: k.clone(),
                        p_rules: rules.to_vec(),
                        p_done: false,
                        p_covered_recall: 0.0,
                        p_stop_reason: StopReason::default(),
                        n_rules: Vec::new(),
                        candidates_charged: charged(budget.as_ref()),
                    });
                }
            };
            learn_p_rules_resumable(&view, params, budget.as_ref(), sink, seed, &mut on_rule)
        }
    };
    let n_seed = match &resume {
        Some(ckpt) if ckpt.p_done => ckpt.n_rules.clone(),
        _ => Vec::new(),
    };
    // Seal the P-phase so a kill during pooling or the first N-search
    // resumes without re-running it.
    if let Some(k) = &key {
        store.store(&FitCheckpoint {
            key: k.clone(),
            p_rules: p_result.rules.clone(),
            p_done: true,
            p_covered_recall: p_result.covered_recall,
            p_stop_reason: p_result.stop_reason,
            n_rules: n_seed.clone(),
            candidates_charged: charged(budget.as_ref()),
        });
    }
    let p_rules = RuleSet::from_rules(p_result.rules.iter().map(|p| p.rule.clone()).collect());

    // --- Pool every record the P-union covers. ---
    let pooled_rows: RowSet = (0..pnr_data::index::to_u32(data.n_rows(), "row count"))
        .filter(|&r| p_rules.any_match(data, r as usize))
        .collect();
    let covered_pos = pnr_data::ordered_sum(
        pooled_rows
            .iter()
            .filter(|&r| is_pos[r as usize])
            .map(|r| weights[r as usize]),
    );
    let pool_size = pooled_rows.len();
    let pool_total: f64 = pooled_rows.total_weight(weights);

    // --- N-phase: absence rules on the pooled false positives. ---
    let (n_rules, n_rule_stats, retained_recall, n_stop_reason, n_mdl_truncated, n_dl_trace) =
        if params.enable_n_phase && !p_rules.is_empty() {
            let flipped: Vec<bool> = is_pos.iter().map(|&p| !p).collect();
            let pooled = TaskView::over(data, pooled_rows, &flipped, weights);
            let mut on_rule = |rules: &[NRule]| {
                if let Some(k) = &key {
                    store.store(&FitCheckpoint {
                        key: k.clone(),
                        p_rules: p_result.rules.clone(),
                        p_done: true,
                        p_covered_recall: p_result.covered_recall,
                        p_stop_reason: p_result.stop_reason,
                        n_rules: rules.to_vec(),
                        candidates_charged: charged(budget.as_ref()),
                    });
                }
            };
            let n_result = learn_n_rules_resumable(
                &pooled,
                orig_pos_total,
                covered_pos,
                params,
                budget.as_ref(),
                sink,
                n_seed,
                &mut on_rule,
            );
            let stats = n_result.rules.iter().map(|n| n.stats).collect();
            (
                RuleSet::from_rules(n_result.rules.into_iter().map(|n| n.rule).collect()),
                stats,
                n_result.retained_recall,
                n_result.stop_reason,
                n_result.mdl_truncated,
                n_result.dl_trace,
            )
        } else {
            let achieved = if orig_pos_total > 0.0 {
                covered_pos / orig_pos_total
            } else {
                0.0
            };
            (
                RuleSet::new(),
                Vec::new(),
                achieved,
                StopReason::Exhausted,
                0,
                Vec::new(),
            )
        };

    // --- Scoring: judge every P×N combination on the training data. ---
    let score_matrix = ScoreMatrix::build_with_sink(
        data,
        is_pos,
        &p_rules,
        &n_rules,
        params.scoring_z_threshold,
        sink,
    );

    let report = FitReport {
        p_covered_recall: p_result.covered_recall,
        p_rule_stats: p_result.rules.iter().map(|p| p.stats).collect(),
        pool_size,
        pool_fp_weight: pool_total - covered_pos,
        n_rule_stats,
        retained_recall,
        p_stop_reason: p_result.stop_reason,
        n_stop_reason,
        n_mdl_truncated,
        n_dl_trace,
        candidates_charged: budget.as_ref().map(|t| t.candidates_charged()),
    };
    let model = PnruleModel {
        target,
        threshold: params.decision_threshold,
        p_rules,
        n_rules,
        score_matrix,
    };
    // The fit is complete: a leftover checkpoint would seed the *next*
    // run of this key with an already-final rule list (correct but
    // wasteful — it would replay everything to rediscover the stop).
    if let Some(k) = &key {
        store.clear(k);
    }
    (model, report)
}

impl PnruleLearner {
    /// [`fit`](Self::fit) with rule-level checkpointing: progress is
    /// persisted to `store` after every accepted rule, and a checkpoint
    /// left by a killed fit of the same [`FitKey`] is resumed instead of
    /// restarted. The resumed model is byte-identical to the
    /// uninterrupted one (wall-clock budgets excepted — see the module
    /// docs).
    pub fn fit_checkpointed(
        &self,
        data: &Dataset,
        target: u32,
        store: &FitCheckpointStore,
    ) -> (PnruleModel, FitReport) {
        let is_pos: Vec<bool> = (0..data.n_rows())
            .map(|r| data.label(r) == target)
            .collect();
        self.fit_flags_checkpointed(data, target, &is_pos, store)
    }

    /// [`fit_checkpointed`](Self::fit_checkpointed) with explicit target
    /// flags.
    pub fn fit_flags_checkpointed(
        &self,
        data: &Dataset,
        target: u32,
        is_pos: &[bool],
        store: &FitCheckpointStore,
    ) -> (PnruleModel, FitReport) {
        run_fit(self, data, target, is_pos, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ModelArtifact;
    use pnr_data::{AttrType, DatasetBuilder, Value};
    use pnr_rules::FitBudget;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The learner-test dataset: a presence band (x) whose coverage also
    /// drags in dos-flagged rows, forcing at least one P- and one N-rule.
    fn intrusion_like(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("r2l");
        b.add_class("rest");
        for i in 0..n {
            let x = (i % 50) as f64;
            let k = match (i / 50) % 5 {
                0 => "dos",
                1 => "web",
                _ => "ok",
            };
            let target = (20.0..24.0).contains(&x) && k != "dos";
            b.push_row(
                &[Value::num(x), Value::cat(k)],
                if target { "r2l" } else { "rest" },
                1.0,
            )
            .unwrap();
        }
        b.finish()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pnr_fitckpt_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn artifact_string(
        model: PnruleModel,
        params: &PnruleParams,
        report: FitReport,
        data: &Dataset,
    ) -> String {
        ModelArtifact::new(model, params.clone(), report, data.schema().clone())
            .expect("artifact validates")
            .to_file_string()
            .expect("artifact renders")
    }

    #[test]
    fn key_distinguishes_target_params_weights_and_values() {
        let data = intrusion_like(300);
        let flags: Vec<bool> = (0..data.n_rows()).map(|r| data.label(r) == 0).collect();
        let params = PnruleParams::default();
        let base = FitKey::of(&data, 0, &flags, &params);
        assert_eq!(
            base.fingerprint(),
            FitKey::of(&data, 0, &flags, &params).fingerprint(),
            "deterministic"
        );
        assert_ne!(
            base.fingerprint(),
            FitKey::of(&data, 1, &flags, &params).fingerprint()
        );
        let other_params = PnruleParams {
            rp: 0.5,
            ..Default::default()
        };
        assert_ne!(
            base.fingerprint(),
            FitKey::of(&data, 0, &flags, &other_params).fingerprint()
        );
        let reweighted = data.with_weights(vec![2.0; data.n_rows()]);
        assert_ne!(
            base.fingerprint(),
            FitKey::of(&reweighted, 0, &flags, &params).fingerprint()
        );
        let mut flipped = flags.clone();
        flipped[0] = !flipped[0];
        assert_ne!(
            base.fingerprint(),
            FitKey::of(&data, 0, &flipped, &params).fingerprint()
        );
    }

    #[test]
    fn store_round_trips_and_rejects_stale_keys() {
        let dir = temp_dir("round");
        let data = intrusion_like(200);
        let flags: Vec<bool> = (0..data.n_rows()).map(|r| data.label(r) == 0).collect();
        let params = PnruleParams::default();
        let key = FitKey::of(&data, 0, &flags, &params);
        let store = FitCheckpointStore::new(&dir, true);
        assert!(store.load(&key).is_none(), "empty store has nothing");
        let ckpt = FitCheckpoint {
            key: key.clone(),
            p_rules: Vec::new(),
            p_done: false,
            p_covered_recall: 0.0,
            p_stop_reason: StopReason::default(),
            n_rules: Vec::new(),
            candidates_charged: 7,
        };
        store.store(&ckpt);
        let back = store.load(&key).expect("stored checkpoint loads");
        assert_eq!(back.candidates_charged, 7);
        // Corrupt file: load falls back to None.
        std::fs::write(store.path_for(&key), "{not json").unwrap();
        assert!(store.load(&key).is_none());
        // A record stored under a different key (simulated collision) is
        // rejected on the key equality check.
        let other = FitKey::of(&data, 1, &flags, &params);
        let mut stale = ckpt.clone();
        stale.key = other;
        std::fs::write(store.path_for(&key), serde_json::to_string(&stale).unwrap()).unwrap();
        assert!(store.load(&key).is_none());
        // Disabled stores neither load nor write.
        let off = FitCheckpointStore::new(&dir, false);
        off.store(&ckpt);
        assert!(off.load(&key).is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpointed_fit_matches_plain_fit_and_clears_its_file() {
        let dir = temp_dir("match");
        let data = intrusion_like(1000);
        let params = PnruleParams::default();
        let learner = PnruleLearner::new(params.clone());
        let (plain_model, plain_report) = learner.fit_with_report(&data, 0);
        let store = FitCheckpointStore::new(&dir, true);
        let (ck_model, ck_report) = learner.fit_checkpointed(&data, 0, &store);
        assert_eq!(
            artifact_string(plain_model, &params, plain_report, &data),
            artifact_string(ck_model, &params, ck_report, &data),
            "checkpointing must not perturb the fit"
        );
        let flags: Vec<bool> = (0..data.n_rows()).map(|r| data.label(r) == 0).collect();
        let key = FitKey::of(&data, 0, &flags, &params);
        assert!(
            store.load(&key).is_none(),
            "a completed fit clears its checkpoint"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    /// Sweeps the kill position over every checkpoint write and asserts
    /// each resumed fit reproduces the uninterrupted artifact bytes.
    fn crash_resume_is_byte_identical(name: &str, params: PnruleParams) {
        let data = intrusion_like(1200);
        let learner = PnruleLearner::new(params.clone());
        let (want_model, want_report) = learner.fit_with_report(&data, 0);
        let want = artifact_string(want_model, &params, want_report, &data);
        let mut kill_after = 1;
        loop {
            let dir = temp_dir(&format!("{name}_{kill_after}"));
            let killer = FitCheckpointStore::new(&dir, true).with_kill_after(kill_after);
            let crashed = catch_unwind(AssertUnwindSafe(|| {
                learner.fit_checkpointed(&data, 0, &killer)
            }))
            .is_err();
            let resumed = FitCheckpointStore::new(&dir, true);
            let (model, report) = learner.fit_checkpointed(&data, 0, &resumed);
            assert_eq!(
                artifact_string(model, &params, report, &data),
                want,
                "resume after kill at write {kill_after} diverged"
            );
            std::fs::remove_dir_all(dir).ok();
            if !crashed {
                // The kill position fell past the last write: every
                // earlier position has been exercised.
                break;
            }
            kill_after += 1;
        }
        assert!(kill_after > 1, "the sweep must exercise at least one kill");
    }

    #[test]
    fn kill_at_every_checkpoint_resumes_to_identical_bytes() {
        crash_resume_is_byte_identical("kill", PnruleParams::default());
    }

    #[test]
    fn kill_under_candidate_budget_resumes_to_identical_bytes() {
        // The budget path: resume must pre-charge the checkpointed
        // candidate count so the tracker latches where the uninterrupted
        // run latched.
        crash_resume_is_byte_identical(
            "kill_budget",
            PnruleParams {
                budget: FitBudget {
                    max_candidates: Some(2_000),
                    ..FitBudget::default()
                },
                ..Default::default()
            },
        );
    }

    #[test]
    fn stale_checkpoint_from_other_data_is_ignored() {
        let dir = temp_dir("stale_data");
        let params = PnruleParams::default();
        let learner = PnruleLearner::new(params.clone());
        // Crash a fit on one dataset, then fit different data against the
        // same store: the leftover file must not seed it.
        let first = intrusion_like(1200);
        let killer = FitCheckpointStore::new(&dir, true).with_kill_after(1);
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            learner.fit_checkpointed(&first, 0, &killer)
        }))
        .is_err();
        assert!(crashed, "drill must trip");
        let second = intrusion_like(900);
        let (want_model, want_report) = learner.fit_with_report(&second, 0);
        let store = FitCheckpointStore::new(&dir, true);
        let (model, report) = learner.fit_checkpointed(&second, 0, &store);
        assert_eq!(
            artifact_string(model, &params, report, &second),
            artifact_string(want_model, &params, want_report, &second),
        );
        std::fs::remove_dir_all(dir).ok();
    }
}
