//! Full-pipeline run with every `audit` invariant checker compiled in.
//!
//! A complete `fit` exercises all five checkers on honest data: subset and
//! conservation checks on every view restriction in both phases, sorted-
//! projection consistency on every condition search, probability bounds on
//! every ScoreMatrix cell, and DL non-increase at the N-phase MDL
//! truncation. The run completing without a panic is the assertion; the
//! negative (corruption) cases live in `pnr_data::audit` unit tests and
//! `pnr-rules/tests/audit_corruption.rs`.

#![cfg(feature = "audit")]

use pnr_core::{PnruleLearner, PnruleParams};
use pnr_data::{AttrType, DatasetBuilder, Value};
use pnr_rules::evaluate_classifier;

#[test]
fn full_fit_passes_every_audit_checker() {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("k", AttrType::Categorical);
    b.add_class("rare");
    b.add_class("rest");
    for i in 0..2000 {
        let x = (i % 50) as f64;
        let k = match (i / 50) % 5 {
            0 => "dos",
            1 => "web",
            _ => "ok",
        };
        let target = (20.0..24.0).contains(&x) && k != "dos";
        b.push_row(
            &[Value::num(x), Value::cat(k)],
            if target { "rare" } else { "rest" },
            1.0 + (i % 3) as f64,
        )
        .unwrap();
    }
    let data = b.finish();
    let target = data.class_code("rare").unwrap();
    let (model, report) =
        PnruleLearner::new(PnruleParams::default()).fit_with_report(&data, target);
    assert!(!model.p_rules.is_empty());
    assert!(!report.n_dl_trace.is_empty() || model.n_rules.is_empty());
    let cm = evaluate_classifier(&model, &data, target);
    assert!(
        cm.f_measure() > 0.9,
        "audited fit degraded: F {}",
        cm.f_measure()
    );
}
