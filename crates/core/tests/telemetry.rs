//! Telemetry must observe a fit without perturbing it.
//!
//! Two invariants: (1) the learned model is bit-identical whether a
//! [`NoopSink`] or a [`RecordingSink`] is attached, and counters repeat
//! exactly across runs; (2) recorded spans are well-formed — every open
//! span closes at the right depth, and the P-phase and N-phase never
//! interleave.

use pnr_core::{FitBudget, PnruleLearner, PnruleParams};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_telemetry::{Counter, RecordingSink, SpanKind, TelemetrySink};
use proptest::prelude::*;
use std::sync::Arc;

/// The paper's motivating structure in miniature: an impure presence band
/// plus a categorical absence signature, so both phases do real work.
fn intrusion_like(n: usize) -> Dataset {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("k", AttrType::Categorical);
    b.add_class("r2l");
    b.add_class("rest");
    for i in 0..n {
        let x = (i % 50) as f64;
        let k = match (i / 50) % 5 {
            0 => "dos",
            1 => "web",
            _ => "ok",
        };
        let target = (20.0..24.0).contains(&x) && k != "dos";
        b.push_row(
            &[Value::num(x), Value::cat(k)],
            if target { "r2l" } else { "rest" },
            1.0,
        )
        .unwrap();
    }
    b.finish()
}

#[test]
fn recording_sink_changes_no_model_bit() {
    let data = intrusion_like(2_000);
    let target = data.class_code("r2l").unwrap();
    let silent = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
    let sink = Arc::new(RecordingSink::new());
    let observed = PnruleLearner::new(PnruleParams::default())
        .with_sink(sink.clone())
        .fit(&data, target);
    assert_eq!(
        serde_json::to_string(&silent).unwrap(),
        serde_json::to_string(&observed).unwrap(),
        "attaching a recording sink must not change the learned model"
    );
    // The sink actually saw the fit.
    assert!(sink.value(Counter::ConditionsEvaluated) > 0);
    assert!(sink.value(Counter::FirstMatchRows) >= data.n_rows() as u64);
}

#[test]
fn counters_are_deterministic_across_runs() {
    let data = intrusion_like(1_500);
    let target = data.class_code("r2l").unwrap();
    let run = || {
        let sink = Arc::new(RecordingSink::new());
        let _ = PnruleLearner::new(PnruleParams::default())
            .with_sink(sink.clone())
            .fit(&data, target);
        sink.counter_values()
    };
    assert_eq!(
        run(),
        run(),
        "identical fits must report identical counters"
    );
}

#[test]
fn candidate_charges_match_budget_tracker_exactly() {
    // A budget generous enough never to latch: every candidate the search
    // charges is mirrored to the sink, so the tracker's tally, the
    // report's tally and the telemetry counter must agree to the unit.
    let data = intrusion_like(2_000);
    let target = data.class_code("r2l").unwrap();
    let params = PnruleParams {
        budget: FitBudget {
            max_candidates: Some(1_000_000_000),
            ..FitBudget::default()
        },
        ..Default::default()
    };
    let sink = Arc::new(RecordingSink::new());
    let (_, report) = PnruleLearner::new(params)
        .with_sink(sink.clone())
        .fit_with_report(&data, target);
    let charged = report
        .candidates_charged
        .expect("budgeted fit reports its charge tally");
    assert!(charged > 0, "the fit must have searched something");
    assert_eq!(
        charged,
        sink.value(Counter::CandidateCharges),
        "telemetry must mirror BudgetTracker charges exactly"
    );
}

#[test]
fn fit_spans_cover_both_phases_and_scoring() {
    let data = intrusion_like(2_000);
    let target = data.class_code("r2l").unwrap();
    let sink = Arc::new(RecordingSink::new());
    let _ = PnruleLearner::new(PnruleParams::default())
        .with_sink(sink.clone())
        .fit(&data, target);
    assert_eq!(sink.nesting_error(), None);
    let spans = sink.completed_spans();
    for kind in [
        SpanKind::Fit,
        SpanKind::PPhase,
        SpanKind::PRuleGrow,
        SpanKind::NPhase,
        SpanKind::ScoreMatrix,
    ] {
        assert!(
            spans.iter().any(|s| s.kind == kind),
            "missing {} span",
            kind.name()
        );
    }
    // Phase spans nest strictly inside the fit span.
    let fit_depth = spans
        .iter()
        .find(|s| s.kind == SpanKind::Fit)
        .map(|s| s.depth)
        .unwrap();
    assert_eq!(fit_depth, 0);
    for s in &spans {
        if matches!(s.kind, SpanKind::PPhase | SpanKind::NPhase) {
            assert_eq!(
                s.depth,
                1,
                "{} should sit directly under fit",
                s.kind.name()
            );
        }
    }
}

fn rows() -> impl Strategy<Value = Vec<(f64, f64, bool)>> {
    prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0, prop::bool::ANY), 6..100)
}

fn dataset(rows: &[(f64, f64, bool)]) -> Dataset {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("y", AttrType::Numeric);
    b.add_class("pos");
    b.add_class("neg");
    for &(x, y, p) in rows {
        b.push_row(
            &[Value::num(x), Value::num(y)],
            if p { "pos" } else { "neg" },
            1.0,
        )
        .unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn span_nesting_is_well_formed(data_rows in rows()) {
        // On arbitrary data — empty targets, degenerate phases, MDL
        // truncations — every span that opens must close in stack order
        // and the exclusive phases must never overlap.
        let d = dataset(&data_rows);
        let sink = Arc::new(RecordingSink::new());
        let _ = PnruleLearner::new(PnruleParams::default())
            .with_sink(sink.clone())
            .fit(&d, 0);
        prop_assert_eq!(sink.nesting_error(), None);
        // Ignoring telemetry entirely must also yield the identical model.
        let silent = PnruleLearner::new(PnruleParams::default()).fit(&d, 0);
        let observed = PnruleLearner::new(PnruleParams::default())
            .with_sink(Arc::new(RecordingSink::new()) as Arc<dyn TelemetrySink>)
            .fit(&d, 0);
        prop_assert_eq!(
            serde_json::to_string(&silent).unwrap(),
            serde_json::to_string(&observed).unwrap()
        );
    }
}
