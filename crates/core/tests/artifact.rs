//! Corruption fault-injection and round-trip suite for model artifacts.
//!
//! The load-path contract under test: a clean round-trip scores
//! bit-identically, *every* single-byte corruption of a saved artifact
//! surfaces as `ChecksumMismatch` (never a panic, never a silently
//! different model), truncations and malformed files produce typed
//! errors, and a future format version is only reported as such through
//! an intact checksum.

use pnr_core::{ArtifactError, ModelArtifact, PnruleLearner, PnruleParams, FORMAT_VERSION};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_rules::BinaryClassifier;
use proptest::prelude::*;
use std::path::Path;

/// An intrusion-detection-like mixed-type dataset: a numeric band plus a
/// categorical service column, with the rare class hiding in one corner.
fn intrusion_like(n: usize, phase: usize) -> Dataset {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("service", AttrType::Categorical);
    b.add_class("r2l");
    b.add_class("rest");
    for i in 0..n {
        let x = ((i * 7 + phase * 3) % 100) as f64;
        let k = match i % 4 {
            0 => "dos",
            1 => "web",
            _ => "ok",
        };
        let target = (40.0..60.0).contains(&x) && k == "dos";
        b.push_row(
            &[Value::num(x), Value::cat(k)],
            if target { "r2l" } else { "rest" },
            1.0,
        )
        .unwrap();
    }
    b.finish()
}

fn trained_artifact() -> (ModelArtifact, Dataset) {
    let train = intrusion_like(600, 0);
    let held_out = intrusion_like(400, 1);
    let target = train.class_code("r2l").unwrap();
    let params = PnruleParams::default();
    let (model, report) = PnruleLearner::new(params.clone()).fit_with_report(&train, target);
    let artifact = ModelArtifact::new(model, params, report, train.schema().clone())
        .expect("trained model must validate against its own schema");
    (artifact, held_out)
}

#[test]
fn round_trip_scores_bit_identically() {
    let (artifact, held_out) = trained_artifact();
    let text = artifact.to_file_string().unwrap();
    let back = ModelArtifact::from_file_str(&text).unwrap();
    assert_eq!(back.model.p_rules, artifact.model.p_rules);
    assert_eq!(back.model.n_rules, artifact.model.n_rules);
    assert_eq!(back.model.score_matrix, artifact.model.score_matrix);
    assert_eq!(back.params, artifact.params);
    assert_eq!(back.schema_fingerprint(), artifact.schema_fingerprint());
    assert_eq!(back.target_class(), artifact.target_class());
    for row in 0..held_out.n_rows() {
        assert_eq!(
            back.model.score(&held_out, row).to_bits(),
            artifact.model.score(&held_out, row).to_bits(),
            "row {row} must score bit-identically after a round trip"
        );
    }
}

#[test]
fn save_and_load_round_trip_through_disk() {
    let (artifact, held_out) = trained_artifact();
    let dir = std::env::temp_dir().join(format!("pnr_artifact_{}", std::process::id()));
    let path = dir.join("model.artifact");
    artifact.save(&path).unwrap();
    assert!(
        !dir.join("model.artifact.tmp").exists(),
        "atomic save must leave no tmp file behind"
    );
    let back = ModelArtifact::load(&path).unwrap();
    for row in 0..held_out.n_rows() {
        assert_eq!(
            back.model.score(&held_out, row).to_bits(),
            artifact.model.score(&held_out, row).to_bits()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_single_byte_flip_is_a_checksum_mismatch() {
    let (artifact, _) = trained_artifact();
    let text = artifact.to_file_string().unwrap();
    let bytes = text.as_bytes();
    for i in 0..bytes.len() {
        for mask in [0x01u8, 0x20, 0x80] {
            // from_file_bytes is the `load` path: even a flip that breaks
            // the UTF-8 encoding must classify as a checksum mismatch.
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= mask;
            match ModelArtifact::from_file_bytes(&corrupt) {
                Err(ArtifactError::ChecksumMismatch) => {}
                Err(other) => panic!(
                    "flip at byte {i} mask {mask:#04x}: expected ChecksumMismatch, got {other}"
                ),
                Ok(_) => panic!("flip at byte {i} mask {mask:#04x} loaded silently"),
            }
        }
    }
}

#[test]
fn truncations_never_panic_and_never_load() {
    let (artifact, _) = trained_artifact();
    let text = artifact.to_file_string().unwrap();
    // every prefix length across the envelope boundary plus a spread of
    // points through the body
    let mut cut_points: Vec<usize> = (0..30).collect();
    cut_points.extend((30..text.len()).step_by(97));
    for cut in cut_points {
        let truncated = &text[..cut.min(text.len())];
        match ModelArtifact::from_file_str(truncated) {
            Ok(_) => panic!("truncation to {cut} bytes loaded successfully"),
            Err(
                ArtifactError::ChecksumMismatch
                | ArtifactError::Malformed { .. }
                | ArtifactError::UnsupportedVersion { .. },
            ) => {}
            Err(other) => panic!("truncation to {cut} bytes: unexpected error {other}"),
        }
    }
}

#[test]
fn empty_file_is_malformed() {
    match ModelArtifact::from_file_str("") {
        Err(ArtifactError::Malformed { .. }) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn future_version_is_only_reported_through_an_intact_checksum() {
    // Build a payload claiming format v999 and wrap it in a *correct*
    // checksum: the version error must surface, not a checksum error.
    let payload = format!("pnrule-artifact v999\n{}", "{}");
    let digest = pnr_data::fingerprint::fnv1a_64(payload.as_bytes());
    let text = format!("{digest:016x}\n{payload}");
    match ModelArtifact::from_file_str(&text) {
        Err(ArtifactError::UnsupportedVersion { found: 999 }) => {}
        other => panic!("expected UnsupportedVersion {{ found: 999 }}, got {other:?}"),
    }
    // ... and with one payload byte flipped the checksum takes priority.
    let tampered = text.replace("v999", "v998");
    match ModelArtifact::from_file_str(&tampered) {
        Err(ArtifactError::ChecksumMismatch) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn bad_magic_with_correct_checksum_is_malformed() {
    let payload = "not-an-artifact v1\n{}";
    let digest = pnr_data::fingerprint::fnv1a_64(payload.as_bytes());
    let text = format!("{digest:016x}\n{payload}");
    match ModelArtifact::from_file_str(&text) {
        Err(ArtifactError::Malformed { .. }) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn inconsistent_schema_fingerprint_is_malformed() {
    let (artifact, _) = trained_artifact();
    let text = artifact.to_file_string().unwrap();
    let (_, payload) = text.split_once('\n').unwrap();
    // flip the stored fingerprint, then re-wrap with a fresh (correct)
    // checksum so only the cross-check can catch it
    let fp = format!("\"schema_fingerprint\":{}", artifact.schema_fingerprint());
    assert!(payload.contains(&fp), "fixture assumes compact JSON field");
    let tampered = payload.replace(&fp, "\"schema_fingerprint\":1");
    let digest = pnr_data::fingerprint::fnv1a_64(tampered.as_bytes());
    match ModelArtifact::from_file_str(&format!("{digest:016x}\n{tampered}")) {
        Err(ArtifactError::Malformed { detail }) => {
            assert!(detail.contains("fingerprint"), "{detail}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn golden_fixture_truncated_file() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/truncated.artifact");
    let text = std::fs::read_to_string(path).unwrap();
    match ModelArtifact::from_file_str(&text) {
        Err(ArtifactError::ChecksumMismatch) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn golden_fixture_future_version_header() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/future_version.artifact");
    let text = std::fs::read_to_string(path).unwrap();
    match ModelArtifact::from_file_str(&text) {
        Err(ArtifactError::UnsupportedVersion { found: 999 }) => {}
        other => panic!("expected UnsupportedVersion {{ found: 999 }}, got {other:?}"),
    }
}

#[test]
fn current_format_version_is_one() {
    // The golden fixtures encode v999 as "the future"; this pins the
    // present so bumping FORMAT_VERSION forces a fixture review.
    assert_eq!(FORMAT_VERSION, 1);
}

#[test]
fn non_finite_thresholds_cannot_reach_disk() {
    // Regression: serde renders NaN/±inf as `null`, so an artifact holding
    // a non-finite threshold used to save fine and then fail (or change
    // meaning) on reload. Save must refuse with the typed error instead.
    use pnr_rules::{Condition, Rule, RuleSet};
    let (artifact, _) = trained_artifact();
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        for (mutate_p, make_cond) in [
            (
                true,
                Condition::NumLe {
                    attr: 0,
                    value: bad,
                },
            ),
            (
                false,
                Condition::NumGt {
                    attr: 0,
                    value: bad,
                },
            ),
            (
                true,
                Condition::NumRange {
                    attr: 0,
                    lo: 0.0,
                    hi: bad,
                },
            ),
        ] {
            // assemble via the public fields, bypassing `new`'s validation
            let mut tampered = artifact.clone();
            let inject = |rules: &RuleSet| {
                let mut list: Vec<Rule> = rules.rules().to_vec();
                list.push(Rule::new(vec![make_cond.clone()]));
                RuleSet::from_rules(list)
            };
            let (list, bad_rank) = if mutate_p {
                tampered.model.p_rules = inject(&tampered.model.p_rules);
                ("P", tampered.model.p_rules.len() - 1)
            } else {
                tampered.model.n_rules = inject(&tampered.model.n_rules);
                ("N", tampered.model.n_rules.len() - 1)
            };
            match tampered.to_file_string() {
                Err(ArtifactError::NonFiniteThreshold { list: l, rule }) => {
                    assert_eq!((l, rule), (list, bad_rank), "wrong locus for {bad}");
                }
                other => panic!("threshold {bad}: expected NonFiniteThreshold, got {other:?}"),
            }
            let dir = std::env::temp_dir().join(format!("pnr_nonfinite_{}", std::process::id()));
            let path = dir.join("model.artifact");
            assert!(
                matches!(
                    tampered.save(&path),
                    Err(ArtifactError::NonFiniteThreshold { .. })
                ),
                "save must refuse a non-finite threshold"
            );
            assert!(!path.exists(), "no file may be written for {bad}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    // a clean artifact still round-trips
    let back = ModelArtifact::from_file_str(&artifact.to_file_string().unwrap()).unwrap();
    assert_eq!(back.model.p_rules, artifact.model.p_rules);
}

#[test]
fn error_displays_lead_with_the_variant_name() {
    assert!(ArtifactError::ChecksumMismatch
        .to_string()
        .starts_with("ChecksumMismatch"));
    assert!(ArtifactError::UnsupportedVersion { found: 9 }
        .to_string()
        .starts_with("UnsupportedVersion"));
    assert!(ArtifactError::SchemaMismatch {
        detail: "x".to_string()
    }
    .to_string()
    .starts_with("SchemaMismatch"));
    assert!(ArtifactError::Malformed {
        detail: "x".to_string()
    }
    .to_string()
    .starts_with("Malformed"));
    assert!(ArtifactError::RetriesExhausted {
        attempts: 3,
        last: Box::new(ArtifactError::ChecksumMismatch)
    }
    .to_string()
    .starts_with("RetriesExhausted"));
}

#[test]
fn load_with_retry_succeeds_and_scores_identically() {
    let (artifact, _) = trained_artifact();
    let dir = std::env::temp_dir().join(format!("pnr_retry_ok_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.artifact");
    artifact.save(&path).unwrap();
    let back = pnr_core::load_with_retry(&path, &pnr_core::RetryPolicy::default()).unwrap();
    assert_eq!(back.schema_fingerprint(), artifact.schema_fingerprint());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_with_retry_reports_deterministic_failures_immediately() {
    // A missing file is not transient: exactly one attempt, a plain `Io`
    // error (not `RetriesExhausted`), and no backoff delay.
    let start = std::time::Instant::now();
    let err = pnr_core::load_with_retry(
        Path::new("/nonexistent/never/m.artifact"),
        &pnr_core::RetryPolicy::default(),
    )
    .unwrap_err();
    assert!(matches!(err, ArtifactError::Io(_)), "{err}");
    assert!(
        start.elapsed() < std::time::Duration::from_millis(500),
        "a deterministic failure must not back off"
    );
}

#[test]
fn retry_transient_backs_off_then_gives_up_typed() {
    let policy = pnr_core::RetryPolicy {
        attempts: 3,
        base_delay: std::time::Duration::from_millis(1),
        max_delay: std::time::Duration::from_millis(2),
    };
    // Always-transient failures: all attempts consumed, typed give-up.
    let mut calls = 0u32;
    let err = pnr_core::retry_transient(
        &policy,
        |_| true,
        || -> Result<(), ArtifactError> {
            calls += 1;
            Err(ArtifactError::Io(std::io::Error::from(
                std::io::ErrorKind::TimedOut,
            )))
        },
    )
    .unwrap_err();
    assert_eq!(calls, 3);
    match err {
        ArtifactError::RetriesExhausted { attempts, last } => {
            assert_eq!(attempts, 3);
            assert!(matches!(*last, ArtifactError::Io(_)));
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }

    // Success on a later attempt clears the error.
    let mut calls = 0u32;
    let ok = pnr_core::retry_transient(
        &policy,
        |_| true,
        || {
            calls += 1;
            if calls < 3 {
                Err(ArtifactError::Io(std::io::Error::from(
                    std::io::ErrorKind::Interrupted,
                )))
            } else {
                Ok(42u32)
            }
        },
    )
    .unwrap();
    assert_eq!(ok, 42);
    assert_eq!(calls, 3);
}

#[test]
fn retry_policy_delays_grow_and_cap() {
    let policy = pnr_core::RetryPolicy {
        attempts: 10,
        base_delay: std::time::Duration::from_millis(10),
        max_delay: std::time::Duration::from_millis(35),
    };
    assert_eq!(policy.delay(0), std::time::Duration::from_millis(10));
    assert_eq!(policy.delay(1), std::time::Duration::from_millis(20));
    assert_eq!(policy.delay(2), std::time::Duration::from_millis(35));
    assert_eq!(policy.delay(31), std::time::Duration::from_millis(35));
    assert_eq!(policy.delay(40), std::time::Duration::from_millis(35));
    // transient classification covers exactly the retryable kinds
    for kind in [
        std::io::ErrorKind::Interrupted,
        std::io::ErrorKind::WouldBlock,
        std::io::ErrorKind::TimedOut,
    ] {
        assert!(pnr_core::is_transient_io(&std::io::Error::from(kind)));
    }
    for kind in [
        std::io::ErrorKind::NotFound,
        std::io::ErrorKind::PermissionDenied,
    ] {
        assert!(!pnr_core::is_transient_io(&std::io::Error::from(kind)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `load(save(m))` scores bit-identically on held-out data, for
    /// models trained on arbitrary datasets.
    #[test]
    fn round_trip_property(rows in prop::collection::vec(
        (0.0f64..100.0, 0usize..3, prop::bool::ANY), 40..200
    )) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("pos");
        b.add_class("neg");
        let cats = ["a", "b", "c"];
        for &(x, k, p) in &rows {
            b.push_row(
                &[Value::num(x), Value::cat(cats[k])],
                if p { "pos" } else { "neg" },
                1.0,
            ).unwrap();
        }
        let train = b.finish();
        let params = PnruleParams::default();
        let (model, report) =
            PnruleLearner::new(params.clone()).fit_with_report(&train, 0);
        let artifact =
            ModelArtifact::new(model, params, report, train.schema().clone()).unwrap();
        let back = ModelArtifact::from_file_str(&artifact.to_file_string().unwrap()).unwrap();
        let held_out = intrusion_like(120, 2);
        // held-out data shares attribute layout (x numeric, cat second),
        // so scoring is well-defined even though categories differ
        for row in 0..train.n_rows() {
            prop_assert_eq!(
                back.model.score(&train, row).to_bits(),
                artifact.model.score(&train, row).to_bits()
            );
        }
        for row in 0..held_out.n_rows() {
            prop_assert_eq!(
                back.model.score(&held_out, row).to_bits(),
                artifact.model.score(&held_out, row).to_bits()
            );
        }
    }
}
