//! Deterministic replay of the shrunk failing case recorded in
//! `props.proptest-regressions` (seed cc 63ca56e1...). The stand-in
//! proptest cannot replay the original RNG stream bit-for-bit, so the
//! 70-row dataset from the seed's shrink comment is pinned here verbatim
//! and every property from `props.rs` is asserted against it directly.

use pnr_core::{PnruleLearner, PnruleParams};
use pnr_data::{AttrType, DatasetBuilder, Value};
use pnr_rules::BinaryClassifier;

const SEED_ROWS: [(f64, f64, bool); 70] = [
    (-3.982965203036405, -6.025326630264052, true),
    (-16.37142653312865, 6.284143518919578, true),
    (-10.07275503715653, 19.856674714026106, true),
    (7.051551045126962, -8.11058365042731, true),
    (-10.300132264311099, 13.271062907226602, true),
    (5.872898791384961, -11.448802249263121, true),
    (12.805481784096004, 14.977829442667701, true),
    (14.56095745849148, -1.570103442552538, true),
    (-9.311619459871077, 5.5943339878658325, true),
    (-14.539751448379388, 6.943713483950351, true),
    (-0.8437219730841363, -1.9275803228570314, true),
    (2.5403654084565277, 14.085755652479847, true),
    (1.5407869331148105, -12.967832672297696, true),
    (-1.8385308369119258, 6.102600500833477, true),
    (18.5398078096994, 2.919313760464685, false),
    (19.320124462445364, -11.496245565502473, true),
    (19.167353504698838, -10.840392460325146, false),
    (-11.974951182208619, -5.459662370060701, true),
    (4.146779248651525, 10.611628376979258, false),
    (0.6677750336472313, 5.55009193753504, true),
    (-17.63327351923678, 15.398786303307945, true),
    (9.641563344513603, -13.460606977815491, true),
    (-10.846490708629778, 15.279098332692302, true),
    (-18.74569964139874, -7.961040619722894, false),
    (-4.443978939646141, -2.4266262345376846, true),
    (2.784526797495965, -13.880341295323769, true),
    (12.057820112570715, 12.56833966409059, false),
    (-9.801394531051509, 11.452967186229126, true),
    (-9.186032055193097, -18.974195727606308, true),
    (16.38262616936565, 4.966555139451217, true),
    (-9.456306354689984, 0.5945891046347153, true),
    (-4.636677790895876, 6.852554610365929, true),
    (14.508196067046388, 3.363350267599323, true),
    (-19.189489600957508, 10.751002539347093, true),
    (10.66284081862948, 2.6833282609794162, true),
    (-12.987601744077372, 4.10913279636163, true),
    (-5.1026391127085455, 2.6952373431472023, true),
    (5.691538622146074, -10.137358859500894, true),
    (0.25821953192653463, -3.3927463248012746, true),
    (-12.952019413436005, 17.82080422535272, true),
    (0.06956555692727555, 5.852227958811742, true),
    (5.6986890819282205, 19.213028222007896, false),
    (8.993014046171098, 3.8048772711502217, true),
    (8.428197360916787, 12.201496986094599, false),
    (5.717029961606021, 14.525178604141516, true),
    (4.2404251353186, -15.45124095088502, true),
    (14.391657844500601, 12.420281176260694, true),
    (4.179349681517046, 5.663969780337724, true),
    (4.645342567326465, -0.2972330505374257, true),
    (15.664170813963393, -7.4544724821439665, true),
    (14.240948502221912, 13.597230949569768, true),
    (-10.477866188118593, -2.1954320541244696, false),
    (-14.468607058734795, -10.336296469348007, true),
    (2.97260919192398, 6.755217170167889, true),
    (-3.825566561958424, 6.13465805534483, true),
    (7.492996155264046, -14.286676889213354, false),
    (18.70187842572229, 3.569996021886039, false),
    (-4.437007365565604, -0.8602493390910927, false),
    (14.764723743505282, -1.3894231367575292, false),
    (9.206578350596013, -19.80291547582195, false),
    (3.693412027205769, -7.036861527773982, false),
    (-2.0137599233769365, 8.382122910637744, true),
    (12.290785669876623, 18.935322089577244, true),
    (-9.982538595759673, 9.521893524490261, true),
    (6.900782524096028, 4.229547793511421, false),
    (-7.468435027897635, 17.88566919050087, false),
    (6.422388861124606, 17.860537413634024, true),
    (-18.040316667274247, -11.927827431962513, false),
    (-16.709509842059337, -9.878280115704264, false),
    (-12.62094950304896, -5.1099706119857204, false),
];

#[test]
fn replay_all_props() {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("y", AttrType::Numeric);
    b.add_class("pos");
    b.add_class("neg");
    for &(x, y, p) in &SEED_ROWS {
        b.push_row(
            &[Value::num(x), Value::num(y)],
            if p { "pos" } else { "neg" },
            1.0,
        )
        .unwrap();
    }
    let d = b.finish();

    // scores_are_probabilities
    let model = PnruleLearner::new(PnruleParams::default()).fit(&d, 0);
    for row in 0..d.n_rows() {
        let s = model.score(&d, row);
        assert!((0.0..=1.0).contains(&s), "row {row} score {s}");
    }
    // p_rules_bound_positive_predictions
    for row in 0..d.n_rows() {
        if model.predict(&d, row) {
            assert!(
                model.p_rules.any_match(&d, row),
                "row {row}: positive prediction without a P-rule"
            );
        }
    }
    // trace_is_consistent_with_score
    for row in 0..d.n_rows() {
        let t = model.trace(&d, row);
        match t.p_rule {
            None => assert_eq!(model.score(&d, row), 0.0),
            Some(p) => assert_eq!(
                model.score(&d, row),
                model.score_matrix.score(p, t.n_rule),
                "row {row}"
            ),
        }
    }
    // disabled_n_phase_scores_by_p_rule_row_estimate
    let model2 = PnruleLearner::new(PnruleParams {
        enable_n_phase: false,
        ..Default::default()
    })
    .fit(&d, 0);
    assert!(model2.n_rules.is_empty());
    for row in 0..d.n_rows() {
        match model2.p_rules.first_match(&d, row) {
            None => assert_eq!(model2.score(&d, row), 0.0),
            Some(p) => assert_eq!(
                model2.score(&d, row),
                model2.score_matrix.score(p, None),
                "row {row}"
            ),
        }
    }
    // max_p_rule_len_is_respected
    for cap in 1usize..4 {
        let m = PnruleLearner::new(PnruleParams {
            max_p_rule_len: Some(cap),
            ..Default::default()
        })
        .fit(&d, 0);
        for rule in m.p_rules.rules() {
            assert!(
                rule.len() <= cap,
                "rule length {} over cap {cap}",
                rule.len()
            );
        }
    }
}
