//! Out-of-core training, end to end: a kddsim dataset is streamed to CSV
//! chunk by chunk, ingested back through the chunked reader in bounded
//! chunks, and a full P/N fit over the chunk-assembled dataset must be
//! **byte-identical** (as a rendered model artifact) to a fit over the
//! same file loaded whole. This pins the entire out-of-core contract:
//! streaming generation, chunked parse with stable dictionary codes, and
//! the fit pipeline on top.

use pnr_core::{ModelArtifact, PnruleLearner, PnruleParams};
use pnr_data::{read_csv_chunked, read_csv_with_report, CsvOptions, Dataset};
use pnr_kddsim::MixStream;
use std::io::Write;
use std::path::PathBuf;

const N_ROWS: usize = 6_000;
const GEN_CHUNK: usize = 512;
const READ_CHUNK: usize = 777; // deliberately misaligned with GEN_CHUNK

/// Streams `N_ROWS` kddsim records to a CSV file without ever holding the
/// full dataset, returning the path and the attribute types for explicit
/// chunked ingest.
fn stream_to_csv(name: &str) -> (PathBuf, CsvOptions) {
    let path = std::env::temp_dir().join(format!("pnr_ooc_{name}_{}.csv", std::process::id()));
    let mut stream = MixStream::train(N_ROWS, 1234);
    let mut file = std::fs::File::create(&path).expect("create csv");
    let mut first = true;
    let mut types = None;
    while let Some(chunk) = stream.next_chunk(GEN_CHUNK) {
        if first {
            file.write_all(pnr_data::write_csv_header_string(&chunk, ',').as_bytes())
                .unwrap();
            types = Some(
                (0..chunk.n_attrs())
                    .map(|a| chunk.schema().attr(a).ty)
                    .collect::<Vec<_>>(),
            );
            first = false;
        }
        file.write_all(pnr_data::write_csv_rows_string(&chunk, ',').as_bytes())
            .unwrap();
    }
    let opts = CsvOptions {
        types,
        ..CsvOptions::default()
    };
    (path, opts)
}

fn artifact_string(data: &Dataset, target: &str, params: &PnruleParams) -> String {
    let code = data.class_code(target).expect("target class present");
    let learner = PnruleLearner::new(params.clone());
    let (model, report) = learner.fit_with_report(data, code);
    ModelArtifact::new(model, params.clone(), report, data.schema().clone())
        .expect("artifact validates")
        .to_file_string()
        .expect("artifact renders")
}

#[test]
fn chunked_ingest_fit_matches_whole_file_fit() {
    let (path, opts) = stream_to_csv("fit");
    let (chunked, chunked_report) =
        read_csv_chunked(&path, &opts, READ_CHUNK).expect("chunked load");
    let (whole, whole_report) = read_csv_with_report(&path, &opts).expect("whole load");
    assert_eq!(chunked.n_rows(), N_ROWS);
    assert_eq!(whole.n_rows(), N_ROWS);
    assert_eq!(chunked_report.n_skipped(), whole_report.n_skipped());
    assert_eq!(
        chunked.schema().fingerprint(),
        whole.schema().fingerprint(),
        "chunked dictionary interning must reproduce whole-file codes"
    );

    // A rare class exercises both phases; default params keep the fit
    // small enough for a debug-profile test.
    let params = PnruleParams::default();
    for target in ["probe", "dos"] {
        assert_eq!(
            artifact_string(&chunked, target, &params),
            artifact_string(&whole, target, &params),
            "fit over chunk-assembled data diverged for target {target}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn chunked_ingest_fit_survives_kill_and_resumes_identically() {
    // The full out-of-core story in one test: stream-generate, chunk-load,
    // then kill the fit after its first checkpoint and resume to the same
    // bytes the uninterrupted fit produces.
    use pnr_core::FitCheckpointStore;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let (path, opts) = stream_to_csv("resume");
    let (data, _) = read_csv_chunked(&path, &opts, READ_CHUNK).expect("chunked load");
    let params = PnruleParams::default();
    let target = data.class_code("probe").expect("probe class");
    let learner = PnruleLearner::new(params.clone());

    let (want_model, want_report) = learner.fit_with_report(&data, target);
    let want = ModelArtifact::new(
        want_model,
        params.clone(),
        want_report,
        data.schema().clone(),
    )
    .unwrap()
    .to_file_string()
    .unwrap();

    let dir = std::env::temp_dir().join(format!("pnr_ooc_ckpt_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let killer = FitCheckpointStore::new(&dir, true).with_kill_after(1);
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        learner.fit_checkpointed(&data, target, &killer)
    }))
    .is_err();
    assert!(crashed, "the crash drill must trip after the first write");

    let resumed = FitCheckpointStore::new(&dir, true);
    let (model, report) = learner.fit_checkpointed(&data, target, &resumed);
    let got = ModelArtifact::new(model, params.clone(), report, data.schema().clone())
        .unwrap()
        .to_file_string()
        .unwrap();
    assert_eq!(got, want, "resumed out-of-core fit diverged");

    std::fs::remove_dir_all(dir).ok();
    std::fs::remove_file(path).ok();
}
