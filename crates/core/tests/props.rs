//! Property-based tests for the PNrule learner's invariants.

use pnr_core::{PnruleLearner, PnruleParams, ScoreMatrix};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_rules::{BinaryClassifier, Condition, Rule, RuleSet};
use proptest::prelude::*;

fn dataset(rows: &[(f64, f64, bool)]) -> (Dataset, Vec<bool>) {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("y", AttrType::Numeric);
    b.add_class("pos");
    b.add_class("neg");
    for &(x, y, p) in rows {
        b.push_row(
            &[Value::num(x), Value::num(y)],
            if p { "pos" } else { "neg" },
            1.0,
        )
        .unwrap();
    }
    let d = b.finish();
    let flags: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
    (d, flags)
}

fn rows() -> impl Strategy<Value = Vec<(f64, f64, bool)>> {
    prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0, prop::bool::ANY), 6..100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scores_are_probabilities(data_rows in rows()) {
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&d, 0);
        for row in 0..d.n_rows() {
            let s = model.score(&d, row);
            prop_assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn p_rules_bound_positive_predictions(data_rows in rows()) {
        // No record can be predicted positive unless some P-rule matches.
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&d, 0);
        for row in 0..d.n_rows() {
            if model.predict(&d, row) {
                prop_assert!(
                    model.p_rules.any_match(&d, row),
                    "positive prediction without a P-rule"
                );
            }
        }
    }

    #[test]
    fn disabled_n_phase_scores_by_p_rule_row_estimate(data_rows in rows()) {
        // Without an N-phase the model has no N-rules, and every covered
        // record's score is its first P-rule's default-column estimate.
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams {
            enable_n_phase: false,
            ..Default::default()
        })
        .fit(&d, 0);
        prop_assert!(model.n_rules.is_empty());
        for row in 0..d.n_rows() {
            match model.p_rules.first_match(&d, row) {
                None => prop_assert_eq!(model.score(&d, row), 0.0),
                Some(p) => {
                    prop_assert_eq!(model.score(&d, row), model.score_matrix.score(p, None));
                }
            }
        }
    }

    #[test]
    fn score_matrix_entries_are_probabilities(
        data_rows in rows(),
        t1 in -20.0f64..20.0,
        t2 in -20.0f64..20.0,
    ) {
        let (d, flags) = dataset(&data_rows);
        let p_rules = RuleSet::from_rules(vec![
            Rule::new(vec![Condition::NumLe { attr: 0, value: t1 }]),
            Rule::new(vec![Condition::NumGt { attr: 0, value: t1 }]),
        ]);
        let n_rules =
            RuleSet::from_rules(vec![Rule::new(vec![Condition::NumLe { attr: 1, value: t2 }])]);
        let sm = ScoreMatrix::build(&d, &flags, &p_rules, &n_rules, 1.0);
        for p in 0..2 {
            for n in [None, Some(0)] {
                let s = sm.score(p, n);
                prop_assert!((0.0..=1.0).contains(&s), "cell score {s}");
            }
        }
    }

    #[test]
    fn max_p_rule_len_is_respected(data_rows in rows(), cap in 1usize..4) {
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams {
            max_p_rule_len: Some(cap),
            ..Default::default()
        })
        .fit(&d, 0);
        for rule in model.p_rules.rules() {
            prop_assert!(rule.len() <= cap, "rule length {} over cap {cap}", rule.len());
        }
    }

    #[test]
    fn trace_is_consistent_with_score(data_rows in rows()) {
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&d, 0);
        for row in 0..d.n_rows() {
            let t = model.trace(&d, row);
            match t.p_rule {
                None => prop_assert_eq!(model.score(&d, row), 0.0),
                Some(p) => {
                    let expected = model.score_matrix.score(p, t.n_rule);
                    prop_assert_eq!(model.score(&d, row), expected);
                }
            }
        }
    }
}
