//! Property-based tests for the PNrule learner's invariants.

use pnr_core::{
    CompiledModel, ModelArtifact, PnruleLearner, PnruleParams, ScoreMatrix, ScoringEngine,
    ServingModel, ServingValue, UnknownKind, UnknownPolicy,
};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_rules::{BinaryClassifier, Condition, Rule, RuleSet};
use proptest::prelude::*;

fn dataset(rows: &[(f64, f64, bool)]) -> (Dataset, Vec<bool>) {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("y", AttrType::Numeric);
    b.add_class("pos");
    b.add_class("neg");
    for &(x, y, p) in rows {
        b.push_row(
            &[Value::num(x), Value::num(y)],
            if p { "pos" } else { "neg" },
            1.0,
        )
        .unwrap();
    }
    let d = b.finish();
    let flags: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
    (d, flags)
}

fn rows() -> impl Strategy<Value = Vec<(f64, f64, bool)>> {
    prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0, prop::bool::ANY), 6..100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scores_are_probabilities(data_rows in rows()) {
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&d, 0);
        for row in 0..d.n_rows() {
            let s = model.score(&d, row);
            prop_assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn p_rules_bound_positive_predictions(data_rows in rows()) {
        // No record can be predicted positive unless some P-rule matches.
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&d, 0);
        for row in 0..d.n_rows() {
            if model.predict(&d, row) {
                prop_assert!(
                    model.p_rules.any_match(&d, row),
                    "positive prediction without a P-rule"
                );
            }
        }
    }

    #[test]
    fn disabled_n_phase_scores_by_p_rule_row_estimate(data_rows in rows()) {
        // Without an N-phase the model has no N-rules, and every covered
        // record's score is its first P-rule's default-column estimate.
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams {
            enable_n_phase: false,
            ..Default::default()
        })
        .fit(&d, 0);
        prop_assert!(model.n_rules.is_empty());
        for row in 0..d.n_rows() {
            match model.p_rules.first_match(&d, row) {
                None => prop_assert_eq!(model.score(&d, row), 0.0),
                Some(p) => {
                    prop_assert_eq!(model.score(&d, row), model.score_matrix.score(p, None));
                }
            }
        }
    }

    #[test]
    fn score_matrix_entries_are_probabilities(
        data_rows in rows(),
        t1 in -20.0f64..20.0,
        t2 in -20.0f64..20.0,
    ) {
        let (d, flags) = dataset(&data_rows);
        let p_rules = RuleSet::from_rules(vec![
            Rule::new(vec![Condition::NumLe { attr: 0, value: t1 }]),
            Rule::new(vec![Condition::NumGt { attr: 0, value: t1 }]),
        ]);
        let n_rules =
            RuleSet::from_rules(vec![Rule::new(vec![Condition::NumLe { attr: 1, value: t2 }])]);
        let sm = ScoreMatrix::build(&d, &flags, &p_rules, &n_rules, 1.0);
        for p in 0..2 {
            for n in [None, Some(0)] {
                let s = sm.score(p, n);
                prop_assert!((0.0..=1.0).contains(&s), "cell score {s}");
            }
        }
    }

    #[test]
    fn max_p_rule_len_is_respected(data_rows in rows(), cap in 1usize..4) {
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams {
            max_p_rule_len: Some(cap),
            ..Default::default()
        })
        .fit(&d, 0);
        for rule in model.p_rules.rules() {
            prop_assert!(rule.len() <= cap, "rule length {} over cap {cap}", rule.len());
        }
    }

    #[test]
    fn trace_is_consistent_with_score(data_rows in rows()) {
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&d, 0);
        for row in 0..d.n_rows() {
            let t = model.trace(&d, row);
            match t.p_rule {
                None => prop_assert_eq!(model.score(&d, row), 0.0),
                Some(p) => {
                    let expected = model.score_matrix.score(p, t.n_rule);
                    prop_assert_eq!(model.score(&d, row), expected);
                }
            }
        }
    }

    #[test]
    fn compiled_model_scores_bit_identically(data_rows in rows()) {
        // The compiled engine's contract: for every trained model and
        // every record, score and trace are *bit-identical* to the
        // interpreter's — not approximately equal.
        let (d, _) = dataset(&data_rows);
        let model = PnruleLearner::new(PnruleParams::default()).fit(&d, 0);
        let compiled = CompiledModel::compile(&model).expect("trained models always compile");
        for row in 0..d.n_rows() {
            let (si, ti) = model.score_with_trace(&d, row);
            let (sc, tc) = compiled.score_with_trace(&d, row);
            prop_assert_eq!(sc.to_bits(), si.to_bits(), "row {}: {} != {}", row, sc, si);
            prop_assert_eq!(tc, ti, "row {}", row);
            prop_assert_eq!(compiled.predict(&d, row), model.predict(&d, row));
        }
    }

    #[test]
    fn serving_engines_agree_under_every_unknown_policy(
        data_rows in rows(),
        masks in prop::collection::vec((prop::bool::ANY, prop::bool::ANY), 24),
    ) {
        // ServingModel with engine=Compiled vs engine=Interpreter must be
        // observationally identical — score bits, decision, abstention,
        // unknown-value count, trace — under each unknown-value policy,
        // including records carrying unknowns in either or both columns.
        let (d, _) = dataset(&data_rows);
        let params = PnruleParams::default();
        let (model, report) = PnruleLearner::new(params.clone()).fit_with_report(&d, 0);
        let artifact = ModelArtifact::new(model, params, report, d.schema().clone()).unwrap();
        for policy in [
            UnknownPolicy::ConditionFalse,
            UnknownPolicy::Abstain,
            UnknownPolicy::Reject,
        ] {
            let fast = ServingModel::new(artifact.clone())
                .with_unknown_policy(policy)
                .with_engine(ScoringEngine::Compiled);
            let slow = ServingModel::new(artifact.clone())
                .with_unknown_policy(policy)
                .with_engine(ScoringEngine::Interpreter);
            prop_assert_eq!(fast.active_engine(), "compiled");
            prop_assert_eq!(slow.active_engine(), "interpreter");
            for (i, &(hide_x, hide_y)) in masks.iter().enumerate() {
                let row = i % d.n_rows();
                let x = if hide_x {
                    ServingValue::Unknown(UnknownKind::NonFinite)
                } else {
                    ServingValue::Num(d.num(0, row))
                };
                let y = if hide_y {
                    ServingValue::Unknown(UnknownKind::UnseenCategory)
                } else {
                    ServingValue::Num(d.num(1, row))
                };
                let values = [x, y];
                match (fast.score_values(&values), slow.score_values(&values)) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a.score.to_bits(), b.score.to_bits(),
                            "policy {:?} values {:?}: {} != {}", policy, &values, a.score, b.score);
                        prop_assert_eq!(a.decision, b.decision);
                        prop_assert_eq!(a.abstained, b.abstained);
                        prop_assert_eq!(a.unknown_values, b.unknown_values);
                        prop_assert_eq!(a.trace, b.trace);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    (a, b) => prop_assert!(false, "engines disagree on outcome: {:?} vs {:?}", a, b),
                }
            }
        }
    }
}
