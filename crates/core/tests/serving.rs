//! Drift fault-injection suite for the serving path.
//!
//! The contract under test: clean same-schema data scores bit-identically
//! to direct model scoring, column reordering and extra columns are
//! transparent, and every injected fault (missing column, unseen
//! category, non-finite numeric, unparsable field) produces the exact
//! behavior its policy specifies — with telemetry counters matching the
//! injected fault counts one for one.

use pnr_core::{
    ArtifactError, MissingColumnPolicy, ModelArtifact, PnruleLearner, PnruleModel, PnruleParams,
    RecordError, ScoreMatrix, ServingModel, ServingValue, UnknownPolicy,
};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_rules::{BinaryClassifier, Condition, Rule, RuleSet};
use pnr_telemetry::{Counter, RecordingSink};
use std::sync::Arc;

/// Training data for the hand-built model: `rare` iff `x > 10` and the
/// service is not `web`. Dictionary order: dos, web, ok.
fn training_data() -> Dataset {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("service", AttrType::Categorical);
    b.add_class("rare");
    b.add_class("rest");
    let rows: &[(f64, &str, &str)] = &[
        (20.0, "dos", "rare"),
        (20.0, "web", "rest"),
        (5.0, "ok", "rest"),
        (15.0, "ok", "rare"),
    ];
    for _ in 0..8 {
        for &(x, svc, class) in rows {
            b.push_row(&[Value::num(x), Value::cat(svc)], class, 1.0)
                .unwrap();
        }
    }
    b.finish()
}

/// A hand-built model with exactly one P-rule (`x > 10`) and one N-rule
/// (`service == web`), so every policy's effect on the score is
/// predictable from first principles.
fn serving_artifact() -> (ModelArtifact, Dataset) {
    let d = training_data();
    let web = d.schema().attr(1).dict.code("web").unwrap();
    let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
    let p_rules = RuleSet::from_rules(vec![Rule::new(vec![Condition::NumGt {
        attr: 0,
        value: 10.0,
    }])]);
    let n_rules = RuleSet::from_rules(vec![Rule::new(vec![Condition::CatEq {
        attr: 1,
        value: web,
    }])]);
    let sm = ScoreMatrix::build(&d, &is_pos, &p_rules, &n_rules, 1.0);
    let model = PnruleModel {
        target: 0,
        threshold: 0.5,
        p_rules,
        n_rules,
        score_matrix: sm,
    };
    let params = PnruleParams::default();
    // The report is provenance metadata the serving path never consults;
    // harvest a real one so the artifact stays fully populated.
    let (_, report) = PnruleLearner::new(params.clone()).fit_with_report(&d, 0);
    let artifact = ModelArtifact::new(model, params, report, d.schema().clone()).unwrap();
    (artifact, d)
}

/// Score of a record matching the P-rule and no N-rule.
fn p_no_n_score(artifact: &ModelArtifact) -> f64 {
    artifact.model.score_matrix.score(0, None)
}

/// Score of a record matching both the P-rule and the N-rule.
fn p_n_score(artifact: &ModelArtifact) -> f64 {
    artifact.model.score_matrix.score(0, Some(0))
}

#[test]
fn policy_spellings_round_trip() {
    for policy in [
        UnknownPolicy::ConditionFalse,
        UnknownPolicy::Abstain,
        UnknownPolicy::Reject,
    ] {
        assert_eq!(UnknownPolicy::parse(policy.name()), Some(policy));
    }
    assert_eq!(
        UnknownPolicy::parse("condition-false"),
        Some(UnknownPolicy::ConditionFalse)
    );
    assert_eq!(UnknownPolicy::default(), UnknownPolicy::ConditionFalse);
    assert_eq!(UnknownPolicy::parse("never-heard-of-it"), None);
    for policy in [MissingColumnPolicy::Reject, MissingColumnPolicy::Default] {
        assert_eq!(MissingColumnPolicy::parse(policy.name()), Some(policy));
    }
    assert_eq!(MissingColumnPolicy::default(), MissingColumnPolicy::Reject);
    assert_eq!(MissingColumnPolicy::parse("panic"), None);
}

#[test]
fn clean_fields_score_bit_identically_to_the_model() {
    let (artifact, d) = serving_artifact();
    let reference = artifact.clone();
    let serving = ServingModel::new(artifact);
    let map = serving.reconcile_header(&["x", "service"]).unwrap();
    assert_eq!(map.n_missing(), 0);
    assert_eq!(map.n_extra(), 0);
    for row in 0..d.n_rows() {
        let fields = [d.num(0, row).to_string(), d.cat_name(1, row).to_string()];
        let rec = serving.score_fields(&fields, &map).unwrap();
        assert_eq!(
            rec.score.to_bits(),
            reference.model.score(&d, row).to_bits(),
            "row {row}"
        );
        assert_eq!(rec.decision, reference.model.predict(&d, row));
        assert_eq!(rec.trace, reference.model.trace(&d, row));
        assert!(!rec.abstained);
        assert_eq!(rec.unknown_values, 0);
        // the pre-reconciled entry point agrees
        let values = [
            ServingValue::Num(d.num(0, row)),
            ServingValue::Code(d.cat(1, row)),
        ];
        let rec2 = serving.score_values(&values).unwrap();
        assert_eq!(rec2.score.to_bits(), rec.score.to_bits());
    }
}

#[test]
fn reordered_and_extra_columns_are_transparent() {
    let (artifact, _) = serving_artifact();
    let expected_p_no_n = p_no_n_score(&artifact);
    let expected_p_n = p_n_score(&artifact);
    let serving = ServingModel::new(artifact);
    let map = serving
        .reconcile_header(&["duration", "service", "x"])
        .unwrap();
    assert_eq!(map.n_missing(), 0);
    assert_eq!(map.n_extra(), 1, "the unknown `duration` column is ignored");
    let rec = serving.score_fields(&["999", "dos", "20"], &map).unwrap();
    assert_eq!(rec.score.to_bits(), expected_p_no_n.to_bits());
    let rec = serving.score_fields(&["999", "web", "20"], &map).unwrap();
    assert_eq!(rec.score.to_bits(), expected_p_n.to_bits());
    let rec = serving.score_fields(&["999", "ok", "5"], &map).unwrap();
    assert_eq!(rec.score, 0.0, "no P-rule match scores zero");
}

#[test]
fn missing_column_is_rejected_by_default() {
    let (artifact, _) = serving_artifact();
    let serving = ServingModel::new(artifact);
    match serving.reconcile_header(&["x"]) {
        Err(ArtifactError::SchemaMismatch { detail }) => {
            assert!(detail.contains("service"), "{detail}");
            assert!(detail.contains("missing"), "{detail}");
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
}

#[test]
fn defaulted_missing_column_is_an_unknown_value() {
    let (artifact, _) = serving_artifact();
    let expected = p_no_n_score(&artifact);
    let sink = Arc::new(RecordingSink::new());
    let serving = ServingModel::new(artifact)
        .with_missing_policy(MissingColumnPolicy::Default)
        .with_sink(sink.clone());
    let map = serving.reconcile_header(&["x"]).unwrap();
    assert_eq!(map.n_missing(), 1);
    // ConditionFalse: the P-rule still fires on the known x, the N-rule
    // cannot fire on the missing service — the no-N cell's score.
    let rec = serving.score_fields(&["20"], &map).unwrap();
    assert_eq!(rec.score.to_bits(), expected.to_bits());
    assert_eq!(rec.unknown_values, 1);
    assert!(!rec.abstained);
    // A missing column is not a data fault, so neither hit counter moves.
    assert_eq!(sink.value(Counter::UnseenCategoryHits), 0);
    assert_eq!(sink.value(Counter::NanNumericHits), 0);
    assert_eq!(sink.value(Counter::RowsScored), 1);
}

#[test]
fn unseen_category_behavior_per_policy() {
    // ConditionFalse (the paper-consistent default): the categorical
    // condition simply never matches, so the record lands in the no-N cell.
    let (artifact, _) = serving_artifact();
    let expected = p_no_n_score(&artifact);
    let sink = Arc::new(RecordingSink::new());
    let serving = ServingModel::new(artifact).with_sink(sink.clone());
    let map = serving.reconcile_header(&["x", "service"]).unwrap();
    let rec = serving.score_fields(&["20", "quic"], &map).unwrap();
    assert_eq!(rec.score.to_bits(), expected.to_bits());
    assert_eq!(rec.unknown_values, 1);
    assert!(!rec.abstained);
    assert_eq!(sink.value(Counter::UnseenCategoryHits), 1);
    assert_eq!(sink.value(Counter::RowsScored), 1);
    assert_eq!(sink.value(Counter::RowsQuarantined), 0);

    // Abstain: the record is counted as scored but gets the no-P-rule
    // score (0.0) and the abstained trace flag.
    let (artifact, _) = serving_artifact();
    let sink = Arc::new(RecordingSink::new());
    let serving = ServingModel::new(artifact)
        .with_unknown_policy(UnknownPolicy::Abstain)
        .with_sink(sink.clone());
    let map = serving.reconcile_header(&["x", "service"]).unwrap();
    let rec = serving.score_fields(&["20", "quic"], &map).unwrap();
    assert_eq!(rec.score, 0.0);
    assert!(!rec.decision);
    assert!(rec.abstained);
    assert_eq!(rec.trace.p_rule, None);
    assert_eq!(rec.unknown_values, 1);
    assert_eq!(sink.value(Counter::UnseenCategoryHits), 1);
    assert_eq!(sink.value(Counter::RowsScored), 1);
    assert_eq!(sink.value(Counter::RowsQuarantined), 0);

    // Reject: a typed per-record error, quarantined, never scored.
    let (artifact, _) = serving_artifact();
    let sink = Arc::new(RecordingSink::new());
    let serving = ServingModel::new(artifact)
        .with_unknown_policy(UnknownPolicy::Reject)
        .with_sink(sink.clone());
    let map = serving.reconcile_header(&["x", "service"]).unwrap();
    match serving.score_fields(&["20", "quic"], &map) {
        Err(RecordError::UnknownRejected { unknown_values: 1 }) => {}
        other => panic!("expected UnknownRejected, got {other:?}"),
    }
    assert_eq!(sink.value(Counter::UnseenCategoryHits), 1);
    assert_eq!(sink.value(Counter::RowsScored), 0);
    assert_eq!(sink.value(Counter::RowsQuarantined), 1);
}

#[test]
fn non_finite_numerics_are_unknown_but_unparsable_is_structural() {
    let (artifact, _) = serving_artifact();
    let sink = Arc::new(RecordingSink::new());
    let serving = ServingModel::new(artifact).with_sink(sink.clone());
    let map = serving.reconcile_header(&["x", "service"]).unwrap();
    // NaN and inf parse as numbers but carry no information the model was
    // trained on: unknown values, so under ConditionFalse the numeric
    // P-rule cannot fire and the record scores 0.0 with an empty trace.
    for raw in ["NaN", "inf", "-inf"] {
        let rec = serving.score_fields(&[raw, "dos"], &map).unwrap();
        assert_eq!(rec.score, 0.0, "{raw}");
        assert_eq!(rec.trace.p_rule, None);
        assert_eq!(rec.unknown_values, 1);
    }
    assert_eq!(sink.value(Counter::NanNumericHits), 3);
    assert_eq!(sink.value(Counter::RowsScored), 3);
    // An unparsable numeric field is not drift, it is a broken record:
    // structural quarantine, like the CSV loader.
    match serving.score_fields(&["wide", "dos"], &map) {
        Err(RecordError::Structural { detail }) => {
            assert!(detail.contains("not a number"), "{detail}");
        }
        other => panic!("expected Structural, got {other:?}"),
    }
    // So is a record whose field count does not match the header.
    match serving.score_fields(&["20"], &map) {
        Err(RecordError::Structural { detail }) => {
            assert!(detail.contains("field"), "{detail}");
        }
        other => panic!("expected Structural, got {other:?}"),
    }
    assert_eq!(sink.value(Counter::RowsQuarantined), 2);
}

#[test]
fn dataset_reconciliation_translates_dictionary_codes() {
    let (artifact, _) = serving_artifact();
    let expected_p_no_n = p_no_n_score(&artifact);
    let expected_p_n = p_n_score(&artifact);
    let serving = ServingModel::new(artifact);
    // Incoming dataset: columns reordered, an extra column, the service
    // dictionary interned in a different order, plus a novel category.
    let mut b = DatasetBuilder::new();
    b.add_attribute("service", AttrType::Categorical);
    b.add_attribute("duration", AttrType::Numeric);
    b.add_attribute("x", AttrType::Numeric);
    b.add_class("whatever");
    let rows: &[(&str, f64)] = &[
        ("web", 20.0),  // P + N
        ("dos", 20.0),  // P, no N
        ("ok", 5.0),    // no P
        ("quic", 20.0), // novel category: unseen → no N under ConditionFalse
    ];
    for &(svc, x) in rows {
        b.push_row(
            &[Value::cat(svc), Value::num(1.0), Value::num(x)],
            "whatever",
            1.0,
        )
        .unwrap();
    }
    let incoming = b.finish();
    let map = serving.reconcile_dataset(&incoming).unwrap();
    let score = |row: usize| serving.score_dataset_row(&incoming, &map, row).unwrap();
    assert_eq!(score(0).score.to_bits(), expected_p_n.to_bits());
    assert_eq!(score(1).score.to_bits(), expected_p_no_n.to_bits());
    assert_eq!(score(2).score, 0.0);
    let novel = score(3);
    assert_eq!(novel.score.to_bits(), expected_p_no_n.to_bits());
    assert_eq!(novel.unknown_values, 1);
}

#[test]
fn dataset_type_drift_is_a_schema_mismatch() {
    let (artifact, _) = serving_artifact();
    let serving = ServingModel::new(artifact);
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_attribute("service", AttrType::Numeric); // drifted type
    b.add_class("whatever");
    b.push_row(&[Value::num(1.0), Value::num(2.0)], "whatever", 1.0)
        .unwrap();
    let incoming = b.finish();
    match serving.reconcile_dataset(&incoming) {
        Err(ArtifactError::SchemaMismatch { detail }) => {
            assert!(detail.contains("service"), "{detail}");
            assert!(detail.contains("trained as categorical"), "{detail}");
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
}

#[test]
fn defaulted_missing_dataset_column_is_an_unknown_value() {
    let (artifact, _) = serving_artifact();
    let expected = p_no_n_score(&artifact);
    let serving = ServingModel::new(artifact).with_missing_policy(MissingColumnPolicy::Default);
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_class("whatever");
    b.push_row(&[Value::num(20.0)], "whatever", 1.0).unwrap();
    let incoming = b.finish();
    let map = serving.reconcile_dataset(&incoming).unwrap();
    let rec = serving.score_dataset_row(&incoming, &map, 0).unwrap();
    assert_eq!(rec.score.to_bits(), expected.to_bits());
    assert_eq!(rec.unknown_values, 1);
    // ... while the default missing policy rejects the same dataset.
    let serving = serving.with_missing_policy(MissingColumnPolicy::Reject);
    assert!(matches!(
        serving.reconcile_dataset(&incoming),
        Err(ArtifactError::SchemaMismatch { .. })
    ));
}

#[test]
fn counters_match_injected_fault_counts() {
    let (artifact, _) = serving_artifact();
    let sink = Arc::new(RecordingSink::new());
    let serving = ServingModel::new(artifact).with_sink(sink.clone());
    let map = serving.reconcile_header(&["x", "service"]).unwrap();
    // A stream with a known fault census:
    //   3 clean, 2 unseen-category, 1 NaN, 1 carrying both faults,
    //   1 unparsable numeric, 1 wrong field count.
    let stream: &[&[&str]] = &[
        &["20", "dos"],
        &["20", "web"],
        &["5", "ok"],
        &["20", "quic"],
        &["20", "gopher"],
        &["NaN", "dos"],
        &["inf", "telnet"],
        &["wide", "dos"],
        &["20"],
    ];
    let mut scored = 0usize;
    let mut quarantined = 0usize;
    for fields in stream {
        match serving.score_fields(fields, &map) {
            Ok(_) => scored += 1,
            Err(_) => quarantined += 1,
        }
    }
    assert_eq!(scored, 7);
    assert_eq!(quarantined, 2);
    assert_eq!(sink.value(Counter::RowsScored), 7);
    assert_eq!(sink.value(Counter::RowsQuarantined), 2);
    assert_eq!(sink.value(Counter::UnseenCategoryHits), 3);
    assert_eq!(sink.value(Counter::NanNumericHits), 2);
    // A caller-side quarantine (e.g. the CSV reader dropped a malformed
    // line before scoring) folds into the same counter.
    serving.record_structural_quarantine();
    assert_eq!(sink.value(Counter::RowsQuarantined), 3);
}
