//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure the performance-critical paths of the workspace:
//! condition search (with and without the range scan), full model induction
//! for all three learners, ScoreMatrix construction, classification
//! throughput, and dataset generation. Run with `cargo bench`.

use pnr_data::Dataset;
use pnr_synth::numeric::NumericModelConfig;
use pnr_synth::SynthScale;

/// A small nsyn3-model dataset (benchmark workhorse).
pub fn nsyn3_dataset(n_records: usize) -> Dataset {
    let cfg = NumericModelConfig::nsyn(3);
    let scale = SynthScale {
        n_records,
        target_frac: 0.01,
    };
    pnr_synth::numeric::generate(&cfg, &scale, 42)
}

/// A small simulated-KDD dataset.
pub fn kdd_dataset(n_records: usize) -> Dataset {
    pnr_kddsim::generate_train(n_records, 42)
}

/// Target flags for the synthetic target class.
pub fn target_flags(data: &Dataset, class: &str) -> Vec<bool> {
    let code = data.class_code(class).expect("class exists");
    (0..data.n_rows()).map(|r| data.label(r) == code).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let d = nsyn3_dataset(2_000);
        assert_eq!(d.n_rows(), 2_000);
        let flags = target_flags(&d, "C");
        assert_eq!(flags.iter().filter(|&&f| f).count(), 20);
        let k = kdd_dataset(1_000);
        assert_eq!(k.n_rows(), 1_000);
    }
}
