//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure the performance-critical paths of the workspace:
//! condition search (with and without the range scan), full model induction
//! for all three learners, ScoreMatrix construction, classification
//! throughput, and dataset generation. Run with `cargo bench`.

use pnr_data::Dataset;
use pnr_synth::numeric::NumericModelConfig;
use pnr_synth::SynthScale;
use std::path::Path;

/// Whether a baseline writer may overwrite the committed baseline file.
///
/// A baseline regenerated on a *less* parallel machine silently erases the
/// multi-core measurements (and their speedup claims) with strictly less
/// informative numbers — the 1-core-clobbers-8-core failure mode. The
/// writer must refuse unless the current machine is at least as parallel
/// as the recorded one, or the user explicitly passes `--force`.
/// `existing_parallelism` is `None` when there is no baseline on disk (or
/// it carries no reading), which always allows the write.
pub fn overwrite_allowed(existing_parallelism: Option<u64>, current: u64, force: bool) -> bool {
    force || existing_parallelism.is_none_or(|previous| current >= previous)
}

/// The `detected_parallelism` recorded in an existing baseline JSON file,
/// or `None` when the file is absent, unparseable, or lacks the field —
/// all of which mean "nothing worth protecting".
pub fn recorded_parallelism(path: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    match serde_json::parse(&text).ok()?.get("detected_parallelism")? {
        serde_json::Value::U64(n) => Some(*n),
        _ => None,
    }
}

/// A small nsyn3-model dataset (benchmark workhorse).
pub fn nsyn3_dataset(n_records: usize) -> Dataset {
    let cfg = NumericModelConfig::nsyn(3);
    let scale = SynthScale {
        n_records,
        target_frac: 0.01,
    };
    pnr_synth::numeric::generate(&cfg, &scale, 42)
}

/// A small simulated-KDD dataset.
pub fn kdd_dataset(n_records: usize) -> Dataset {
    pnr_kddsim::generate_train(n_records, 42)
}

/// Target flags for the synthetic target class.
pub fn target_flags(data: &Dataset, class: &str) -> Vec<bool> {
    let code = data.class_code(class).expect("class exists");
    (0..data.n_rows()).map(|r| data.label(r) == code).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn less_parallel_machine_cannot_clobber_the_baseline() {
        assert!(!overwrite_allowed(Some(8), 1, false), "1 core vs 8: refuse");
        assert!(!overwrite_allowed(Some(8), 7, false));
    }

    #[test]
    fn equal_or_more_parallel_machine_may_overwrite() {
        assert!(overwrite_allowed(Some(8), 8, false));
        assert!(overwrite_allowed(Some(8), 16, false));
        assert!(overwrite_allowed(None, 1, false), "no baseline: allow");
    }

    #[test]
    fn force_overrides_the_guard() {
        assert!(overwrite_allowed(Some(64), 1, true));
    }

    #[test]
    fn recorded_parallelism_reads_the_field_and_tolerates_garbage() {
        let dir = std::env::temp_dir().join(format!("pnr_bench_guard_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, r#"{"bench": "x", "detected_parallelism": 8}"#).unwrap();
        assert_eq!(recorded_parallelism(&good), Some(8));
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").unwrap();
        assert_eq!(recorded_parallelism(&bad), None);
        let missing_field = dir.join("missing.json");
        std::fs::write(&missing_field, r#"{"bench": "x"}"#).unwrap();
        assert_eq!(recorded_parallelism(&missing_field), None);
        assert_eq!(recorded_parallelism(&dir.join("absent.json")), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fixtures_build() {
        let d = nsyn3_dataset(2_000);
        assert_eq!(d.n_rows(), 2_000);
        let flags = target_flags(&d, "C");
        assert_eq!(flags.iter().filter(|&&f| f).count(), 20);
        let k = kdd_dataset(1_000);
        assert_eq!(k.n_rows(), 1_000);
    }
}
