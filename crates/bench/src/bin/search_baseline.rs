//! Emits `BENCH_search.json` — a committed wall-clock baseline of the
//! condition search, so regressions in the scan or the view-projection
//! machinery show up as a diff against a known-good measurement.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p pnr-bench --bin search_baseline
//! ```
//!
//! Numbers are machine-dependent; the committed file records the machine's
//! core count alongside the timings so speedups are interpreted in context.
//! The interesting *relative* quantities are:
//!
//! * `threaded_speedup` — parallel over sequential scan on the same view
//!   (bounded by attribute count and available cores);
//! * `restricted_5pct_speedup` — full-view scan cost over the cost on a 5%
//!   restricted view (the view-proportional win; the pre-projection scan
//!   paid a full mask pass here regardless of view size).

use pnr_bench::{nsyn3_dataset, target_flags};
use pnr_rules::{find_best_condition, EvalMetric, SearchOptions, TaskView};
use std::time::Instant;

/// Mean/min wall-clock nanoseconds of `f` over `iters` timed runs (after
/// warm-up).
fn time_ns(iters: usize, mut f: impl FnMut()) -> (f64, f64) {
    for _ in 0..3 {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, min)
}

fn main() {
    let n = 50_000usize;
    let data = nsyn3_dataset(n);
    let flags = target_flags(&data, "C");
    let view = TaskView::full(&data, &flags, data.weights());
    // Warm the projections so the scan itself is measured.
    for a in 0..data.n_attrs() {
        let _ = view.projection(a);
    }
    let iters = 30;

    let sequential = SearchOptions {
        parallel: false,
        ..Default::default()
    };
    let threaded = SearchOptions {
        parallel_min_cells: 0,
        ..Default::default()
    };
    let (seq_mean, seq_min) = time_ns(iters, || {
        find_best_condition(&view, EvalMetric::ZNumber, &sequential).expect("candidate");
    });
    let (par_mean, par_min) = time_ns(iters, || {
        find_best_condition(&view, EvalMetric::ZNumber, &threaded).expect("candidate");
    });

    // A 5% restricted view with warm projections: the scan must now be
    // proportional to the view, not the dataset.
    let small = view.restricted_to(view.rows.filter(|r| r % 20 == 0));
    for a in 0..data.n_attrs() {
        let _ = small.projection(a);
    }
    let (small_mean, small_min) = time_ns(iters, || {
        find_best_condition(&small, EvalMetric::ZNumber, &sequential).expect("candidate");
    });

    // Cold derived view: restriction + lazy projection build + scan, the
    // sequential-covering inner-loop pattern.
    let (derive_mean, derive_min) = time_ns(iters, || {
        let v = view.restricted_to(view.rows.filter(|r| r % 20 == 0));
        find_best_condition(&v, EvalMetric::ZNumber, &sequential).expect("candidate");
    });

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let json = serde_json::to_string_pretty(
        &serde_json::parse(&format!(
            r#"{{
  "bench": "find_best_condition",
  "dataset": "nsyn3",
  "rows": {n},
  "attrs": {attrs},
  "cores": {cores},
  "iters": {iters},
  "full_view_sequential_ns": {{"mean": {seq_mean:.0}, "min": {seq_min:.0}}},
  "full_view_threaded_ns": {{"mean": {par_mean:.0}, "min": {par_min:.0}}},
  "restricted_5pct_warm_ns": {{"mean": {small_mean:.0}, "min": {small_min:.0}}},
  "restricted_5pct_cold_ns": {{"mean": {derive_mean:.0}, "min": {derive_min:.0}}},
  "threaded_speedup": {thr_speedup:.3},
  "restricted_5pct_speedup": {view_speedup:.3}
}}"#,
            attrs = data.n_attrs(),
            thr_speedup = seq_mean / par_mean,
            view_speedup = seq_mean / small_mean,
        ))
        .expect("baseline JSON is well-formed"),
    )
    .expect("serialize");
    std::fs::write("BENCH_search.json", json + "\n").expect("write BENCH_search.json");
    println!(
        "BENCH_search.json written: seq {:.2} ms, threaded {:.2} ms ({}x), 5% view {:.3} ms ({}x)",
        seq_mean / 1e6,
        par_mean / 1e6,
        format_args!("{:.2}", seq_mean / par_mean),
        small_mean / 1e6,
        format_args!("{:.1}", seq_mean / small_mean),
    );
}
