//! Emits `BENCH_search.json` — a committed wall-clock baseline of the
//! condition search, so regressions in the scan or the view-projection
//! machinery show up as a diff against a known-good measurement.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p pnr-bench --bin search_baseline
//! ```
//!
//! Regenerating from a machine *less* parallel than the one that produced
//! the committed baseline is refused (it would clobber real multi-core
//! measurements with `threaded_speedup: null`); pass `--force` to
//! overwrite anyway.
//!
//! Numbers are machine-dependent; the committed file records the machine's
//! detected parallelism alongside the timings so speedups are interpreted
//! in context. The interesting *relative* quantities are:
//!
//! * `threaded_speedup` — parallel over sequential scan on the same view
//!   (bounded by attribute count and available cores). On a single
//!   detected core this is recorded as `null`: the threaded timing then
//!   measures thread overhead, not parallelism, and labelling it a
//!   speedup would be dishonest;
//! * `restricted_5pct_speedup` — full-view scan cost over the cost on a 5%
//!   restricted view (the view-proportional win; the pre-projection scan
//!   paid a full mask pass here regardless of view size).
//!
//! A `telemetry` block records search-effort counters (candidates
//! evaluated, warm/cold `ViewIndex` projections) from one instrumented
//! un-timed run of each scan, so the baseline pins work done, not just
//! wall-clock.

use pnr_bench::{nsyn3_dataset, target_flags};
use pnr_rules::{find_best_condition, EvalMetric, SearchOptions, TaskView};
use pnr_telemetry::{Counter, RecordingSink};
use std::sync::Arc;
use std::time::Instant;

/// The `threaded_speedup` JSON value and its companion note. With fewer
/// than two detected cores the "threaded" run only measures thread
/// overhead, so the value is the JSON literal `null` and the note says
/// why; with real parallelism it is the sequential/threaded ratio.
fn speedup_field(cores: usize, seq_mean_ns: f64, par_mean_ns: f64) -> (String, String) {
    if cores >= 2 {
        (
            format!("{:.3}", seq_mean_ns / par_mean_ns),
            "parallel over sequential scan on the same view".to_string(),
        )
    } else {
        (
            "null".to_string(),
            format!(
                "detected parallelism is {cores}: the threaded timing measures \
                 thread overhead, not parallelism, so no speedup is claimed"
            ),
        )
    }
}

/// Mean/min wall-clock nanoseconds of `f` over `iters` timed runs (after
/// warm-up).
fn time_ns(iters: usize, mut f: impl FnMut()) -> (f64, f64) {
    for _ in 0..3 {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, min)
}

fn main() {
    // Guard first: refuse to clobber a more-parallel machine's baseline
    // before spending minutes measuring (see `pnr_bench::overwrite_allowed`).
    let force = std::env::args().any(|a| a == "--force");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let out = std::path::Path::new("BENCH_search.json");
    let recorded = pnr_bench::recorded_parallelism(out);
    if !pnr_bench::overwrite_allowed(recorded, cores as u64, force) {
        eprintln!(
            "refusing to overwrite {}: it was recorded with detected_parallelism {} \
             but this machine has {}; regenerating here would erase the multi-core \
             measurements. Pass --force to overwrite anyway.",
            out.display(),
            recorded.unwrap_or(0),
            cores,
        );
        std::process::exit(1);
    }

    let n = 50_000usize;
    let data = nsyn3_dataset(n);
    let flags = target_flags(&data, "C");
    let view = TaskView::full(&data, &flags, data.weights());
    // Warm the projections so the scan itself is measured.
    for a in 0..data.n_attrs() {
        let _ = view.projection(a);
    }
    let iters = 30;

    let sequential = SearchOptions {
        parallel: false,
        ..Default::default()
    };
    let threaded = SearchOptions {
        parallel_min_cells: 0,
        ..Default::default()
    };
    let (seq_mean, seq_min) = time_ns(iters, || {
        find_best_condition(&view, EvalMetric::ZNumber, &sequential).expect("candidate");
    });
    let (par_mean, par_min) = time_ns(iters, || {
        find_best_condition(&view, EvalMetric::ZNumber, &threaded).expect("candidate");
    });

    // A 5% restricted view with warm projections: the scan must now be
    // proportional to the view, not the dataset.
    let small = view.restricted_to(view.rows.filter(|r| r % 20 == 0));
    for a in 0..data.n_attrs() {
        let _ = small.projection(a);
    }
    let (small_mean, small_min) = time_ns(iters, || {
        find_best_condition(&small, EvalMetric::ZNumber, &sequential).expect("candidate");
    });

    // Cold derived view: restriction + lazy projection build + scan, the
    // sequential-covering inner-loop pattern.
    let (derive_mean, derive_min) = time_ns(iters, || {
        let v = view.restricted_to(view.rows.filter(|r| r % 20 == 0));
        find_best_condition(&v, EvalMetric::ZNumber, &sequential).expect("candidate");
    });

    // One instrumented, un-timed run of each scan records the search
    // effort behind the wall-clock numbers. Separate sinks keep the
    // full-view and restricted-view counters apart.
    let full_sink = Arc::new(RecordingSink::new());
    let full_instrumented = SearchOptions {
        parallel: false,
        sink: full_sink.clone(),
        ..Default::default()
    };
    find_best_condition(&view, EvalMetric::ZNumber, &full_instrumented).expect("candidate");
    let cold_sink = Arc::new(RecordingSink::new());
    let cold_instrumented = SearchOptions {
        parallel: false,
        sink: cold_sink.clone(),
        ..Default::default()
    };
    let cold_view = view.restricted_to(view.rows.filter(|r| r % 20 == 0));
    find_best_condition(&cold_view, EvalMetric::ZNumber, &cold_instrumented).expect("candidate");

    // Detected parallelism, honestly: a single-core run cannot measure a
    // threaded speedup (only thread overhead), so the ratio is withheld.
    let (thr_speedup, thr_note) = speedup_field(cores, seq_mean, par_mean);
    let json = serde_json::to_string_pretty(
        &serde_json::parse(&format!(
            r#"{{
  "bench": "find_best_condition",
  "dataset": "nsyn3",
  "rows": {n},
  "attrs": {attrs},
  "detected_parallelism": {cores},
  "iters": {iters},
  "full_view_sequential_ns": {{"mean": {seq_mean:.0}, "min": {seq_min:.0}}},
  "full_view_threaded_ns": {{"mean": {par_mean:.0}, "min": {par_min:.0}}},
  "restricted_5pct_warm_ns": {{"mean": {small_mean:.0}, "min": {small_min:.0}}},
  "restricted_5pct_cold_ns": {{"mean": {derive_mean:.0}, "min": {derive_min:.0}}},
  "threaded_speedup": {thr_speedup},
  "threaded_note": "{thr_note}",
  "restricted_5pct_speedup": {view_speedup:.3},
  "telemetry": {{
    "full_view_conditions_evaluated": {full_cond},
    "full_view_warm_hits": {full_warm},
    "full_view_cold_builds": {full_cold},
    "restricted_5pct_conditions_evaluated": {r_cond},
    "restricted_5pct_warm_hits": {r_warm},
    "restricted_5pct_cold_builds": {r_cold}
  }}
}}"#,
            attrs = data.n_attrs(),
            view_speedup = seq_mean / small_mean,
            full_cond = full_sink.value(Counter::ConditionsEvaluated),
            full_warm = full_sink.value(Counter::ViewWarmHits),
            full_cold = full_sink.value(Counter::ViewColdBuilds),
            r_cond = cold_sink.value(Counter::ConditionsEvaluated),
            r_warm = cold_sink.value(Counter::ViewWarmHits),
            r_cold = cold_sink.value(Counter::ViewColdBuilds),
        ))
        .expect("baseline JSON is well-formed"),
    )
    .expect("serialize");
    std::fs::write("BENCH_search.json", json + "\n").expect("write BENCH_search.json");
    let thr_label = if cores >= 2 {
        format!("{:.2}x", seq_mean / par_mean)
    } else {
        "speedup withheld on 1 core".to_string()
    };
    println!(
        "BENCH_search.json written: seq {:.2} ms, threaded {:.2} ms ({}), 5% view {:.3} ms ({}x)",
        seq_mean / 1e6,
        par_mean / 1e6,
        thr_label,
        small_mean / 1e6,
        format_args!("{:.1}", seq_mean / small_mean),
    );
}

#[cfg(test)]
mod tests {
    use super::speedup_field;

    #[test]
    fn single_core_run_refuses_to_claim_a_threaded_speedup() {
        let (value, note) = speedup_field(1, 6_000_000.0, 5_000_000.0);
        assert_eq!(value, "null");
        assert!(note.contains("thread overhead"), "{note}");
    }

    #[test]
    fn multi_core_run_reports_the_ratio() {
        let (value, note) = speedup_field(8, 6_000_000.0, 3_000_000.0);
        assert_eq!(value, "2.000");
        assert!(!note.contains("overhead"), "{note}");
    }
}
