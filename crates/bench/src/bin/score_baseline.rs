//! Emits `BENCH_score.json` — a committed wall-clock baseline of the
//! scoring path, interpreter versus compiled engine, so regressions in
//! either (or in the compiled engine's speedup claim) show up as a diff
//! against a known-good measurement.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p pnr-bench --bin score_baseline
//! ```
//!
//! Two workloads, both scoring every row of a 50k-record simulated-KDD
//! batch:
//!
//! * `trained_r2l` — the model `PnruleLearner` actually learns for the
//!   rare `r2l` class. On kddsim that model is tiny (a few rules), so
//!   both engines are bound by per-row overhead and the ratio hovers
//!   near 1: the honest small-model number.
//! * `rule_rich` — a model at the paper's full-KDD'99 scale (tens of
//!   P-rules, a dozen N-rules, conjunctions of 2–3 conditions), built by
//!   seeding each rule's conditions from actual *target-class* data rows
//!   the way sequential covering does. Most rows match no rule, which is
//!   exactly the rare-class serving shape: the interpreter must walk
//!   every rule to conclude "no match", while the compiled engine's
//!   per-attribute dispatch tables kill all candidates in a few masked
//!   AND steps.
//!
//! Each workload records interpreter and compiled batch timings, rows/sec
//! for both, the compiled single-row (unbatched) latency, and the
//! interpreter/compiled `speedup`. The headline claim — compiled ≥5×
//! interpreter rows/sec — attaches to `rule_rich`. Before any timing, the
//! run verifies the two engines score every row of both workloads
//! **bit-identically** — a baseline for a wrong engine would be worse
//! than no baseline.

use pnr_bench::kdd_dataset;
use pnr_core::{CompiledModel, PnruleLearner, PnruleModel, PnruleParams, ScoreMatrix};
use pnr_data::{AttrType, Dataset};
use pnr_rules::{BinaryClassifier, Condition, Rule, RuleSet};
use std::time::Instant;

/// Mean/min wall-clock nanoseconds of `f` over `iters` timed runs (after
/// warm-up).
fn time_ns(iters: usize, mut f: impl FnMut()) -> (f64, f64) {
    for _ in 0..3 {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, min)
}

/// Rules in the paper's KDD signature shape: each rule pins the
/// categorical signature of one concrete "seed" record of the *target
/// class* — `service = X AND flag = Y` (every third rule also pins the
/// protocol) — and refines it with one numeric band around the seed's
/// value of a counter attribute (`duration`, `src_bytes` or `count`).
/// This is the shape PNrule's covering loop learns on KDD'99: rules
/// grown from rare-class records carry that class's distinctive
/// signatures, so most rows of a mixed batch match no rule — the
/// rare-class serving profile.
fn seeded_rules(data: &Dataset, seeds: &[usize], n_rules: usize, salt: usize) -> RuleSet {
    const SERVICE: usize = 1;
    const FLAG: usize = 2;
    const PROTOCOL: usize = 0;
    const NUMERIC_POOL: [usize; 3] = [3, 4, 10]; // duration, src_bytes, count
    debug_assert!(matches!(
        data.schema().attr(SERVICE).ty,
        AttrType::Categorical
    ));
    let mut rules = Vec::with_capacity(n_rules);
    for i in 0..n_rules {
        let row = seeds[(i * 769 + salt) % seeds.len()];
        let mut conds = vec![
            Condition::CatEq {
                attr: SERVICE,
                value: data.cat(SERVICE, row),
            },
            Condition::CatEq {
                attr: FLAG,
                value: data.cat(FLAG, row),
            },
        ];
        if i % 3 == 0 {
            conds.push(Condition::CatEq {
                attr: PROTOCOL,
                value: data.cat(PROTOCOL, row),
            });
        }
        let attr = NUMERIC_POOL[i % NUMERIC_POOL.len()];
        let v = data.num(attr, row);
        let w = (v.abs() * 0.25).max(0.5);
        conds.push(Condition::NumRange {
            attr,
            lo: v - w,
            hi: v + w,
        });
        rules.push(Rule::new(conds));
    }
    RuleSet::from_rules(rules)
}

/// The paper-scale stress model: 64 signature-shaped P-rules and 16
/// N-rules, scored through a real `ScoreMatrix` built on the data.
fn rule_rich_model(data: &Dataset, target: u32) -> PnruleModel {
    let flags: Vec<bool> = (0..data.n_rows())
        .map(|r| data.label(r) == target)
        .collect();
    let seeds: Vec<usize> = (0..data.n_rows()).filter(|&r| flags[r]).collect();
    let p_rules = seeded_rules(data, &seeds, 64, 17);
    let n_rules = seeded_rules(data, &seeds, 16, 4211);
    let score_matrix = ScoreMatrix::build(data, &flags, &p_rules, &n_rules, 1.0);
    PnruleModel {
        target,
        threshold: 0.5,
        p_rules,
        n_rules,
        score_matrix,
    }
}

struct WorkloadResult {
    name: &'static str,
    p_rules: usize,
    n_rules: usize,
    conditions: usize,
    interp: (f64, f64),
    comp: (f64, f64),
    single_row_ns: f64,
}

fn run_workload(
    name: &'static str,
    model: &PnruleModel,
    data: &Dataset,
    iters: usize,
) -> WorkloadResult {
    let n = data.n_rows();
    let compiled = CompiledModel::compile(model).expect("benchmark models compile");

    // Bit-identity gate: a fast engine that scores differently is a bug,
    // not a baseline.
    let scorer = compiled.scorer(data);
    for row in 0..n {
        let (si, ti) = model.score_with_trace(data, row);
        let (sc, tc) = scorer.score_with_trace(row);
        assert_eq!(
            sc.to_bits(),
            si.to_bits(),
            "{name} row {row}: compiled {sc} != interpreter {si}"
        );
        assert_eq!(tc, ti, "{name} row {row}: trace mismatch");
    }

    let interp = time_ns(iters, || {
        let mut acc = 0.0f64;
        for row in 0..n {
            acc += model.score(data, row);
        }
        std::hint::black_box(acc);
    });
    let comp = time_ns(iters, || {
        let scorer = compiled.scorer(data);
        let mut acc = 0.0f64;
        for row in 0..n {
            acc += scorer.score(row);
        }
        std::hint::black_box(acc);
    });
    // Unbatched path: every call re-binds columns, the one-record cost.
    let (single_total_mean, _) = time_ns(iters, || {
        let mut acc = 0.0f64;
        for row in 0..n {
            acc += compiled.score_with_trace(data, row).0;
        }
        std::hint::black_box(acc);
    });

    WorkloadResult {
        name,
        p_rules: model.p_rules.len(),
        n_rules: model.n_rules.len(),
        conditions: model
            .p_rules
            .rules()
            .iter()
            .chain(model.n_rules.rules())
            .map(|r| r.len())
            .sum(),
        interp,
        comp,
        single_row_ns: single_total_mean / n as f64,
    }
}

fn workload_json(w: &WorkloadResult, n: usize) -> String {
    let rows_per_sec = |mean_ns: f64| n as f64 / (mean_ns / 1e9);
    format!(
        r#"  "{name}": {{
    "p_rules": {p},
    "n_rules": {nn},
    "conditions": {c},
    "interpreter_batch_ns": {{"mean": {im:.0}, "min": {imin:.0}}},
    "compiled_batch_ns": {{"mean": {cm:.0}, "min": {cmin:.0}}},
    "interpreter_rows_per_sec": {irps:.0},
    "compiled_rows_per_sec": {crps:.0},
    "compiled_single_row_ns": {sr:.1},
    "compiled_speedup": {sp:.3}
  }}"#,
        name = w.name,
        p = w.p_rules,
        nn = w.n_rules,
        c = w.conditions,
        im = w.interp.0,
        imin = w.interp.1,
        cm = w.comp.0,
        cmin = w.comp.1,
        irps = rows_per_sec(w.interp.0),
        crps = rows_per_sec(w.comp.0),
        sr = w.single_row_ns,
        sp = w.interp.0 / w.comp.0,
    )
}

fn main() {
    let n = 50_000usize;
    let data = kdd_dataset(n);
    let target = data.class_code("r2l").expect("r2l class");
    let iters = 20;

    let trained = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
    let trained_result = run_workload("trained_r2l", &trained, &data, iters);
    let rich = rule_rich_model(&data, target);
    let rich_result = run_workload("rule_rich", &rich, &data, iters);

    let json = serde_json::to_string_pretty(
        &serde_json::parse(&format!(
            "{{\n  \"bench\": \"score_batch\",\n  \"dataset\": \"kddsim\",\n  \
             \"rows\": {n},\n  \"attrs\": {attrs},\n  \"iters\": {iters},\n{t},\n{r}\n}}",
            attrs = data.n_attrs(),
            t = workload_json(&trained_result, n),
            r = workload_json(&rich_result, n),
        ))
        .expect("baseline JSON is well-formed"),
    )
    .expect("serialize");
    std::fs::write("BENCH_score.json", json + "\n").expect("write BENCH_score.json");
    for w in [&trained_result, &rich_result] {
        println!(
            "{}: interpreter {:.2} ms/batch, compiled {:.2} ms/batch, speedup {:.2}x",
            w.name,
            w.interp.0 / 1e6,
            w.comp.0 / 1e6,
            w.interp.0 / w.comp.0,
        );
    }
}
