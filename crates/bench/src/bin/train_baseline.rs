//! Emits `BENCH_train.json` — a committed wall-clock baseline of the full
//! out-of-core training pipeline: kddsim rows are stream-generated to CSV
//! without ever materializing the dataset, ingested back through the
//! chunked columnar reader, and a complete P/N fit is timed per row-shard
//! plan.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p pnr-bench --bin train_baseline
//! ```
//!
//! Before anything is timed, every sharded fit passes a **bit-identity
//! gate**: its rendered [`ModelArtifact`] (checksum line included) must be
//! byte-identical to the unsharded sequential fit's. kddsim rows carry
//! unit weights, so every shard plan agrees bitwise (see the
//! `unit_weights_make_all_shard_counts_agree` property in `pnr-rules`);
//! a gate failure aborts the run — timings of a wrong computation are
//! worthless.
//!
//! Like `search_baseline`, regenerating from a machine less parallel than
//! the committed baseline's is refused unless `--force` is passed, and
//! `detected_parallelism` is recorded so the sweep is read in context (on
//! one core the sweep measures sharding overhead, not speedup — the
//! `note` field says so rather than implying a win).
//!
//! `--smoke` runs the CI-scale drill instead: stream 10 million kddsim
//! rows through the chunked loader (bounded generation and parse memory)
//! and drive a wall-clock-budgeted P/N fit over them, proving the
//! out-of-core path works at paper scale without a bench-length run. No
//! baseline file is written.

use pnr_core::{FitBudget, ModelArtifact, PnruleLearner, PnruleParams};
use pnr_data::{read_csv_chunked, CsvOptions, Dataset};
use pnr_kddsim::MixStream;
use pnr_rules::ShardPlan;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Rows for the committed baseline measurement (1M rows → a 16-shard
/// auto plan, so the sweep's three points are distinct).
const BENCH_ROWS: usize = 1_000_000;
/// Rows for the `--smoke` out-of-core drill.
const SMOKE_ROWS: usize = 10_000_000;
/// Generation/ingest chunk size (rows held in memory at once while
/// streaming; matches `SHARD_TARGET_ROWS`).
const CHUNK_ROWS: usize = 65_536;
/// Wall-clock budget for the smoke fit: enough to grow real rules at 10M
/// rows, bounded enough for CI.
const SMOKE_FIT_SECS: f64 = 120.0;
/// The rare class both modes fit (probe: 0.83% of the train mix).
const TARGET: &str = "probe";

/// Stream-generates `n` kddsim train-mix rows straight to a CSV file,
/// holding at most `CHUNK_ROWS` rows in memory, and returns the explicit
/// attribute types the chunked reader requires.
fn stream_to_csv(n: usize, seed: u64, path: &PathBuf) -> CsvOptions {
    let mut stream = MixStream::train(n, seed);
    let mut file = std::io::BufWriter::new(std::fs::File::create(path).expect("create csv"));
    let mut types = None;
    while let Some(chunk) = stream.next_chunk(CHUNK_ROWS) {
        if types.is_none() {
            file.write_all(pnr_data::write_csv_header_string(&chunk, ',').as_bytes())
                .expect("write header");
            types = Some(
                (0..chunk.n_attrs())
                    .map(|a| chunk.schema().attr(a).ty)
                    .collect::<Vec<_>>(),
            );
        }
        file.write_all(pnr_data::write_csv_rows_string(&chunk, ',').as_bytes())
            .expect("write rows");
    }
    file.flush().expect("flush csv");
    CsvOptions {
        types,
        ..CsvOptions::default()
    }
}

/// Fits the target class and renders the model artifact (checksum line
/// first — the gate compares the full rendering, which the checksum
/// covers). The artifact is rendered with the *reference* default params
/// regardless of which shard plan produced the fit: the params block
/// records the plan as plain configuration, so leaving it in would make
/// every sweep point trivially differ; rendering canonically means the
/// only varying inputs are the fitted model and report — exactly what the
/// bit-identity gate must compare.
fn fit_artifact(data: &Dataset, params: &PnruleParams) -> String {
    let code = data.class_code(TARGET).expect("target class present");
    let learner = PnruleLearner::new(params.clone());
    let (model, report) = learner.fit_with_report(data, code);
    ModelArtifact::new(
        model,
        PnruleParams::default(),
        report,
        data.schema().clone(),
    )
    .expect("artifact validates")
    .to_file_string()
    .expect("artifact renders")
}

fn run_smoke() {
    let path = std::env::temp_dir().join(format!("pnr_train_smoke_{}.csv", std::process::id()));
    eprintln!(
        "smoke: streaming {SMOKE_ROWS} kddsim rows to {}",
        path.display()
    );
    let t = Instant::now();
    let opts = stream_to_csv(SMOKE_ROWS, 42, &path);
    let gen_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (data, report) = read_csv_chunked(&path, &opts, CHUNK_ROWS).expect("chunked load");
    let load_secs = t.elapsed().as_secs_f64();
    assert_eq!(data.n_rows(), SMOKE_ROWS, "every streamed row must load");
    assert_eq!(report.n_skipped(), 0, "generated rows are clean");
    eprintln!(
        "smoke: generated in {gen_secs:.1}s, chunk-loaded {} rows in {load_secs:.1}s \
         ({:.0} rows/s)",
        data.n_rows(),
        data.n_rows() as f64 / load_secs,
    );

    let params = PnruleParams {
        budget: FitBudget {
            wall_clock_secs: Some(SMOKE_FIT_SECS),
            ..FitBudget::default()
        },
        row_shards: Some(ShardPlan::auto(SMOKE_ROWS).n_shards()),
        ..Default::default()
    };
    let code = data.class_code(TARGET).expect("target class present");
    let t = Instant::now();
    let (model, fit_report) = PnruleLearner::new(params).fit_with_report(&data, code);
    let fit_secs = t.elapsed().as_secs_f64();
    // The budget may truncate the fit; truncated or not, the model must be
    // a valid, scoreable P/N classifier over the full out-of-core dataset.
    for row in (0..data.n_rows()).step_by(SMOKE_ROWS / 1000) {
        let (score, _) = model.score_with_trace(&data, row);
        assert!(score.is_finite());
    }
    eprintln!(
        "smoke: fit {} P-rules / {} N-rules in {fit_secs:.1}s \
         (p_stop {:?}, n_stop {:?}, budget_exhausted {})",
        model.p_rules.len(),
        model.n_rules.len(),
        fit_report.p_stop_reason,
        fit_report.n_stop_reason,
        fit_report.budget_exhausted(),
    );
    std::fs::remove_file(path).ok();
    println!("train smoke OK: {SMOKE_ROWS} rows streamed, chunk-loaded and fit end to end");
}

fn main() {
    let force = std::env::args().any(|a| a == "--force");
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
        return;
    }

    // Guard first (shared with search_baseline): refuse to clobber a
    // more-parallel machine's baseline before spending minutes measuring.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let out = std::path::Path::new("BENCH_train.json");
    let recorded = pnr_bench::recorded_parallelism(out);
    if !pnr_bench::overwrite_allowed(recorded, cores as u64, force) {
        eprintln!(
            "refusing to overwrite {}: it was recorded with detected_parallelism {} \
             but this machine has {}; regenerating here would erase the multi-core \
             measurements. Pass --force to overwrite anyway.",
            out.display(),
            recorded.unwrap_or(0),
            cores,
        );
        std::process::exit(1);
    }

    let path = std::env::temp_dir().join(format!("pnr_train_bench_{}.csv", std::process::id()));
    let t = Instant::now();
    let opts = stream_to_csv(BENCH_ROWS, 42, &path);
    let gen_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (data, _) = read_csv_chunked(&path, &opts, CHUNK_ROWS).expect("chunked load");
    let load_secs = t.elapsed().as_secs_f64();
    std::fs::remove_file(&path).ok();
    assert_eq!(data.n_rows(), BENCH_ROWS);

    // The reference every plan must reproduce: unsharded sequential fit.
    // One untimed warm-up pass first (it also produces the gate artifact),
    // then best-of-2 — the same protocol every sweep point gets, so the
    // reference is not penalized for paging in the freshly loaded columns.
    let baseline_params = PnruleParams::default();
    let reference = fit_artifact(&data, &baseline_params);
    let mut reference_secs = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let _ = fit_artifact(&data, &baseline_params);
        reference_secs = reference_secs.min(t.elapsed().as_secs_f64());
    }
    eprintln!(
        "reference fit (row_shards: none): {reference_secs:.2}s \
         ({:.0} rows/s)",
        BENCH_ROWS as f64 / reference_secs,
    );

    let auto_shards = ShardPlan::auto(BENCH_ROWS).n_shards();
    let mut sweep = Vec::new();
    for shards in [1usize, 2, auto_shards] {
        let params = PnruleParams {
            row_shards: Some(shards),
            ..Default::default()
        };
        // Bit-identity gate BEFORE timing: a fast wrong answer is not a
        // benchmark result.
        let gate = fit_artifact(&data, &params);
        assert_eq!(
            gate, reference,
            "shard plan {shards} produced a different model artifact than \
             the sequential fit — refusing to time a non-identical computation"
        );
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t = Instant::now();
            let _ = fit_artifact(&data, &params);
            best = best.min(t.elapsed().as_secs_f64());
        }
        let rows_per_sec = BENCH_ROWS as f64 / best;
        eprintln!("row_shards {shards}: best {best:.2}s ({rows_per_sec:.0} rows/s)");
        sweep.push(format!(
            r#"{{"row_shards": {shards}, "fit_secs": {best:.3}, "rows_per_sec": {rows_per_sec:.0}}}"#
        ));
    }

    let note = if cores >= 2 {
        "sweep timed with real parallelism; compare rows_per_sec across shard counts".to_string()
    } else {
        format!(
            "detected parallelism is {cores}: the shard sweep measures sharding \
             overhead, not speedup, so no speedup is claimed"
        )
    };
    let json = serde_json::to_string_pretty(
        &serde_json::parse(&format!(
            r#"{{
  "bench": "train_full_fit",
  "dataset": "kddsim-train",
  "rows": {BENCH_ROWS},
  "attrs": {attrs},
  "target": "{TARGET}",
  "detected_parallelism": {cores},
  "chunk_rows": {CHUNK_ROWS},
  "stream_generate_secs": {gen_secs:.3},
  "chunked_load_secs": {load_secs:.3},
  "load_rows_per_sec": {load_rps:.0},
  "bit_identity_gate": "every sharded artifact byte-identical to the unsharded sequential fit",
  "sequential_fit_secs": {reference_secs:.3},
  "sequential_rows_per_sec": {seq_rps:.0},
  "shard_sweep": [{sweep}],
  "note": "{note}"
}}"#,
            attrs = data.n_attrs(),
            load_rps = BENCH_ROWS as f64 / load_secs,
            seq_rps = BENCH_ROWS as f64 / reference_secs,
            sweep = sweep.join(", "),
        ))
        .expect("baseline JSON is well-formed"),
    )
    .expect("serialize");
    std::fs::write(out, json + "\n").expect("write BENCH_train.json");
    println!(
        "BENCH_train.json written: load {:.0} rows/s, sequential fit {:.0} rows/s, \
         sweep over shard counts [1, 2, {auto_shards}] all bit-identical",
        BENCH_ROWS as f64 / load_secs,
        BENCH_ROWS as f64 / reference_secs,
    );
}
