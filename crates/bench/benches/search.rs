//! Condition-search benchmarks: the inner loop of every rule learner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnr_bench::{nsyn3_dataset, target_flags};
use pnr_rules::{find_best_condition, EvalMetric, SearchOptions, TaskView};

fn bench_find_best_condition(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_best_condition");
    for &n in &[10_000usize, 50_000] {
        let data = nsyn3_dataset(n);
        let flags = target_flags(&data, "C");
        let view = TaskView::full(&data, &flags, data.weights());
        // warm the sort-index cache so the bench measures the scan
        for a in 0..data.n_attrs() {
            let _ = data.sort_index(a);
        }
        group.bench_with_input(BenchmarkId::new("with_ranges", n), &view, |b, v| {
            b.iter(|| {
                find_best_condition(v, EvalMetric::ZNumber, &SearchOptions::default())
                    .expect("candidate")
            })
        });
        let no_ranges = SearchOptions {
            use_ranges: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("one_sided_only", n), &view, |b, v| {
            b.iter(|| find_best_condition(v, EvalMetric::ZNumber, &no_ranges).expect("candidate"))
        });
        let sequential = SearchOptions {
            parallel: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("sequential", n), &view, |b, v| {
            b.iter(|| find_best_condition(v, EvalMetric::ZNumber, &sequential).expect("candidate"))
        });
        let threaded = SearchOptions {
            parallel_min_cells: 0,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("threaded", n), &view, |b, v| {
            b.iter(|| find_best_condition(v, EvalMetric::ZNumber, &threaded).expect("candidate"))
        });
        // View-proportional scan: a 5% restricted view should cost a small
        // fraction of the full-view search once its projection is warm.
        let small = view.restricted_to(view.rows.filter(|r| r % 20 == 0));
        for a in 0..data.n_attrs() {
            let _ = small.projection(a);
        }
        group.bench_with_input(BenchmarkId::new("restricted_5pct", n), &small, |b, v| {
            b.iter(|| {
                find_best_condition(v, EvalMetric::ZNumber, &SearchOptions::default())
                    .expect("candidate")
            })
        });
    }
    group.finish();
}

fn bench_sort_index(c: &mut Criterion) {
    c.bench_function("sort_index_50k", |b| {
        b.iter_with_setup(
            || nsyn3_dataset(50_000),
            |data| {
                let _ = data.sort_index(0);
            },
        )
    });
}

fn bench_metrics(c: &mut Criterion) {
    use pnr_rules::CovStats;
    let stats = CovStats::new(120.0, 400.0);
    let mut group = c.benchmark_group("eval_metric");
    for metric in [
        EvalMetric::ZNumber,
        EvalMetric::FoilGain,
        EvalMetric::EntropyGain,
        EvalMetric::GiniGain,
        EvalMetric::ChiSquared,
    ] {
        group.bench_function(format!("{metric:?}"), |b| {
            b.iter(|| metric.score(std::hint::black_box(stats), 1_500.0, 500_000.0))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_find_best_condition,
    bench_sort_index,
    bench_metrics
);
criterion_main!(benches);
