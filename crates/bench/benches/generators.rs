//! Dataset-generation throughput for the three synthetic models and the
//! KDD simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use pnr_synth::categorical::CategoricalModelConfig;
use pnr_synth::general::GeneralModelConfig;
use pnr_synth::numeric::NumericModelConfig;
use pnr_synth::SynthScale;

const N: usize = 20_000;

fn scale() -> SynthScale {
    SynthScale {
        n_records: N,
        target_frac: 0.003,
    }
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_20k");
    group.sample_size(10);
    group.bench_function("numeric_nsyn3", |b| {
        let cfg = NumericModelConfig::nsyn(3);
        b.iter(|| pnr_synth::numeric::generate(&cfg, &scale(), 1))
    });
    group.bench_function("categorical_coa3", |b| {
        let cfg = CategoricalModelConfig::coa(3);
        b.iter(|| pnr_synth::categorical::generate(&cfg, &scale(), 1))
    });
    group.bench_function("general_syngen", |b| {
        let cfg = GeneralModelConfig::default();
        b.iter(|| pnr_synth::general::generate(&cfg, &scale(), 1))
    });
    group.bench_function("kddsim_train", |b| {
        b.iter(|| pnr_kddsim::generate_train(N, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
