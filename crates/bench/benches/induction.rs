//! End-to-end model induction benchmarks for the three learners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnr_bench::{kdd_dataset, nsyn3_dataset};
use pnr_c45::{C45Learner, C45Params};
use pnr_core::{PnruleLearner, PnruleParams};
use pnr_ripper::{RipperLearner, RipperParams};

fn bench_learners_nsyn3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_nsyn3");
    group.sample_size(10);
    for &n in &[5_000usize, 20_000] {
        let data = nsyn3_dataset(n);
        let target = data.class_code("C").expect("class");
        group.bench_with_input(BenchmarkId::new("pnrule", n), &data, |b, d| {
            b.iter(|| PnruleLearner::new(PnruleParams::default()).fit(d, target))
        });
        group.bench_with_input(BenchmarkId::new("ripper", n), &data, |b, d| {
            b.iter(|| RipperLearner::new(RipperParams::default()).fit(d, target))
        });
        group.bench_with_input(BenchmarkId::new("c45rules", n), &data, |b, d| {
            b.iter(|| C45Learner::new(C45Params::default()).fit_rules(d))
        });
    }
    group.finish();
}

fn bench_learners_kdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_kdd");
    group.sample_size(10);
    let data = kdd_dataset(20_000);
    let target = data.class_code("probe").expect("class");
    group.bench_function("pnrule_probe_20k", |b| {
        b.iter(|| PnruleLearner::new(PnruleParams::default()).fit(&data, target))
    });
    group.bench_function("ripper_probe_20k", |b| {
        b.iter(|| RipperLearner::new(RipperParams::default()).fit(&data, target))
    });
    group.finish();
}

criterion_group!(benches, bench_learners_nsyn3, bench_learners_kdd);
criterion_main!(benches);
