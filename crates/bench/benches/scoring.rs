//! ScoreMatrix construction and classification throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use pnr_bench::{nsyn3_dataset, target_flags};
use pnr_core::{PnruleLearner, PnruleParams, ScoreMatrix};
use pnr_rules::BinaryClassifier;

fn bench_score_matrix_build(c: &mut Criterion) {
    let data = nsyn3_dataset(20_000);
    let target = data.class_code("C").expect("class");
    let flags = target_flags(&data, "C");
    let model = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
    c.bench_function("score_matrix_build_20k", |b| {
        b.iter(|| ScoreMatrix::build(&data, &flags, &model.p_rules, &model.n_rules, 1.0))
    });
}

fn bench_classification_throughput(c: &mut Criterion) {
    let data = nsyn3_dataset(20_000);
    let target = data.class_code("C").expect("class");
    let model = PnruleLearner::new(PnruleParams::default()).fit(&data, target);
    c.bench_function("pnrule_classify_20k_rows", |b| {
        b.iter(|| {
            let mut positives = 0usize;
            for row in 0..data.n_rows() {
                if model.predict(&data, row) {
                    positives += 1;
                }
            }
            positives
        })
    });
}

criterion_group!(
    benches,
    bench_score_matrix_build,
    bench_classification_throughput
);
criterion_main!(benches);
