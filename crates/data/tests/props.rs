//! Property-based tests for the dataset substrate.

use pnr_data::{
    read_csv_str, stratify_weights, write_csv_string, AttrType, CsvOptions, DatasetBuilder, RowSet,
    Value,
};
use proptest::prelude::*;

fn rowset_strategy(max: u32) -> impl Strategy<Value = RowSet> {
    prop::collection::vec(0..max, 0..64).prop_map(RowSet::from_vec)
}

proptest! {
    #[test]
    fn rowset_from_vec_is_sorted_and_unique(rows in prop::collection::vec(0u32..100, 0..64)) {
        let s = RowSet::from_vec(rows);
        let v = s.as_slice();
        for w in v.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn rowset_difference_union_partition(a in rowset_strategy(80), b in rowset_strategy(80)) {
        // (a \ b) ∪ (a ∩ b) == a
        let diff = a.difference(&b);
        let inter = a.intersection(&b);
        prop_assert_eq!(diff.union(&inter), a.clone());
        // difference and intersection are disjoint
        prop_assert!(diff.intersection(&inter).is_empty());
    }

    #[test]
    fn rowset_union_is_commutative_and_contains_both(
        a in rowset_strategy(80),
        b in rowset_strategy(80),
    ) {
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        prop_assert_eq!(&u1, &u2);
        for r in a.iter().chain(b.iter()) {
            prop_assert!(u1.contains(r));
        }
        prop_assert!(u1.len() <= a.len() + b.len());
    }

    #[test]
    fn rowset_mask_round_trips(a in rowset_strategy(60)) {
        let mask = a.mask(60);
        let back: RowSet = (0..60u32).filter(|&r| mask[r as usize]).collect();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn csv_round_trip_preserves_everything(
        rows in prop::collection::vec((0i32..1000, 0usize..4, prop::bool::ANY), 1..40),
    ) {
        let cats = ["red", "green", "blue", "plaid"];
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        for &(x, k, pos) in &rows {
            b.push_row(
                &[Value::num(x as f64), Value::cat(cats[k])],
                if pos { "p" } else { "n" },
                1.0,
            )
            .unwrap();
        }
        let d = b.finish();
        let text = write_csv_string(&d, ',');
        let back = read_csv_str(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.n_rows(), d.n_rows());
        for row in 0..d.n_rows() {
            prop_assert_eq!(back.num(0, row), d.num(0, row));
            prop_assert_eq!(back.cat_name(1, row), d.cat_name(1, row));
            prop_assert_eq!(
                back.class_name(back.label(row)),
                d.class_name(d.label(row))
            );
        }
    }

    #[test]
    fn sort_index_is_a_sorted_permutation(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for &v in &values {
            b.push_row(&[Value::num(v)], "c", 1.0).unwrap();
        }
        let d = b.finish();
        let idx = d.sort_index(0);
        // permutation
        let mut seen = vec![false; values.len()];
        for &r in idx {
            prop_assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        // sorted
        for w in idx.windows(2) {
            prop_assert!(d.num(0, w[0] as usize) <= d.num(0, w[1] as usize));
        }
    }

    #[test]
    fn stratified_weights_always_balance(n_pos in 1usize..50, n_neg in 1usize..200) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..n_pos {
            b.push_row(&[Value::num(i as f64)], "pos", 1.0).unwrap();
        }
        for i in 0..n_neg {
            b.push_row(&[Value::num(i as f64)], "neg", 1.0).unwrap();
        }
        let d = b.finish();
        let w = stratify_weights(&d, 0);
        let d2 = d.with_weights(w);
        let cw = d2.class_weights();
        prop_assert!((cw[0] - cw[1]).abs() < 1e-6 * cw[1].max(1.0));
    }

    #[test]
    fn select_rows_preserves_values(n in 2usize..60, pick in prop::collection::vec(prop::bool::ANY, 60)) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..n {
            b.push_row(&[Value::num(i as f64 * 1.5)], "c", (i + 1) as f64).unwrap();
        }
        let d = b.finish();
        let rows: Vec<u32> = (0..n as u32).filter(|&r| pick[r as usize]).collect();
        let s = d.select_rows(&rows);
        prop_assert_eq!(s.n_rows(), rows.len());
        for (new, &old) in rows.iter().enumerate() {
            prop_assert_eq!(s.num(0, new), d.num(0, old as usize));
            prop_assert_eq!(s.weight(new), d.weight(old as usize));
        }
    }
}
