//! Columnar tabular dataset substrate for rule induction.
//!
//! This crate provides the data layer shared by every learner in the PNrule
//! workspace: a columnar [`Dataset`] with mixed numeric/categorical
//! attributes, per-record weights, interned class labels, lazily computed
//! per-attribute sort indexes (which power single-scan numeric condition
//! search), row subsets ([`RowSet`]), CSV I/O, train/test splitting and the
//! stratified-weighting transform used for the paper's `-we` classifier
//! variants.
//!
//! Missing values are deliberately **not** supported: none of the paper's
//! datasets (synthetic models or KDD-CUP'99) contain them, and the learners
//! built on this substrate assume complete records.
//!
//! # Example
//!
//! ```
//! use pnr_data::{DatasetBuilder, AttrType, Value};
//!
//! let mut b = DatasetBuilder::new();
//! b.add_attribute("duration", AttrType::Numeric);
//! b.add_attribute("protocol", AttrType::Categorical);
//! b.push_row(&[Value::num(0.5), Value::cat("tcp")], "normal", 1.0).unwrap();
//! b.push_row(&[Value::num(3.0), Value::cat("udp")], "attack", 1.0).unwrap();
//! let data = b.finish();
//! assert_eq!(data.n_rows(), 2);
//! assert_eq!(data.class_name(data.label(1)), "attack");
//! ```

#[cfg(feature = "audit")]
pub mod audit;
mod builder;
mod csv;
mod dataset;
mod dict;
mod error;
pub mod fingerprint;
pub mod index;
mod rowset;
mod schema;
mod split;
mod stats;
pub mod weights;

pub use builder::{DatasetBuilder, Value};
pub use csv::{
    read_csv, read_csv_chunked, read_csv_str, read_csv_str_with_report, read_csv_with_report,
    write_csv, write_csv_header_string, write_csv_rows_string, write_csv_string, ChunkedCsvReader,
    CsvOptions, LoadReport, RowPolicy,
};
pub use dataset::{Column, Dataset};
pub use dict::Dictionary;
pub use error::DataError;
pub use rowset::RowSet;
pub use schema::{AttrType, Attribute, Schema};
pub use split::{stratified_split, subsample_class, train_test_split};
pub use stats::{describe, summarize, AttrSummary, CategoricalSummary, NumericSummary};
pub use weights::{ordered_sum, stratify_weights, total_weight, weight_of_class};
