//! The immutable columnar [`Dataset`].

use crate::schema::{AttrType, Schema};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// One attribute column of a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Column {
    /// Numeric column; values are finite `f64`.
    Num(Vec<f64>),
    /// Categorical column; values are codes into the attribute's dictionary.
    Cat(Vec<u32>),
}

impl Column {
    /// Number of rows stored in this column.
    pub fn len(&self) -> usize {
        match self {
            Column::Num(v) => v.len(),
            Column::Cat(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An immutable columnar dataset with per-record weights.
///
/// Built with [`crate::DatasetBuilder`]; learners never mutate a dataset, so
/// subsets are expressed as row-index collections ([`crate::RowSet`]) and
/// weight overrides are carried separately by the caller where needed.
///
/// Per-attribute **sort indexes** (row permutations ordered by numeric value)
/// are computed lazily on first use and cached; they power single-scan
/// threshold search in the rule learners.
#[derive(Debug, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    labels: Vec<u32>,
    weights: Vec<f64>,
    #[serde(skip)]
    sort_indexes: Vec<OnceLock<Vec<u32>>>,
}

impl Dataset {
    pub(crate) fn from_parts(
        schema: Schema,
        columns: Vec<Column>,
        labels: Vec<u32>,
        weights: Vec<f64>,
    ) -> Self {
        let n_attrs = schema.n_attrs();
        debug_assert_eq!(columns.len(), n_attrs);
        debug_assert!(columns.iter().all(|c| c.len() == labels.len()));
        debug_assert_eq!(weights.len(), labels.len());
        let sort_indexes = (0..n_attrs).map(|_| OnceLock::new()).collect();
        Dataset {
            schema,
            columns,
            labels,
            weights,
            sort_indexes,
        }
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.schema.n_attrs()
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.schema.n_classes()
    }

    /// The column for attribute `attr`.
    pub fn column(&self, attr: usize) -> &Column {
        &self.columns[attr]
    }

    /// Numeric value of attribute `attr` at `row`.
    ///
    /// # Panics
    /// Panics if the attribute is categorical or indexes are out of range.
    #[inline]
    pub fn num(&self, attr: usize, row: usize) -> f64 {
        match &self.columns[attr] {
            Column::Num(v) => v[row],
            Column::Cat(_) => panic!("attribute {attr} is categorical, not numeric"),
        }
    }

    /// Categorical code of attribute `attr` at `row`.
    ///
    /// # Panics
    /// Panics if the attribute is numeric or indexes are out of range.
    #[inline]
    pub fn cat(&self, attr: usize, row: usize) -> u32 {
        match &self.columns[attr] {
            Column::Cat(v) => v[row],
            Column::Num(_) => panic!("attribute {attr} is numeric, not categorical"),
        }
    }

    /// Class label code of `row`.
    #[inline]
    pub fn label(&self, row: usize) -> u32 {
        self.labels[row]
    }

    /// All class label codes.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Weight of `row`.
    #[inline]
    pub fn weight(&self, row: usize) -> f64 {
        self.weights[row]
    }

    /// All record weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Class name for a label code.
    pub fn class_name(&self, code: u32) -> &str {
        self.schema.classes.name(code)
    }

    /// Label code for a class name, if the class exists.
    pub fn class_code(&self, name: &str) -> Option<u32> {
        self.schema.classes.code(name)
    }

    /// Categorical value name of attribute `attr` at `row`.
    pub fn cat_name(&self, attr: usize, row: usize) -> &str {
        self.schema.attr(attr).dict.name(self.cat(attr, row))
    }

    /// Rows sorted ascending by the numeric attribute `attr`; computed once
    /// and cached. Ties keep row order (stable sort), so results are
    /// deterministic.
    ///
    /// # Panics
    /// Panics if `attr` is categorical.
    pub fn sort_index(&self, attr: usize) -> &[u32] {
        assert_eq!(
            self.schema.attr(attr).ty,
            AttrType::Numeric,
            "sort_index requires a numeric attribute"
        );
        self.sort_indexes[attr].get_or_init(|| {
            let Column::Num(vals) = &self.columns[attr] else {
                unreachable!()
            };
            let mut idx: Vec<u32> = (0..crate::index::to_u32(vals.len(), "row count")).collect();
            // total_cmp: builder-validated values are finite, so this orders
            // identically to partial_cmp without an unwrap on the NaN arm.
            idx.sort_by(|&a, &b| vals[a as usize].total_cmp(&vals[b as usize]));
            idx
        })
    }

    /// The subset `rows` (sorted unique global row ids) ordered ascending by
    /// the numeric attribute `attr`, ties in row order — the restriction of
    /// [`Self::sort_index`] to the subset, without materialising a mask over
    /// the whole dataset when the subset is small.
    ///
    /// Cost is `O(min(n_rows, m·log m))` for a subset of size `m`: a small
    /// subset is sorted directly, a large one filtered out of the cached
    /// global sort index. Both paths produce the identical ordering.
    ///
    /// # Panics
    /// Panics if `attr` is categorical.
    pub fn sorted_projection(&self, attr: usize, rows: &[u32]) -> Vec<u32> {
        assert_eq!(
            self.schema.attr(attr).ty,
            AttrType::Numeric,
            "sorted_projection requires a numeric attribute"
        );
        let n = self.n_rows();
        let m = rows.len();
        if m == n {
            return self.sort_index(attr).to_vec();
        }
        // Direct sort wins while m·log₂m stays under the full-scan cost.
        let direct = m == 0 || m * (usize::BITS - m.leading_zeros()) as usize <= n;
        let Column::Num(vals) = &self.columns[attr] else {
            unreachable!()
        };
        if direct {
            let mut idx = rows.to_vec();
            // Stable sort: ties keep the caller's (ascending row id) order,
            // matching the filtered global index below.
            idx.sort_by(|&a, &b| vals[a as usize].total_cmp(&vals[b as usize]));
            idx
        } else {
            let mut mask = vec![false; n];
            for &r in rows {
                mask[r as usize] = true;
            }
            self.sort_index(attr)
                .iter()
                .copied()
                .filter(|&r| mask[r as usize])
                .collect()
        }
    }

    /// Weighted count of rows per class.
    pub fn class_weights(&self) -> Vec<f64> {
        let mut w = vec![0.0; self.n_classes()];
        for (lbl, wt) in self.labels.iter().zip(&self.weights) {
            w[*lbl as usize] += wt;
        }
        w
    }

    /// Unweighted count of rows per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.n_classes()];
        for lbl in &self.labels {
            c[*lbl as usize] += 1;
        }
        c
    }

    /// Returns a copy of this dataset with `weights` replaced.
    ///
    /// # Panics
    /// Panics if `weights.len() != n_rows()`.
    pub fn with_weights(&self, weights: Vec<f64>) -> Dataset {
        assert_eq!(weights.len(), self.n_rows());
        Dataset::from_parts(
            self.schema.clone(),
            self.columns.clone(),
            self.labels.clone(),
            weights,
        )
    }

    /// Builds a new dataset containing only `rows` (in the given order),
    /// sharing the schema. Used by splitters and subsamplers.
    pub fn select_rows(&self, rows: &[u32]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Num(v) => Column::Num(rows.iter().map(|&r| v[r as usize]).collect()),
                Column::Cat(v) => Column::Cat(rows.iter().map(|&r| v[r as usize]).collect()),
            })
            .collect();
        let labels = rows.iter().map(|&r| self.labels[r as usize]).collect();
        let weights = rows.iter().map(|&r| self.weights[r as usize]).collect();
        Dataset::from_parts(self.schema.clone(), columns, labels, weights)
    }

    /// Restores invariants after deserialisation (dictionary lookup tables
    /// and the sort-index cache slots).
    ///
    /// Deserialisation is the one path that can plant a non-finite value in
    /// a dense numeric column — the builder rejects them, but JSON's
    /// `1e999` parses to `inf` — so under the `audit` feature this also
    /// re-checks the finite-data invariant over every column.
    pub fn rebuild_after_deserialize(&mut self) {
        self.schema.rebuild_indexes();
        self.sort_indexes = (0..self.schema.n_attrs())
            .map(|_| OnceLock::new())
            .collect();
        #[cfg(feature = "audit")]
        crate::audit::check_finite_columns("Dataset::rebuild_after_deserialize", self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{DatasetBuilder, Value};

    fn small() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("c", AttrType::Categorical);
        b.push_row(&[Value::num(3.0), Value::cat("p")], "neg", 1.0)
            .unwrap();
        b.push_row(&[Value::num(1.0), Value::cat("q")], "pos", 2.0)
            .unwrap();
        b.push_row(&[Value::num(2.0), Value::cat("p")], "neg", 1.5)
            .unwrap();
        b.finish()
    }

    #[test]
    fn accessors_return_stored_values() {
        let d = small();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_attrs(), 2);
        assert_eq!(d.num(0, 1), 1.0);
        assert_eq!(d.cat_name(1, 0), "p");
        assert_eq!(d.class_name(d.label(1)), "pos");
        assert_eq!(d.weight(2), 1.5);
    }

    #[test]
    #[should_panic(expected = "categorical")]
    fn num_on_categorical_panics() {
        let d = small();
        d.num(1, 0);
    }

    #[test]
    #[should_panic(expected = "numeric")]
    fn cat_on_numeric_panics() {
        let d = small();
        d.cat(0, 0);
    }

    #[test]
    fn sort_index_orders_rows_by_value() {
        let d = small();
        assert_eq!(d.sort_index(0), &[1, 2, 0]);
        // second call hits the cache and returns the same slice
        assert_eq!(d.sort_index(0).as_ptr(), d.sort_index(0).as_ptr());
    }

    #[test]
    #[should_panic(expected = "numeric attribute")]
    fn sort_index_on_categorical_panics() {
        let d = small();
        d.sort_index(1);
    }

    #[test]
    fn sorted_projection_restricts_sort_index() {
        let d = small();
        assert_eq!(d.sorted_projection(0, &[0, 1, 2]), vec![1, 2, 0]);
        assert_eq!(d.sorted_projection(0, &[0, 2]), vec![2, 0]);
        assert_eq!(d.sorted_projection(0, &[1]), vec![1]);
        assert!(d.sorted_projection(0, &[]).is_empty());
    }

    #[test]
    fn sorted_projection_paths_agree_with_ties() {
        // Duplicate values: the direct-sort and filtered-index paths must
        // impose the identical (row-id) tie order.
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..64 {
            b.push_row(&[Value::num((i % 4) as f64)], "c", 1.0).unwrap();
        }
        let d = b.finish();
        let subset: Vec<u32> = (0..64).filter(|i| i % 3 != 1).collect();
        let filtered: Vec<u32> = d
            .sort_index(0)
            .iter()
            .copied()
            .filter(|r| subset.contains(r))
            .collect();
        assert_eq!(d.sorted_projection(0, &subset), filtered);
        // tiny subset takes the direct path
        let tiny = [5u32, 9, 13, 21];
        let filtered_tiny: Vec<u32> = d
            .sort_index(0)
            .iter()
            .copied()
            .filter(|r| tiny.contains(r))
            .collect();
        assert_eq!(d.sorted_projection(0, &tiny), filtered_tiny);
    }

    #[test]
    #[should_panic(expected = "numeric attribute")]
    fn sorted_projection_on_categorical_panics() {
        let d = small();
        d.sorted_projection(1, &[0]);
    }

    #[test]
    fn class_weights_and_counts() {
        let d = small();
        let neg = d.class_code("neg").unwrap() as usize;
        let pos = d.class_code("pos").unwrap() as usize;
        let w = d.class_weights();
        assert_eq!(w[neg], 2.5);
        assert_eq!(w[pos], 2.0);
        let c = d.class_counts();
        assert_eq!(c[neg], 2);
        assert_eq!(c[pos], 1);
    }

    #[test]
    fn select_rows_projects_in_order() {
        let d = small();
        let s = d.select_rows(&[2, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.num(0, 0), 2.0);
        assert_eq!(s.num(0, 1), 3.0);
        assert_eq!(s.class_name(s.label(0)), "neg");
        assert_eq!(s.weight(0), 1.5);
    }

    #[test]
    fn with_weights_replaces_weights_only() {
        let d = small();
        let d2 = d.with_weights(vec![9.0, 9.0, 9.0]);
        assert_eq!(d2.weight(0), 9.0);
        assert_eq!(d2.num(0, 0), d.num(0, 0));
    }

    #[test]
    fn serde_round_trip_preserves_data() {
        let d = small();
        let json = serde_json::to_string(&d).unwrap();
        let mut back: Dataset = serde_json::from_str(&json).unwrap();
        back.rebuild_after_deserialize();
        assert_eq!(back.n_rows(), d.n_rows());
        assert_eq!(back.num(0, 2), 2.0);
        assert_eq!(back.class_code("pos"), Some(1));
        assert_eq!(back.sort_index(0), &[1, 2, 0]);
    }

    /// Fault injection: JSON cannot represent `inf`, but a textual `1e999`
    /// parses to it, smuggling a non-finite value past the builder's
    /// validation. The `audit` rebuild hook must catch exactly this.
    #[cfg(feature = "audit")]
    #[test]
    #[should_panic(expected = "audit: Dataset::rebuild_after_deserialize")]
    fn non_finite_smuggled_through_serde_fails_audit() {
        let json = serde_json::to_string(&small()).unwrap();
        let json = json.replacen("2.0", "1e999", 1);
        let mut back: Dataset = serde_json::from_str(&json).unwrap();
        back.rebuild_after_deserialize();
    }
}
