//! Error type for dataset construction and I/O.

use std::fmt;

/// Errors produced while building, reading or writing datasets.
#[derive(Debug)]
pub enum DataError {
    /// A row was pushed with a different number of values than the schema has
    /// attributes.
    ArityMismatch {
        /// Number of attributes declared in the schema.
        expected: usize,
        /// Number of values supplied in the offending row.
        got: usize,
    },
    /// A numeric value was supplied for a categorical attribute or vice versa.
    TypeMismatch {
        /// Attribute index the value was destined for.
        attr: usize,
        /// Human-readable description of the expected type.
        expected: &'static str,
    },
    /// A numeric value was NaN or infinite; the substrate requires finite
    /// values (there is no missing-value support).
    NonFiniteValue {
        /// Attribute index of the offending value.
        attr: usize,
    },
    /// A row was pushed with a NaN, infinite or negative weight; weighted
    /// coverage bookkeeping assumes finite non-negative masses.
    InvalidWeight {
        /// The offending weight value.
        weight: f64,
    },
    /// Two columns share a name; learned rules reference attributes by
    /// position, so ambiguous names would make models unreadable.
    DuplicateAttribute {
        /// The repeated column name.
        name: String,
    },
    /// CSV parsing failed.
    Csv {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row has {got} values but schema has {expected} attributes"
                )
            }
            DataError::TypeMismatch { attr, expected } => {
                write!(f, "attribute {attr} expects a {expected} value")
            }
            DataError::NonFiniteValue { attr } => {
                write!(f, "attribute {attr} received a non-finite numeric value")
            }
            DataError::InvalidWeight { weight } => {
                write!(f, "record weight {weight} is not finite and non-negative")
            }
            DataError::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute name {name:?}")
            }
            DataError::Csv { line, message } => write!(f, "csv line {line}: {message}"),
            DataError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert_eq!(
            e.to_string(),
            "row has 2 values but schema has 3 attributes"
        );
        let e = DataError::TypeMismatch {
            attr: 1,
            expected: "numeric",
        };
        assert!(e.to_string().contains("attribute 1"));
        let e = DataError::NonFiniteValue { attr: 0 };
        assert!(e.to_string().contains("non-finite"));
        let e = DataError::InvalidWeight { weight: -1.0 };
        assert!(e.to_string().contains("weight -1"));
        let e = DataError::DuplicateAttribute { name: "x".into() };
        assert!(e.to_string().contains("duplicate"));
        let e = DataError::Csv {
            line: 7,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = DataError::from(inner);
        assert!(e.source().is_some());
    }
}
