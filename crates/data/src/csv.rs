//! Minimal CSV reader/writer for datasets.
//!
//! The format is deliberately simple (no quoting or embedded separators):
//! one header line with attribute names followed by the class column name,
//! then one record per line. Schema types are either supplied by the caller
//! or inferred (a column is numeric when every field parses as `f64`).

use crate::builder::{DatasetBuilder, Value};
use crate::dataset::{Column, Dataset};
use crate::error::DataError;
use crate::schema::AttrType;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// What to do with a malformed data row (wrong field count, unparsable
/// numeric field, or a row the dataset builder rejects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowPolicy {
    /// Any malformed row aborts the load with an error (the default).
    Fail,
    /// Quarantine malformed rows instead of failing, up to `max` of them;
    /// one more malformed row past the cap aborts the load. Skipped rows
    /// are listed in the [`LoadReport`].
    Skip {
        /// Maximum number of rows that may be quarantined.
        max: usize,
    },
}

/// What a [`RowPolicy::Skip`] load quarantined.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// `(1-based line number, why)` for each quarantined row, in file
    /// order. Empty when every row loaded.
    pub skipped: Vec<(usize, String)>,
}

impl LoadReport {
    /// Number of quarantined rows.
    pub fn n_skipped(&self) -> usize {
        self.skipped.len()
    }
}

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Explicit attribute types; when `None`, types are inferred from the
    /// data (numeric iff every field parses as a finite `f64`).
    pub types: Option<Vec<AttrType>>,
    /// Malformed-row handling (default [`RowPolicy::Fail`]).
    pub on_error: RowPolicy,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            types: None,
            on_error: RowPolicy::Fail,
        }
    }
}

/// Records one malformed row: under [`RowPolicy::Fail`] (or past the skip
/// cap) this is the load's error; otherwise the row is quarantined into
/// the report and parsing goes on.
fn quarantine(
    policy: &RowPolicy,
    report: &mut LoadReport,
    line: usize,
    message: String,
) -> Result<(), DataError> {
    match policy {
        RowPolicy::Fail => Err(DataError::Csv { line, message }),
        RowPolicy::Skip { max } => {
            if report.skipped.len() >= *max {
                Err(DataError::Csv {
                    line,
                    message: format!("{message} (skip limit of {max} malformed rows exceeded)"),
                })
            } else {
                report.skipped.push((line, message));
                Ok(())
            }
        }
    }
}

/// Reads a dataset from a CSV file. See [`read_csv_str`].
pub fn read_csv(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Dataset, DataError> {
    read_csv_with_report(path, opts).map(|(d, _)| d)
}

/// Reads a dataset plus its [`LoadReport`] from a CSV file. See
/// [`read_csv_str_with_report`].
pub fn read_csv_with_report(
    path: impl AsRef<Path>,
    opts: &CsvOptions,
) -> Result<(Dataset, LoadReport), DataError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    read_csv_str_with_report(&text, opts)
}

/// Parses a dataset from CSV text. The last column is the class label; all
/// rows get weight 1.0. Convenience wrapper over
/// [`read_csv_str_with_report`] that drops the report.
pub fn read_csv_str(text: &str, opts: &CsvOptions) -> Result<Dataset, DataError> {
    read_csv_str_with_report(text, opts).map(|(d, _)| d)
}

/// Parses a dataset from CSV text, returning the dataset together with a
/// [`LoadReport`] of quarantined rows. Header problems (missing header,
/// duplicate or too-few columns, wrong type count) are always hard errors;
/// [`CsvOptions::on_error`] only governs malformed *data* rows. With
/// inferred types, a non-numeric field makes its column categorical rather
/// than its row malformed — numeric parse quarantine applies to explicitly
/// typed columns.
pub fn read_csv_str_with_report(
    text: &str,
    opts: &CsvOptions,
) -> Result<(Dataset, LoadReport), DataError> {
    let sep = opts.separator;
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or_else(|| DataError::Csv {
        line: 1,
        message: "missing header".into(),
    })?;
    let names: Vec<&str> = header.split(sep).map(str::trim).collect();
    if names.len() < 2 {
        return Err(DataError::Csv {
            line: 1,
            message: "header needs at least one attribute and a class column".into(),
        });
    }
    for (i, name) in names.iter().enumerate() {
        if names[..i].contains(name) {
            return Err(DataError::DuplicateAttribute {
                name: (*name).to_string(),
            });
        }
    }
    let n_attrs = names.len() - 1;
    let mut report = LoadReport::default();

    // Collect raw fields first; type inference needs a full pass.
    let mut records: Vec<(usize, Vec<&str>)> = Vec::new();
    for (lineno, line) in lines {
        let fields: Vec<&str> = line.split(sep).map(str::trim).collect();
        if fields.len() != names.len() {
            quarantine(
                &opts.on_error,
                &mut report,
                lineno + 1,
                format!("expected {} fields, got {}", names.len(), fields.len()),
            )?;
            continue;
        }
        records.push((lineno + 1, fields));
    }

    let types: Vec<AttrType> = match &opts.types {
        Some(t) => {
            if t.len() != n_attrs {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!("{} types supplied for {} attributes", t.len(), n_attrs),
                });
            }
            t.clone()
        }
        None => (0..n_attrs)
            .map(|a| {
                let all_numeric = records
                    .iter()
                    .all(|(_, f)| f[a].parse::<f64>().map(|x| x.is_finite()).unwrap_or(false));
                if all_numeric && !records.is_empty() {
                    AttrType::Numeric
                } else {
                    AttrType::Categorical
                }
            })
            .collect(),
    };

    let mut b = DatasetBuilder::new();
    for (name, ty) in names[..n_attrs].iter().zip(&types) {
        b.add_attribute(*name, *ty);
    }
    b.reserve(records.len());
    let mut row_vals: Vec<Value<'_>> = Vec::with_capacity(n_attrs);
    'rows: for (lineno, fields) in &records {
        row_vals.clear();
        for (a, field) in fields[..n_attrs].iter().enumerate() {
            match types[a] {
                AttrType::Numeric => match field.parse::<f64>() {
                    Ok(x) => row_vals.push(Value::Num(x)),
                    Err(_) => {
                        quarantine(
                            &opts.on_error,
                            &mut report,
                            *lineno,
                            format!("field {a} ({field:?}) is not numeric"),
                        )?;
                        continue 'rows;
                    }
                },
                AttrType::Categorical => row_vals.push(Value::Cat(field)),
            }
        }
        if let Err(e) = b.push_row(&row_vals, fields[n_attrs], 1.0) {
            quarantine(&opts.on_error, &mut report, *lineno, e.to_string())?;
        }
    }
    Ok((b.finish(), report))
}

/// Writes a dataset to a CSV file. See [`write_csv_string`].
pub fn write_csv(data: &Dataset, path: impl AsRef<Path>, sep: char) -> Result<(), DataError> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(write_csv_string(data, sep).as_bytes())?;
    out.flush()?;
    Ok(())
}

/// Renders a dataset as CSV text (weights are not serialised; CSV is a data
/// interchange format, weights are a training-time construct).
pub fn write_csv_string(data: &Dataset, sep: char) -> String {
    let mut s = String::new();
    for a in 0..data.n_attrs() {
        let _ = write!(s, "{}{}", data.schema().attr(a).name, sep);
    }
    s.push_str("class\n");
    for row in 0..data.n_rows() {
        for a in 0..data.n_attrs() {
            match data.column(a) {
                Column::Num(_) => {
                    let _ = write!(s, "{}{}", data.num(a, row), sep);
                }
                Column::Cat(_) => {
                    let _ = write!(s, "{}{}", data.cat_name(a, row), sep);
                }
            }
        }
        s.push_str(data.class_name(data.label(row)));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_type_inference() {
        let text = "x,proto,class\n1.5,tcp,normal\n2.5,udp,attack\n";
        let d = read_csv_str(text, &CsvOptions::default()).unwrap();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.schema().attr(0).ty, AttrType::Numeric);
        assert_eq!(d.schema().attr(1).ty, AttrType::Categorical);
        assert_eq!(d.num(0, 1), 2.5);
        assert_eq!(d.cat_name(1, 0), "tcp");
        assert_eq!(d.class_name(d.label(1)), "attack");
    }

    #[test]
    fn numeric_looking_column_can_be_forced_categorical() {
        let text = "code,class\n1,a\n2,b\n";
        let opts = CsvOptions {
            types: Some(vec![AttrType::Categorical]),
            ..Default::default()
        };
        let d = read_csv_str(text, &opts).unwrap();
        assert_eq!(d.schema().attr(0).ty, AttrType::Categorical);
        assert_eq!(d.cat_name(0, 1), "2");
    }

    #[test]
    fn round_trip_preserves_values() {
        let text = "x,k,class\n1,a,c0\n2,b,c1\n3,a,c0\n";
        let d = read_csv_str(text, &CsvOptions::default()).unwrap();
        let rendered = write_csv_string(&d, ',');
        let d2 = read_csv_str(&rendered, &CsvOptions::default()).unwrap();
        assert_eq!(d2.n_rows(), d.n_rows());
        for row in 0..d.n_rows() {
            assert_eq!(d2.num(0, row), d.num(0, row));
            assert_eq!(d2.cat_name(1, row), d.cat_name(1, row));
            assert_eq!(d2.class_name(d2.label(row)), d.class_name(d.label(row)));
        }
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let text = "x,class\n1,a\n2\n";
        let err = read_csv_str(text, &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn duplicate_column_name_is_error() {
        let text = "x,x,class\n1,2,a\n";
        let err = read_csv_str(text, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::DuplicateAttribute { .. }), "{err}");
    }

    #[test]
    fn missing_header_is_error() {
        let err = read_csv_str("", &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn wrong_type_count_is_error() {
        let opts = CsvOptions {
            types: Some(vec![]),
            ..Default::default()
        };
        let err = read_csv_str("x,class\n1,a\n", &opts).unwrap_err();
        assert!(err.to_string().contains("types"));
    }

    #[test]
    fn alternative_separator() {
        let text = "x;class\n4;a\n";
        let opts = CsvOptions {
            separator: ';',
            ..Default::default()
        };
        let d = read_csv_str(text, &opts).unwrap();
        assert_eq!(d.num(0, 0), 4.0);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "x,class\n\n1,a\n\n2,b\n";
        let d = read_csv_str(text, &CsvOptions::default()).unwrap();
        assert_eq!(d.n_rows(), 2);
    }

    #[test]
    fn skip_policy_quarantines_bad_rows_and_reports_lines() {
        // line 3 has a missing field, line 5 a non-numeric value in an
        // explicitly numeric column
        let text = "x,class\n1,a\n2\n3,b\nfour,c\n5,a\n";
        let opts = CsvOptions {
            types: Some(vec![AttrType::Numeric]),
            on_error: RowPolicy::Skip { max: 10 },
            ..Default::default()
        };
        let (d, report) = read_csv_str_with_report(text, &opts).unwrap();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(report.n_skipped(), 2);
        assert_eq!(report.skipped[0].0, 3);
        assert_eq!(report.skipped[1].0, 5);
        assert!(report.skipped[1].1.contains("not numeric"), "{report:?}");
    }

    #[test]
    fn skip_cap_is_enforced() {
        let text = "x,class\n1\n2\n3,a\n";
        let opts = CsvOptions {
            on_error: RowPolicy::Skip { max: 1 },
            ..Default::default()
        };
        let err = read_csv_str_with_report(text, &opts).unwrap_err();
        assert!(err.to_string().contains("skip limit"), "{err}");
        // with a big enough cap the same text loads
        let opts = CsvOptions {
            on_error: RowPolicy::Skip { max: 2 },
            ..Default::default()
        };
        let (d, report) = read_csv_str_with_report(text, &opts).unwrap();
        assert_eq!(d.n_rows(), 1);
        assert_eq!(report.n_skipped(), 2);
    }

    #[test]
    fn fail_policy_stays_default_and_reports_first_error() {
        assert_eq!(CsvOptions::default().on_error, RowPolicy::Fail);
        let text = "x,class\n1,a\n2\n";
        let err = read_csv_str(text, &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn clean_load_has_empty_report() {
        let opts = CsvOptions {
            on_error: RowPolicy::Skip { max: 5 },
            ..Default::default()
        };
        let (d, report) = read_csv_str_with_report("x,class\n1,a\n2,b\n", &opts).unwrap();
        assert_eq!(d.n_rows(), 2);
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pnr_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let text = "x,class\n1,a\n2,b\n";
        let d = read_csv_str(text, &CsvOptions::default()).unwrap();
        write_csv(&d, &path, ',').unwrap();
        let d2 = read_csv(&path, &CsvOptions::default()).unwrap();
        assert_eq!(d2.n_rows(), 2);
        std::fs::remove_file(&path).ok();
    }
}
