//! Minimal CSV reader/writer for datasets.
//!
//! The format is deliberately simple (no quoting or embedded separators):
//! one header line with attribute names followed by the class column name,
//! then one record per line. Schema types are either supplied by the caller
//! or inferred (a column is numeric when every field parses as `f64`).

use crate::builder::{DatasetBuilder, Value};
use crate::dataset::{Column, Dataset};
use crate::error::DataError;
use crate::schema::AttrType;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// What to do with a malformed data row (wrong field count, unparsable
/// numeric field, or a row the dataset builder rejects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowPolicy {
    /// Any malformed row aborts the load with an error (the default).
    Fail,
    /// Quarantine malformed rows instead of failing, up to `max` of them;
    /// one more malformed row past the cap aborts the load. Skipped rows
    /// are listed in the [`LoadReport`].
    Skip {
        /// Maximum number of rows that may be quarantined.
        max: usize,
    },
}

/// What a [`RowPolicy::Skip`] load quarantined.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// `(1-based line number, why)` for each quarantined row, in file
    /// order. Empty when every row loaded.
    pub skipped: Vec<(usize, String)>,
}

impl LoadReport {
    /// Number of quarantined rows.
    pub fn n_skipped(&self) -> usize {
        self.skipped.len()
    }
}

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Explicit attribute types; when `None`, types are inferred from the
    /// data (numeric iff every field parses as a finite `f64`).
    pub types: Option<Vec<AttrType>>,
    /// Malformed-row handling (default [`RowPolicy::Fail`]).
    pub on_error: RowPolicy,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            types: None,
            on_error: RowPolicy::Fail,
        }
    }
}

/// Records one malformed row: under [`RowPolicy::Fail`] (or past the skip
/// cap) this is the load's error; otherwise the row is quarantined into
/// the report and parsing goes on.
fn quarantine(
    policy: &RowPolicy,
    report: &mut LoadReport,
    line: usize,
    message: String,
) -> Result<(), DataError> {
    match policy {
        RowPolicy::Fail => Err(DataError::Csv { line, message }),
        RowPolicy::Skip { max } => {
            if report.skipped.len() >= *max {
                Err(DataError::Csv {
                    line,
                    message: format!("{message} (skip limit of {max} malformed rows exceeded)"),
                })
            } else {
                report.skipped.push((line, message));
                Ok(())
            }
        }
    }
}

/// Reads a dataset from a CSV file. See [`read_csv_str`].
pub fn read_csv(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Dataset, DataError> {
    read_csv_with_report(path, opts).map(|(d, _)| d)
}

/// Reads a dataset plus its [`LoadReport`] from a CSV file. See
/// [`read_csv_str_with_report`].
pub fn read_csv_with_report(
    path: impl AsRef<Path>,
    opts: &CsvOptions,
) -> Result<(Dataset, LoadReport), DataError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    read_csv_str_with_report(&text, opts)
}

/// Parses a dataset from CSV text. The last column is the class label; all
/// rows get weight 1.0. Convenience wrapper over
/// [`read_csv_str_with_report`] that drops the report.
pub fn read_csv_str(text: &str, opts: &CsvOptions) -> Result<Dataset, DataError> {
    read_csv_str_with_report(text, opts).map(|(d, _)| d)
}

/// Parses a dataset from CSV text, returning the dataset together with a
/// [`LoadReport`] of quarantined rows. Header problems (missing header,
/// duplicate or too-few columns, wrong type count) are always hard errors;
/// [`CsvOptions::on_error`] only governs malformed *data* rows. With
/// inferred types, a non-numeric field makes its column categorical rather
/// than its row malformed — numeric parse quarantine applies to explicitly
/// typed columns.
pub fn read_csv_str_with_report(
    text: &str,
    opts: &CsvOptions,
) -> Result<(Dataset, LoadReport), DataError> {
    let sep = opts.separator;
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or_else(|| DataError::Csv {
        line: 1,
        message: "missing header".into(),
    })?;
    let names: Vec<&str> = header.split(sep).map(str::trim).collect();
    if names.len() < 2 {
        return Err(DataError::Csv {
            line: 1,
            message: "header needs at least one attribute and a class column".into(),
        });
    }
    for (i, name) in names.iter().enumerate() {
        if names[..i].contains(name) {
            return Err(DataError::DuplicateAttribute {
                name: (*name).to_string(),
            });
        }
    }
    let n_attrs = names.len() - 1;
    let mut report = LoadReport::default();

    // Collect raw fields first; type inference needs a full pass.
    let mut records: Vec<(usize, Vec<&str>)> = Vec::new();
    for (lineno, line) in lines {
        let fields: Vec<&str> = line.split(sep).map(str::trim).collect();
        if fields.len() != names.len() {
            quarantine(
                &opts.on_error,
                &mut report,
                lineno + 1,
                format!("expected {} fields, got {}", names.len(), fields.len()),
            )?;
            continue;
        }
        records.push((lineno + 1, fields));
    }

    let types: Vec<AttrType> = match &opts.types {
        Some(t) => {
            if t.len() != n_attrs {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!("{} types supplied for {} attributes", t.len(), n_attrs),
                });
            }
            t.clone()
        }
        None => (0..n_attrs)
            .map(|a| {
                let all_numeric = records
                    .iter()
                    .all(|(_, f)| f[a].parse::<f64>().map(|x| x.is_finite()).unwrap_or(false));
                if all_numeric && !records.is_empty() {
                    AttrType::Numeric
                } else {
                    AttrType::Categorical
                }
            })
            .collect(),
    };

    let mut b = DatasetBuilder::new();
    for (name, ty) in names[..n_attrs].iter().zip(&types) {
        b.add_attribute(*name, *ty);
    }
    b.reserve(records.len());
    let mut row_vals: Vec<Value<'_>> = Vec::with_capacity(n_attrs);
    'rows: for (lineno, fields) in &records {
        row_vals.clear();
        for (a, field) in fields[..n_attrs].iter().enumerate() {
            match types[a] {
                AttrType::Numeric => match field.parse::<f64>() {
                    Ok(x) => row_vals.push(Value::Num(x)),
                    Err(_) => {
                        quarantine(
                            &opts.on_error,
                            &mut report,
                            *lineno,
                            format!("field {a} ({field:?}) is not numeric"),
                        )?;
                        continue 'rows;
                    }
                },
                AttrType::Categorical => row_vals.push(Value::Cat(field)),
            }
        }
        if let Err(e) = b.push_row(&row_vals, fields[n_attrs], 1.0) {
            quarantine(&opts.on_error, &mut report, *lineno, e.to_string())?;
        }
    }
    Ok((b.finish(), report))
}

/// Streams a CSV source as a sequence of fixed-row-budget columnar chunks,
/// so a dataset far larger than RAM never has to be materialised as one
/// text buffer or one `Dataset`.
///
/// Each call to [`next_chunk`](Self::next_chunk) parses up to `chunk_rows`
/// data rows into an ordinary [`Dataset`] sharing the source's schema.
/// **Dictionary codes are stable across chunks**: every chunk's builder is
/// pre-registered with all categorical values and class labels seen so
/// far (the same trick the determinism harness uses for independently
/// built datasets), so a value keeps the first-seen-order code it was
/// assigned in its first chunk — concatenating the chunks reproduces the
/// whole-file load's codes exactly.
///
/// Differences from the whole-file path, by design:
///
/// * attribute types must be supplied explicitly
///   ([`CsvOptions::types`]) — inference needs a full pass, which is
///   exactly what streaming avoids;
/// * under [`RowPolicy::Skip`] the quarantine *counts and line numbers*
///   match the whole-file load, but the report *order* may differ: the
///   whole-file loader checks field counts in a first pass and value
///   parses in a second, while the stream sees each row once.
///
/// One [`LoadReport`] and one skip budget span the whole stream — a
/// malformed row is charged identically wherever a chunk boundary falls.
#[derive(Debug)]
pub struct ChunkedCsvReader<R: BufRead> {
    reader: R,
    sep: char,
    policy: RowPolicy,
    names: Vec<String>,
    types: Vec<AttrType>,
    chunk_rows: usize,
    report: LoadReport,
    /// Physical 1-based line number of the last line read.
    lineno: usize,
    /// Per-attribute dictionaries carried across chunks, in code order
    /// (empty for numeric attributes).
    dicts: Vec<Vec<String>>,
    /// Class labels carried across chunks, in code order.
    classes: Vec<String>,
    done: bool,
}

impl<R: BufRead> ChunkedCsvReader<R> {
    /// Reads and validates the header, returning a reader positioned at
    /// the first data row. `chunk_rows` is the row budget per chunk
    /// (minimum 1). Header problems are hard errors, exactly as in
    /// [`read_csv_str_with_report`].
    pub fn new(mut reader: R, opts: &CsvOptions, chunk_rows: usize) -> Result<Self, DataError> {
        let Some(types) = opts.types.clone() else {
            return Err(DataError::Csv {
                line: 1,
                message: "chunked reading requires explicit attribute types \
                          (inference needs a full pass over the data)"
                    .into(),
            });
        };
        let mut lineno = 0;
        let mut line = String::new();
        let header = loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(DataError::Csv {
                    line: 1,
                    message: "missing header".into(),
                });
            }
            lineno += 1;
            let l = line.trim_end_matches(['\r', '\n']);
            if !l.trim().is_empty() {
                break l;
            }
        };
        let names: Vec<String> = header
            .split(opts.separator)
            .map(|s| s.trim().to_string())
            .collect();
        if names.len() < 2 {
            return Err(DataError::Csv {
                line: 1,
                message: "header needs at least one attribute and a class column".into(),
            });
        }
        for (i, name) in names.iter().enumerate() {
            if names[..i].contains(name) {
                return Err(DataError::DuplicateAttribute { name: name.clone() });
            }
        }
        let n_attrs = names.len() - 1;
        if types.len() != n_attrs {
            return Err(DataError::Csv {
                line: 1,
                message: format!("{} types supplied for {} attributes", types.len(), n_attrs),
            });
        }
        Ok(ChunkedCsvReader {
            reader,
            sep: opts.separator,
            policy: opts.on_error.clone(),
            dicts: vec![Vec::new(); n_attrs],
            names,
            types,
            chunk_rows: chunk_rows.max(1),
            report: LoadReport::default(),
            lineno,
            classes: Vec::new(),
            done: false,
        })
    }

    /// Attribute names (the class column name excluded).
    pub fn attr_names(&self) -> &[String] {
        &self.names[..self.names.len() - 1]
    }

    /// Attribute types, in column order.
    pub fn types(&self) -> &[AttrType] {
        &self.types
    }

    /// The cumulative quarantine report over every chunk read so far.
    pub fn report(&self) -> &LoadReport {
        &self.report
    }

    /// Consumes the reader, yielding the final cumulative report.
    pub fn into_report(self) -> LoadReport {
        self.report
    }

    /// Parses the next chunk of at most `chunk_rows` data rows, or `None`
    /// once the source is exhausted. Every returned dataset carries the
    /// full schema accumulated so far (all dictionary codes seen in
    /// earlier chunks pre-registered), all rows weighted 1.0.
    pub fn next_chunk(&mut self) -> Result<Option<Dataset>, DataError> {
        if self.done {
            return Ok(None);
        }
        let n_attrs = self.names.len() - 1;
        let mut b = DatasetBuilder::new();
        for (name, ty) in self.names[..n_attrs].iter().zip(&self.types) {
            b.add_attribute(name, *ty);
        }
        for (a, dict) in self.dicts.iter().enumerate() {
            for value in dict {
                b.add_cat_value(a, value);
            }
        }
        for class in &self.classes {
            b.add_class(class);
        }
        let mut line = String::new();
        while b.n_rows() < self.chunk_rows {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                // EOF; `read_line` still returns a final line that lacks a
                // trailing newline, so nothing is lost here.
                self.done = true;
                break;
            }
            self.lineno += 1;
            let l = line.trim_end_matches(['\r', '\n']);
            if l.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = l.split(self.sep).map(str::trim).collect();
            if fields.len() != self.names.len() {
                quarantine(
                    &self.policy,
                    &mut self.report,
                    self.lineno,
                    format!("expected {} fields, got {}", self.names.len(), fields.len()),
                )?;
                continue;
            }
            let mut row_vals: Vec<Value<'_>> = Vec::with_capacity(n_attrs);
            let mut bad: Option<String> = None;
            for (a, field) in fields[..n_attrs].iter().enumerate() {
                match self.types[a] {
                    AttrType::Numeric => match field.parse::<f64>() {
                        Ok(x) => row_vals.push(Value::Num(x)),
                        Err(_) => {
                            bad = Some(format!("field {a} ({field:?}) is not numeric"));
                            break;
                        }
                    },
                    AttrType::Categorical => row_vals.push(Value::Cat(field)),
                }
            }
            let bad = bad.or_else(|| {
                b.push_row(&row_vals, fields[n_attrs], 1.0)
                    .err()
                    .map(|e| e.to_string())
            });
            if let Some(message) = bad {
                quarantine(&self.policy, &mut self.report, self.lineno, message)?;
            }
        }
        if b.n_rows() == 0 {
            // Only blank lines (or nothing) remained.
            return Ok(None);
        }
        let chunk = b.finish();
        // Read the chunk's grown dictionaries back so the next chunk's
        // builder pre-registers them — this is the induction step keeping
        // codes first-seen-order across the whole stream.
        for (a, dict) in self.dicts.iter_mut().enumerate() {
            let grown = &chunk.schema().attr(a).dict;
            for (_, value) in grown.iter().skip(dict.len()) {
                dict.push(value.to_string());
            }
        }
        let classes = &chunk.schema().classes;
        for (_, class) in classes.iter().skip(self.classes.len()) {
            self.classes.push(class.to_string());
        }
        Ok(Some(chunk))
    }
}

/// Loads a CSV file through [`ChunkedCsvReader`], draining every chunk
/// into one dataset. The result (schema, dictionary codes, row order,
/// values) is identical to [`read_csv_with_report`] with the same
/// explicitly typed options, and the quarantine counts and line numbers
/// match (report *order* may differ; see [`ChunkedCsvReader`]). Peak
/// transient memory for text and parse state is bounded by `chunk_rows`
/// rather than the file size; the columnar store being assembled is, of
/// course, still resident.
pub fn read_csv_chunked(
    path: impl AsRef<Path>,
    opts: &CsvOptions,
    chunk_rows: usize,
) -> Result<(Dataset, LoadReport), DataError> {
    let file = BufReader::new(File::open(path)?);
    let mut reader = ChunkedCsvReader::new(file, opts, chunk_rows)?;
    let mut master = DatasetBuilder::new();
    for (name, ty) in reader.attr_names().iter().zip(reader.types()) {
        master.add_attribute(name, *ty);
    }
    while let Some(chunk) = reader.next_chunk()? {
        master.reserve(chunk.n_rows());
        let n_attrs = chunk.n_attrs();
        let mut vals: Vec<Value<'_>> = Vec::with_capacity(n_attrs);
        for row in 0..chunk.n_rows() {
            vals.clear();
            for a in 0..n_attrs {
                match chunk.column(a) {
                    Column::Num(_) => vals.push(Value::Num(chunk.num(a, row))),
                    Column::Cat(_) => vals.push(Value::Cat(chunk.cat_name(a, row))),
                }
            }
            master.push_row(&vals, chunk.class_name(chunk.label(row)), 1.0)?;
        }
    }
    Ok((master.finish(), reader.into_report()))
}

/// Writes a dataset to a CSV file. See [`write_csv_string`].
pub fn write_csv(data: &Dataset, path: impl AsRef<Path>, sep: char) -> Result<(), DataError> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(write_csv_string(data, sep).as_bytes())?;
    out.flush()?;
    Ok(())
}

/// Renders a dataset as CSV text (weights are not serialised; CSV is a data
/// interchange format, weights are a training-time construct).
pub fn write_csv_string(data: &Dataset, sep: char) -> String {
    let mut s = write_csv_header_string(data, sep);
    s.push_str(&write_csv_rows_string(data, sep));
    s
}

/// Renders only the header line (attribute names + class column), with its
/// trailing newline. Streaming writers emit this once, then
/// [`write_csv_rows_string`] per generated batch — `header + rows + rows +
/// …` is byte-identical to one [`write_csv_string`] of the concatenated
/// data (`f64` `Display` round-trips exactly, so a write/read cycle loses
/// nothing).
pub fn write_csv_header_string(data: &Dataset, sep: char) -> String {
    let mut s = String::new();
    for a in 0..data.n_attrs() {
        let _ = write!(s, "{}{}", data.schema().attr(a).name, sep);
    }
    s.push_str("class\n");
    s
}

/// Renders only the data rows (no header), one line per row. See
/// [`write_csv_header_string`].
pub fn write_csv_rows_string(data: &Dataset, sep: char) -> String {
    let mut s = String::new();
    for row in 0..data.n_rows() {
        for a in 0..data.n_attrs() {
            match data.column(a) {
                Column::Num(_) => {
                    let _ = write!(s, "{}{}", data.num(a, row), sep);
                }
                Column::Cat(_) => {
                    let _ = write!(s, "{}{}", data.cat_name(a, row), sep);
                }
            }
        }
        s.push_str(data.class_name(data.label(row)));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_type_inference() {
        let text = "x,proto,class\n1.5,tcp,normal\n2.5,udp,attack\n";
        let d = read_csv_str(text, &CsvOptions::default()).unwrap();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.schema().attr(0).ty, AttrType::Numeric);
        assert_eq!(d.schema().attr(1).ty, AttrType::Categorical);
        assert_eq!(d.num(0, 1), 2.5);
        assert_eq!(d.cat_name(1, 0), "tcp");
        assert_eq!(d.class_name(d.label(1)), "attack");
    }

    #[test]
    fn numeric_looking_column_can_be_forced_categorical() {
        let text = "code,class\n1,a\n2,b\n";
        let opts = CsvOptions {
            types: Some(vec![AttrType::Categorical]),
            ..Default::default()
        };
        let d = read_csv_str(text, &opts).unwrap();
        assert_eq!(d.schema().attr(0).ty, AttrType::Categorical);
        assert_eq!(d.cat_name(0, 1), "2");
    }

    #[test]
    fn round_trip_preserves_values() {
        let text = "x,k,class\n1,a,c0\n2,b,c1\n3,a,c0\n";
        let d = read_csv_str(text, &CsvOptions::default()).unwrap();
        let rendered = write_csv_string(&d, ',');
        let d2 = read_csv_str(&rendered, &CsvOptions::default()).unwrap();
        assert_eq!(d2.n_rows(), d.n_rows());
        for row in 0..d.n_rows() {
            assert_eq!(d2.num(0, row), d.num(0, row));
            assert_eq!(d2.cat_name(1, row), d.cat_name(1, row));
            assert_eq!(d2.class_name(d2.label(row)), d.class_name(d.label(row)));
        }
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let text = "x,class\n1,a\n2\n";
        let err = read_csv_str(text, &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn duplicate_column_name_is_error() {
        let text = "x,x,class\n1,2,a\n";
        let err = read_csv_str(text, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::DuplicateAttribute { .. }), "{err}");
    }

    #[test]
    fn missing_header_is_error() {
        let err = read_csv_str("", &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn wrong_type_count_is_error() {
        let opts = CsvOptions {
            types: Some(vec![]),
            ..Default::default()
        };
        let err = read_csv_str("x,class\n1,a\n", &opts).unwrap_err();
        assert!(err.to_string().contains("types"));
    }

    #[test]
    fn alternative_separator() {
        let text = "x;class\n4;a\n";
        let opts = CsvOptions {
            separator: ';',
            ..Default::default()
        };
        let d = read_csv_str(text, &opts).unwrap();
        assert_eq!(d.num(0, 0), 4.0);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "x,class\n\n1,a\n\n2,b\n";
        let d = read_csv_str(text, &CsvOptions::default()).unwrap();
        assert_eq!(d.n_rows(), 2);
    }

    #[test]
    fn skip_policy_quarantines_bad_rows_and_reports_lines() {
        // line 3 has a missing field, line 5 a non-numeric value in an
        // explicitly numeric column
        let text = "x,class\n1,a\n2\n3,b\nfour,c\n5,a\n";
        let opts = CsvOptions {
            types: Some(vec![AttrType::Numeric]),
            on_error: RowPolicy::Skip { max: 10 },
            ..Default::default()
        };
        let (d, report) = read_csv_str_with_report(text, &opts).unwrap();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(report.n_skipped(), 2);
        assert_eq!(report.skipped[0].0, 3);
        assert_eq!(report.skipped[1].0, 5);
        assert!(report.skipped[1].1.contains("not numeric"), "{report:?}");
    }

    #[test]
    fn skip_cap_is_enforced() {
        let text = "x,class\n1\n2\n3,a\n";
        let opts = CsvOptions {
            on_error: RowPolicy::Skip { max: 1 },
            ..Default::default()
        };
        let err = read_csv_str_with_report(text, &opts).unwrap_err();
        assert!(err.to_string().contains("skip limit"), "{err}");
        // with a big enough cap the same text loads
        let opts = CsvOptions {
            on_error: RowPolicy::Skip { max: 2 },
            ..Default::default()
        };
        let (d, report) = read_csv_str_with_report(text, &opts).unwrap();
        assert_eq!(d.n_rows(), 1);
        assert_eq!(report.n_skipped(), 2);
    }

    #[test]
    fn fail_policy_stays_default_and_reports_first_error() {
        assert_eq!(CsvOptions::default().on_error, RowPolicy::Fail);
        let text = "x,class\n1,a\n2\n";
        let err = read_csv_str(text, &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn clean_load_has_empty_report() {
        let opts = CsvOptions {
            on_error: RowPolicy::Skip { max: 5 },
            ..Default::default()
        };
        let (d, report) = read_csv_str_with_report("x,class\n1,a\n2,b\n", &opts).unwrap();
        assert_eq!(d.n_rows(), 2);
        assert!(report.skipped.is_empty());
    }

    /// Asserts that a chunked load of `text` (at the given chunk size)
    /// matches the whole-file load exactly: row values, dictionary codes,
    /// labels, and quarantine counts + line sets (order may differ — the
    /// whole-file loader quarantines in two passes, the stream in one).
    fn assert_chunked_matches_whole(text: &str, opts: &CsvOptions, chunk_rows: usize) {
        let (whole, whole_report) = read_csv_str_with_report(text, opts).unwrap();
        let dir = std::env::temp_dir().join("pnr_data_chunked_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("c{chunk_rows}_{}.csv", text.len()));
        std::fs::write(&path, text).unwrap();
        let (chunked, chunk_report) = read_csv_chunked(&path, opts, chunk_rows).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(chunked.n_rows(), whole.n_rows(), "row count");
        assert_eq!(chunked.n_attrs(), whole.n_attrs());
        for a in 0..whole.n_attrs() {
            let (wd, cd) = (&whole.schema().attr(a).dict, &chunked.schema().attr(a).dict);
            assert_eq!(
                wd.iter().collect::<Vec<_>>(),
                cd.iter().collect::<Vec<_>>(),
                "dict codes attr {a}"
            );
            for row in 0..whole.n_rows() {
                match whole.column(a) {
                    Column::Num(_) => assert_eq!(
                        chunked.num(a, row).to_bits(),
                        whole.num(a, row).to_bits(),
                        "attr {a} row {row}"
                    ),
                    Column::Cat(_) => {
                        assert_eq!(chunked.cat(a, row), whole.cat(a, row), "attr {a} row {row}")
                    }
                }
            }
        }
        assert_eq!(chunked.labels(), whole.labels(), "label codes");
        assert_eq!(
            chunk_report.n_skipped(),
            whole_report.n_skipped(),
            "skip count"
        );
        let lines = |r: &LoadReport| {
            let mut l: Vec<usize> = r.skipped.iter().map(|(n, _)| *n).collect();
            l.sort_unstable();
            l
        };
        assert_eq!(lines(&chunk_report), lines(&whole_report), "skip lines");
    }

    #[test]
    fn chunked_load_matches_whole_file_across_chunk_sizes() {
        let text = "x,k,class\n1,a,c0\n2,b,c1\n3,c,c0\n4,a,c1\n5,d,c0\n6,b,c1\n7,e,c0\n";
        let opts = CsvOptions {
            types: Some(vec![AttrType::Numeric, AttrType::Categorical]),
            ..Default::default()
        };
        for chunk_rows in [1, 2, 3, 7, 100] {
            assert_chunked_matches_whole(text, &opts, chunk_rows);
        }
    }

    #[test]
    fn chunked_final_line_without_trailing_newline_is_kept() {
        // The last record has no trailing newline: both paths must load it
        // (satellite regression — `BufRead::read_line` still yields it).
        let text = "x,class\n1,a\n2,b\n3,c";
        let opts = CsvOptions {
            types: Some(vec![AttrType::Numeric]),
            on_error: RowPolicy::Skip { max: 4 },
            ..Default::default()
        };
        for chunk_rows in [1, 2, 3, 50] {
            assert_chunked_matches_whole(text, &opts, chunk_rows);
        }
        // And a final line that is both last and malformed.
        let bad_tail = "x,class\n1,a\n2,b\nbroken";
        for chunk_rows in [1, 2, 50] {
            assert_chunked_matches_whole(bad_tail, &opts, chunk_rows);
        }
    }

    #[test]
    fn chunked_malformed_row_on_chunk_boundary_counts_once() {
        // Data line 4 (physical line 4) is malformed. With chunk_rows = 2
        // it is the first row the second chunk sees; with chunk_rows = 3
        // it lands exactly on the boundary after a full chunk. The skip
        // count and line set must match the whole-file path in every
        // geometry (satellite regression).
        let text = "x,class\n1,a\n2,b\n3\n4,c\n5,d\n";
        let opts = CsvOptions {
            types: Some(vec![AttrType::Numeric]),
            on_error: RowPolicy::Skip { max: 4 },
            ..Default::default()
        };
        for chunk_rows in [1, 2, 3, 4, 100] {
            assert_chunked_matches_whole(text, &opts, chunk_rows);
        }
        // Mixed failure modes (bad field count + non-numeric) around
        // boundaries, blank lines interleaved.
        let messy = "x,class\n\n1,a\nnope,b\n\n2\n3,c\n4,d\nbad,e\n5,f";
        for chunk_rows in [1, 2, 3, 100] {
            assert_chunked_matches_whole(messy, &opts, chunk_rows);
        }
    }

    #[test]
    fn chunked_skip_cap_spans_chunk_boundaries() {
        // Two malformed rows in different chunks; a budget of 1 must abort
        // on the second even though each chunk alone sees only one.
        let text = "x,class\n1\n2,a\n3\n4,b\n";
        let opts = CsvOptions {
            types: Some(vec![AttrType::Numeric]),
            on_error: RowPolicy::Skip { max: 1 },
            ..Default::default()
        };
        let dir = std::env::temp_dir().join("pnr_data_chunked_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cap.csv");
        std::fs::write(&path, text).unwrap();
        let err = read_csv_chunked(&path, &opts, 2).unwrap_err();
        assert!(err.to_string().contains("skip limit"), "{err}");
        // With budget 2 the same stream loads.
        let opts2 = CsvOptions {
            on_error: RowPolicy::Skip { max: 2 },
            ..opts
        };
        let (d, report) = read_csv_chunked(&path, &opts2, 2).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(report.n_skipped(), 2);
    }

    #[test]
    fn chunked_reader_yields_bounded_chunks_with_stable_dicts() {
        let text = "x,k,class\n1,a,c0\n2,b,c1\n3,a,c0\n4,c,c1\n5,b,c0\n";
        let opts = CsvOptions {
            types: Some(vec![AttrType::Numeric, AttrType::Categorical]),
            ..Default::default()
        };
        let mut r =
            ChunkedCsvReader::new(std::io::BufReader::new(text.as_bytes()), &opts, 2).unwrap();
        assert_eq!(r.attr_names(), ["x".to_string(), "k".to_string()]);
        let mut sizes = Vec::new();
        let mut code_of_b = None;
        while let Some(chunk) = r.next_chunk().unwrap() {
            sizes.push(chunk.n_rows());
            // "b" first appears in chunk 0 (code fixed there); every later
            // chunk's schema must agree.
            if let Some(code) = chunk.schema().attr(1).dict.code("b") {
                match code_of_b {
                    None => code_of_b = Some(code),
                    Some(prev) => assert_eq!(code, prev, "dict code drifted across chunks"),
                }
            }
        }
        assert_eq!(sizes, [2, 2, 1], "fixed row budget per chunk");
        assert!(r.report().skipped.is_empty());
    }

    #[test]
    fn chunked_reader_requires_explicit_types() {
        let err = ChunkedCsvReader::new(
            std::io::BufReader::new("x,class\n1,a\n".as_bytes()),
            &CsvOptions::default(),
            8,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("explicit attribute types"),
            "{err}"
        );
    }

    #[test]
    fn header_rows_split_composes_to_whole_render() {
        let text = "x,k,class\n1,a,c0\n2,b,c1\n";
        let d = read_csv_str(text, &CsvOptions::default()).unwrap();
        let composed = format!(
            "{}{}",
            write_csv_header_string(&d, ','),
            write_csv_rows_string(&d, ',')
        );
        assert_eq!(composed, write_csv_string(&d, ','));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pnr_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let text = "x,class\n1,a\n2,b\n";
        let d = read_csv_str(text, &CsvOptions::default()).unwrap();
        write_csv(&d, &path, ',').unwrap();
        let d2 = read_csv(&path, &CsvOptions::default()).unwrap();
        assert_eq!(d2.n_rows(), 2);
        std::fs::remove_file(&path).ok();
    }
}
