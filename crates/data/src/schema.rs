//! Dataset schema: attribute names, types and categorical dictionaries.

use crate::dict::Dictionary;
use serde::{Deserialize, Serialize};

/// The type of an attribute column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// Continuous-valued attribute stored as `f64`.
    Numeric,
    /// Discrete attribute stored as interned `u32` codes.
    Categorical,
}

/// A single attribute (column) of a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attribute {
    /// Column name, unique within a schema.
    pub name: String,
    /// Column type.
    pub ty: AttrType,
    /// Value dictionary; non-empty only for categorical attributes.
    pub dict: Dictionary,
}

impl Attribute {
    /// Creates an attribute with an empty dictionary.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute {
            name: name.into(),
            ty,
            dict: Dictionary::new(),
        }
    }

    /// True for numeric attributes.
    pub fn is_numeric(&self) -> bool {
        self.ty == AttrType::Numeric
    }

    /// True for categorical attributes.
    pub fn is_categorical(&self) -> bool {
        self.ty == AttrType::Categorical
    }
}

/// The schema of a dataset: ordered attributes plus the class dictionary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    /// Attribute columns in declaration order.
    pub attributes: Vec<Attribute>,
    /// Dictionary of class label names.
    pub classes: Dictionary,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attributes.len()
    }

    /// Number of distinct class labels.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Returns the index of the attribute named `name`, if present.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Returns the attribute at `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn attr(&self, index: usize) -> &Attribute {
        &self.attributes[index]
    }

    /// FNV-1a fingerprint of the full schema content: attribute names,
    /// types, every categorical dictionary in code order, and the class
    /// dictionary. Two schemas fingerprint equal iff a model trained
    /// against one scores bit-identically against data built with the
    /// other, so the serving layer uses this to report drift cheaply.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv1a::new();
        for a in &self.attributes {
            h.write_field(&a.name);
            h.write_field(match a.ty {
                AttrType::Numeric => "num",
                AttrType::Categorical => "cat",
            });
            for (_, value) in a.dict.iter() {
                h.write_field(value);
            }
            // record separator between attributes
            h.write(&[0x1e]);
        }
        h.write(&[0x1e]);
        for (_, class) in self.classes.iter() {
            h.write_field(class);
        }
        h.finish()
    }

    /// Rebuilds all dictionary lookup indexes after deserialisation.
    pub fn rebuild_indexes(&mut self) {
        for a in &mut self.attributes {
            a.dict.rebuild_index();
        }
        self.classes.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_index_finds_by_name() {
        let mut s = Schema::new();
        s.attributes.push(Attribute::new("a", AttrType::Numeric));
        s.attributes
            .push(Attribute::new("b", AttrType::Categorical));
        assert_eq!(s.attr_index("b"), Some(1));
        assert_eq!(s.attr_index("c"), None);
        assert_eq!(s.n_attrs(), 2);
    }

    #[test]
    fn attribute_type_predicates() {
        let a = Attribute::new("x", AttrType::Numeric);
        assert!(a.is_numeric() && !a.is_categorical());
        let b = Attribute::new("y", AttrType::Categorical);
        assert!(b.is_categorical() && !b.is_numeric());
    }

    #[test]
    fn fingerprint_tracks_every_schema_component() {
        let mut s = Schema::new();
        let mut a = Attribute::new("proto", AttrType::Categorical);
        a.dict.intern("tcp");
        a.dict.intern("udp");
        s.attributes.push(a);
        s.attributes.push(Attribute::new("x", AttrType::Numeric));
        s.classes.intern("normal");
        let base = s.fingerprint();
        assert_eq!(s.clone().fingerprint(), base, "fingerprint is a pure fn");

        let mut renamed = s.clone();
        renamed.attributes[1].name = "y".to_string();
        assert_ne!(renamed.fingerprint(), base);

        let mut retyped = s.clone();
        retyped.attributes[1].ty = AttrType::Categorical;
        assert_ne!(retyped.fingerprint(), base);

        let mut grown_dict = s.clone();
        grown_dict.attributes[0].dict.intern("icmp");
        assert_ne!(grown_dict.fingerprint(), base);

        let mut new_class = s.clone();
        new_class.classes.intern("attack");
        assert_ne!(new_class.fingerprint(), base);

        let mut reordered = s.clone();
        reordered.attributes.swap(0, 1);
        assert_ne!(reordered.fingerprint(), base);
    }

    #[test]
    fn rebuild_indexes_after_serde() {
        let mut s = Schema::new();
        let mut a = Attribute::new("proto", AttrType::Categorical);
        a.dict.intern("tcp");
        s.attributes.push(a);
        s.classes.intern("normal");
        s.classes.intern("attack");
        let json = serde_json::to_string(&s).unwrap();
        let mut back: Schema = serde_json::from_str(&json).unwrap();
        back.rebuild_indexes();
        assert_eq!(back.attributes[0].dict.code("tcp"), Some(0));
        assert_eq!(back.classes.code("attack"), Some(1));
    }
}
