//! Row subsets used by sequential-covering learners.

/// An ordered set of row indexes into a [`crate::Dataset`].
///
/// Sequential covering repeatedly removes covered rows from the working set;
/// `RowSet` keeps indexes sorted ascending so membership masks, differences
/// and deterministic iteration are cheap and allocation patterns predictable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowSet {
    rows: Vec<u32>,
}

impl RowSet {
    /// The full row set `0..n`.
    pub fn all(n: usize) -> Self {
        RowSet {
            rows: (0..crate::index::to_u32(n, "row count")).collect(),
        }
    }

    /// An empty row set.
    pub fn empty() -> Self {
        RowSet::default()
    }

    /// Builds from a vector of indexes; sorts and deduplicates.
    pub fn from_vec(mut rows: Vec<u32>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        RowSet { rows }
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The sorted row indexes.
    pub fn as_slice(&self) -> &[u32] {
        &self.rows
    }

    /// Iterates the rows in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.rows.iter().copied()
    }

    /// Membership test by binary search.
    pub fn contains(&self, row: u32) -> bool {
        self.rows.binary_search(&row).is_ok()
    }

    /// Rows of `self` for which `keep` returns true.
    pub fn filter(&self, mut keep: impl FnMut(u32) -> bool) -> RowSet {
        RowSet {
            rows: self.rows.iter().copied().filter(|&r| keep(r)).collect(),
        }
    }

    /// Set difference `self \ other`; both operands are sorted, so this is a
    /// single merge pass.
    pub fn difference(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::with_capacity(self.rows.len().saturating_sub(other.rows.len()));
        let mut j = 0;
        for &r in &self.rows {
            while j < other.rows.len() && other.rows[j] < r {
                j += 1;
            }
            if j >= other.rows.len() || other.rows[j] != r {
                out.push(r);
            }
        }
        RowSet { rows: out }
    }

    /// Set union; single merge pass.
    pub fn union(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::with_capacity(self.rows.len() + other.rows.len());
        let (a, b) = (&self.rows, &other.rows);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        RowSet { rows: out }
    }

    /// Set intersection; single merge pass.
    pub fn intersection(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::new();
        let (a, b) = (&self.rows, &other.rows);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        RowSet { rows: out }
    }

    /// A dense membership mask of size `n_rows` (true where the row is in the
    /// set). Learners use this to scan global sort indexes cheaply.
    pub fn mask(&self, n_rows: usize) -> Vec<bool> {
        let mut m = vec![false; n_rows];
        for &r in &self.rows {
            m[r as usize] = true;
        }
        m
    }

    /// Sum of `weights[row]` over the set, in row-set order.
    pub fn total_weight(&self, weights: &[f64]) -> f64 {
        crate::weights::ordered_sum(self.rows.iter().map(|&r| weights[r as usize]))
    }
}

impl FromIterator<u32> for RowSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        RowSet::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_empty() {
        assert_eq!(RowSet::all(3).as_slice(), &[0, 1, 2]);
        assert!(RowSet::empty().is_empty());
    }

    #[test]
    fn from_vec_sorts_and_dedups() {
        let s = RowSet::from_vec(vec![3, 1, 3, 0]);
        assert_eq!(s.as_slice(), &[0, 1, 3]);
    }

    #[test]
    fn contains_uses_sorted_order() {
        let s = RowSet::from_vec(vec![5, 1, 9]);
        assert!(s.contains(5));
        assert!(!s.contains(4));
    }

    #[test]
    fn difference_removes_members() {
        let a = RowSet::from_vec(vec![0, 1, 2, 3, 4]);
        let b = RowSet::from_vec(vec![1, 3, 7]);
        assert_eq!(a.difference(&b).as_slice(), &[0, 2, 4]);
        assert_eq!(b.difference(&a).as_slice(), &[7]);
        assert_eq!(a.difference(&RowSet::empty()), a);
    }

    #[test]
    fn union_merges_without_duplicates() {
        let a = RowSet::from_vec(vec![0, 2, 4]);
        let b = RowSet::from_vec(vec![1, 2, 5]);
        assert_eq!(a.union(&b).as_slice(), &[0, 1, 2, 4, 5]);
    }

    #[test]
    fn intersection_keeps_common() {
        let a = RowSet::from_vec(vec![0, 2, 4, 6]);
        let b = RowSet::from_vec(vec![2, 3, 6]);
        assert_eq!(a.intersection(&b).as_slice(), &[2, 6]);
    }

    #[test]
    fn mask_marks_members() {
        let s = RowSet::from_vec(vec![0, 2]);
        assert_eq!(s.mask(4), vec![true, false, true, false]);
    }

    #[test]
    fn filter_keeps_predicate_rows() {
        let s = RowSet::all(6).filter(|r| r % 2 == 0);
        assert_eq!(s.as_slice(), &[0, 2, 4]);
    }

    #[test]
    fn total_weight_sums_member_weights() {
        let s = RowSet::from_vec(vec![1, 2]);
        let w = [10.0, 1.0, 2.5];
        assert_eq!(s.total_weight(&w), 3.5);
    }

    #[test]
    fn from_iterator_collects() {
        let s: RowSet = [4u32, 0, 4].into_iter().collect();
        assert_eq!(s.as_slice(), &[0, 4]);
    }
}
