//! Record weighting, including the paper's stratification transform.

use crate::dataset::Dataset;

pub mod approx {
    //! Canonical epsilon policy for floating-point weight arithmetic.
    //!
    //! Weighted coverage statistics are sums of `f64` record weights, and
    //! derived masses (e.g. "negatives = total − positives", pooled
    //! false-positive residue after removal) are *differences* of such sums.
    //! Cancellation leaves residues on the order of a few ulps, so exact
    //! comparisons against `0.0` misclassify empty masses — both seed bugs
    //! fixed in PR 1 were instances of this defect class. Every weight-mass
    //! comparison in the workspace goes through these helpers; the `float-eq`
    //! lint (`cargo xtask lint`) forbids raw `==`/`!=` against float
    //! literals elsewhere.

    /// Absolute/relative tolerance for weight-mass comparisons. Matches the
    /// z-test epsilon introduced in `ScoreMatrix::build` by PR 1: unit-ish
    /// record weights summed over ≤ millions of rows keep cancellation
    /// residue far below `1e-9 · max(1, mass)`.
    pub const WEIGHT_EPS: f64 = 1e-9;

    /// True when a weight mass is empty up to cancellation residue.
    #[inline]
    pub fn is_zero(w: f64) -> bool {
        // lint:allow(float-eq) — this *is* the approved comparison helper
        w.abs() <= WEIGHT_EPS
    }

    /// True when two weight masses agree up to absolute *and* relative
    /// tolerance (`|a − b| ≤ WEIGHT_EPS · max(1, |a|, |b|)`).
    #[inline]
    pub fn approx_eq(a: f64, b: f64) -> bool {
        // lint:allow(float-eq) — this *is* the approved comparison helper
        (a - b).abs() <= WEIGHT_EPS * a.abs().max(b.abs()).max(1.0)
    }

    /// Clamps cancellation residue on a derived weight mass to zero. A mass
    /// computed as a difference of sums (e.g. exception mass of a pure rule)
    /// may come out a few ulps negative; a *materially* negative mass is a
    /// bookkeeping bug, so debug builds assert it stays within tolerance.
    #[inline]
    pub fn clamp_mass(w: f64) -> f64 {
        debug_assert!(
            w >= -WEIGHT_EPS * w.abs().max(1.0),
            "weight mass {w} is materially negative, not cancellation residue"
        );
        if w < 0.0 {
            0.0
        } else {
            w
        }
    }
}

/// Sums float terms strictly in the order the iterator yields them.
///
/// Float addition is not associative: regrouping a reduction (chunked,
/// parallel, tree-shaped) perturbs the result by ulps, and the learner's
/// Z-number / gain / gini statistics are built from such sums — an
/// ulp-shifted statistic can flip a condition tie and change the learned
/// model. This helper is the sanctioned route for float reductions on
/// learner paths: it pins the iteration order (index order for slices
/// and row sets), so a sum's value is a pure function of its operand
/// sequence. The `unordered-float-sum` lint (`cargo xtask lint`) flags
/// bare float `.sum()` / scalar `+=` accumulation outside this helper;
/// `cargo xtask determinism` verifies the resulting end-to-end
/// bit-identity across row permutations and thread counts.
pub fn ordered_sum<I: IntoIterator<Item = f64>>(terms: I) -> f64 {
    let mut acc = 0.0;
    for t in terms {
        // lint:allow(unordered-float-sum) — this *is* the ordered helper
        acc += t;
    }
    acc
}

/// Sum of all record weights.
pub fn total_weight(data: &Dataset) -> f64 {
    ordered_sum(data.weights().iter().copied())
}

/// Total weight of records labelled `class`.
pub fn weight_of_class(data: &Dataset, class: u32) -> f64 {
    ordered_sum(
        (0..data.n_rows())
            .filter(|&r| data.label(r) == class)
            .map(|r| data.weight(r)),
    )
}

/// Returns a weight vector implementing the paper's **stratified training
/// set** (the `-we` classifier variants, section 3.1):
///
/// > "each target class record has identical weight such that the sum of
/// > these weights is equal to the number of non-target-class records, each
/// > of which is given a unit weight."
///
/// Non-target rows get weight 1.0; each target row gets
/// `n_non_target / n_target`. The stratification converts an originally rare
/// class into a class of equal aggregate strength.
///
/// # Panics
/// Panics if the dataset contains no record of `target`.
pub fn stratify_weights(data: &Dataset, target: u32) -> Vec<f64> {
    let n_target = (0..data.n_rows())
        .filter(|&r| data.label(r) == target)
        .count();
    assert!(n_target > 0, "target class has no records");
    let n_other = data.n_rows() - n_target;
    let target_weight = n_other as f64 / n_target as f64;
    (0..data.n_rows())
        .map(|r| {
            if data.label(r) == target {
                target_weight
            } else {
                1.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{DatasetBuilder, Value};
    use crate::schema::AttrType;

    fn data(n_pos: usize, n_neg: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for _ in 0..n_pos {
            b.push_row(&[Value::num(0.0)], "pos", 1.0).unwrap();
        }
        for _ in 0..n_neg {
            b.push_row(&[Value::num(1.0)], "neg", 1.0).unwrap();
        }
        b.finish()
    }

    #[test]
    fn stratified_weights_balance_classes() {
        let d = data(3, 97);
        let pos = d.class_code("pos").unwrap();
        let w = stratify_weights(&d, pos);
        let d2 = d.with_weights(w);
        let cw = d2.class_weights();
        let pos_w = cw[pos as usize];
        let neg_w = cw[d.class_code("neg").unwrap() as usize];
        assert!((pos_w - neg_w).abs() < 1e-9, "pos={pos_w} neg={neg_w}");
        assert!((pos_w - 97.0).abs() < 1e-9);
    }

    #[test]
    fn non_target_rows_keep_unit_weight() {
        let d = data(2, 8);
        let pos = d.class_code("pos").unwrap();
        let w = stratify_weights(&d, pos);
        for (r, &wr) in w.iter().enumerate() {
            if d.label(r) != pos {
                assert_eq!(wr, 1.0);
            } else {
                assert_eq!(wr, 4.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no records")]
    fn stratify_requires_target_presence() {
        let d = data(1, 1);
        // class code 2 does not exist in any row
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("a");
        b.add_class("ghost");
        b.push_row(&[Value::num(0.0)], "a", 1.0).unwrap();
        let d2 = b.finish();
        drop(d);
        let _ = stratify_weights(&d2, 1);
    }

    #[test]
    fn total_and_class_weight_sums() {
        let d = data(2, 3);
        assert_eq!(total_weight(&d), 5.0);
        assert_eq!(weight_of_class(&d, d.class_code("neg").unwrap()), 3.0);
    }
}
